//! Cross-crate property tests: randomly generated packet transactions must
//! mean the same thing to every layer of the stack —
//!
//! * the reference interpreter (`chipmunk-lang`),
//! * the compiled specification circuit (`chipmunk-bv` evaluation),
//! * the Domino lowering's three-address form (`chipmunk-domino`),
//!
//! and the mutation engine must only ever emit equivalent programs.

use chipmunk_suite::bv::{Circuit, TermId};
use chipmunk_suite::lang::spec::compile_spec;
use chipmunk_suite::lang::{
    BinOp, Expr, Interpreter, LValue, PacketState, Program, Stmt, UnOp, VarRef,
};
use proptest::prelude::*;

const NUM_FIELDS: usize = 2;
const NUM_STATES: usize = 2;
const WIDTH: u8 = 6;

/// Random expressions over 2 fields, 2 states, small constants.
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u64..16).prop_map(Expr::Int),
        (0..NUM_FIELDS).prop_map(|i| Expr::Var(VarRef::Field(i))),
        (0..NUM_STATES).prop_map(|i| Expr::Var(VarRef::State(i))),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::BitXor),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (prop_oneof![Just(UnOp::Not), Just(UnOp::Neg)], inner.clone())
                .prop_map(|(op, x)| Expr::Unary(op, Box::new(x))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| Expr::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn arb_lvalue() -> impl Strategy<Value = LValue> {
    prop_oneof![
        (0..NUM_FIELDS).prop_map(LValue::Field),
        (0..NUM_STATES).prop_map(LValue::State),
    ]
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (arb_lvalue(), arb_expr(2)).prop_map(|(lv, e)| Stmt::Assign(lv, e));
    if depth == 0 {
        assign.boxed()
    } else {
        prop_oneof![
            3 => (arb_lvalue(), arb_expr(2)).prop_map(|(lv, e)| Stmt::Assign(lv, e)),
            1 => (
                arb_expr(1),
                prop::collection::vec(arb_stmt(depth - 1), 1..3),
                prop::collection::vec(arb_stmt(depth - 1), 0..3),
            )
                .prop_map(|(c, t, f)| Stmt::If(c, t, f)),
        ]
        .boxed()
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(2), 1..5).prop_map(|stmts| {
        Program::from_parts(
            vec!["f0".into(), "f1".into()],
            vec!["s0".into(), "s1".into()],
            vec![0, 0],
            vec![],
            stmts,
        )
    })
}

fn arb_input() -> impl Strategy<Value = PacketState> {
    (
        prop::collection::vec(0u64..(1 << WIDTH), NUM_FIELDS),
        prop::collection::vec(0u64..(1 << WIDTH), NUM_STATES),
    )
        .prop_map(|(fields, states)| PacketState { fields, states })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Interpreter and compiled specification circuit agree bit-for-bit.
    #[test]
    fn interpreter_matches_spec_circuit(prog in arb_program(), inp in arb_input()) {
        let interp = Interpreter::new(&prog, WIDTH);
        let want = interp.exec(&inp);

        let mut c = Circuit::new(WIDTH);
        let fields: Vec<TermId> = (0..NUM_FIELDS).map(|i| c.input(&format!("f{i}"))).collect();
        let states: Vec<TermId> = (0..NUM_STATES).map(|i| c.input(&format!("s{i}"))).collect();
        let outs = compile_spec(&prog, &mut c, &fields, &states);
        let env: Vec<u64> = inp.fields.iter().chain(inp.states.iter()).copied().collect();
        let lookup = move |i: chipmunk_suite::bv::InputId| env[i.0 as usize];
        let roots: Vec<TermId> = outs.field_outs.iter().chain(outs.state_outs.iter()).copied().collect();
        let got = c.eval_many(&roots, &lookup);
        let want_flat: Vec<u64> = want.fields.iter().chain(want.states.iter()).copied().collect();
        prop_assert_eq!(got, want_flat);
    }

    /// Interpreter and the Domino lowering's TAC evaluation agree.
    #[test]
    fn interpreter_matches_domino_tac(prog in arb_program(), inp in arb_input()) {
        let interp = Interpreter::new(&prog, WIDTH);
        let want = interp.exec(&inp);
        let tac = chipmunk_suite::domino::tac::lower(&prog);
        let mask = (1u64 << WIDTH) - 1;
        let (fo, so) = chipmunk_suite::domino::tac::eval_tac(&tac, &inp.fields, &inp.states, mask);
        prop_assert_eq!(fo, want.fields);
        prop_assert_eq!(so, want.states);
    }

    /// Every generated mutation of a random program is equivalent to it.
    #[test]
    fn mutations_are_always_equivalent(prog in arb_program(), seed in 0u64..1000) {
        let muts = chipmunk_suite::mutate::mutations(&prog, seed, 2);
        for m in muts {
            prop_assert!(
                chipmunk_suite::mutate::equivalent(&prog, &m, 5, 100),
                "mutation diverged:\n{}", m
            );
        }
    }
}
