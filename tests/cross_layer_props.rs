//! Cross-crate randomized tests: randomly generated packet transactions
//! must mean the same thing to every layer of the stack —
//!
//! * the reference interpreter (`chipmunk-lang`),
//! * the compiled specification circuit (`chipmunk-bv` evaluation),
//! * the Domino lowering's three-address form (`chipmunk-domino`),
//!
//! and the mutation engine must only ever emit equivalent programs.
//! Seeded, so every run checks the same 96-program corpus per property.

use chipmunk_suite::bv::{Circuit, TermId};
use chipmunk_suite::lang::spec::compile_spec;
use chipmunk_suite::lang::{
    BinOp, Expr, Interpreter, LValue, PacketState, Program, Stmt, UnOp, VarRef,
};
use chipmunk_suite::trace::rng::Xoshiro256;

const NUM_FIELDS: usize = 2;
const NUM_STATES: usize = 2;
const WIDTH: u8 = 6;

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Ge,
    BinOp::And,
    BinOp::Or,
    BinOp::BitXor,
];

/// Random expressions over 2 fields, 2 states, small constants.
fn random_expr(rng: &mut Xoshiro256, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.4) {
        match rng.gen_usize(3) {
            0 => Expr::Int(rng.gen_u64_below(16)),
            1 => Expr::Var(VarRef::Field(rng.gen_usize(NUM_FIELDS))),
            _ => Expr::Var(VarRef::State(rng.gen_usize(NUM_STATES))),
        }
    } else {
        match rng.gen_usize(3) {
            0 => Expr::bin(
                *rng.choose(BINOPS),
                random_expr(rng, depth - 1),
                random_expr(rng, depth - 1),
            ),
            1 => Expr::Unary(
                if rng.gen_bool(0.5) {
                    UnOp::Not
                } else {
                    UnOp::Neg
                },
                Box::new(random_expr(rng, depth - 1)),
            ),
            _ => Expr::Ternary(
                Box::new(random_expr(rng, depth - 1)),
                Box::new(random_expr(rng, depth - 1)),
                Box::new(random_expr(rng, depth - 1)),
            ),
        }
    }
}

fn random_lvalue(rng: &mut Xoshiro256) -> LValue {
    if rng.gen_bool(0.5) {
        LValue::Field(rng.gen_usize(NUM_FIELDS))
    } else {
        LValue::State(rng.gen_usize(NUM_STATES))
    }
}

fn random_stmt(rng: &mut Xoshiro256, depth: u32) -> Stmt {
    if depth == 0 || rng.gen_bool(0.75) {
        Stmt::Assign(random_lvalue(rng), random_expr(rng, 2))
    } else {
        let then_len = rng.gen_range(1, 2);
        let else_len = rng.gen_usize(3);
        Stmt::If(
            random_expr(rng, 1),
            (0..then_len).map(|_| random_stmt(rng, depth - 1)).collect(),
            (0..else_len).map(|_| random_stmt(rng, depth - 1)).collect(),
        )
    }
}

fn random_program(rng: &mut Xoshiro256) -> Program {
    let n = rng.gen_range(1, 4);
    Program::from_parts(
        vec!["f0".into(), "f1".into()],
        vec!["s0".into(), "s1".into()],
        vec![0, 0],
        vec![],
        (0..n).map(|_| random_stmt(rng, 2)).collect(),
    )
}

fn random_input(rng: &mut Xoshiro256) -> PacketState {
    PacketState {
        fields: (0..NUM_FIELDS)
            .map(|_| rng.gen_u64_below(1 << WIDTH))
            .collect(),
        states: (0..NUM_STATES)
            .map(|_| rng.gen_u64_below(1 << WIDTH))
            .collect(),
    }
}

/// Interpreter and compiled specification circuit agree bit-for-bit.
#[test]
fn interpreter_matches_spec_circuit() {
    let mut rng = Xoshiro256::seed_from_u64(0xc055_0001);
    for case in 0..96 {
        let prog = random_program(&mut rng);
        let inp = random_input(&mut rng);
        let interp = Interpreter::new(&prog, WIDTH);
        let want = interp.exec(&inp);

        let mut c = Circuit::new(WIDTH);
        let fields: Vec<TermId> = (0..NUM_FIELDS).map(|i| c.input(&format!("f{i}"))).collect();
        let states: Vec<TermId> = (0..NUM_STATES).map(|i| c.input(&format!("s{i}"))).collect();
        let outs = compile_spec(&prog, &mut c, &fields, &states);
        let env: Vec<u64> = inp
            .fields
            .iter()
            .chain(inp.states.iter())
            .copied()
            .collect();
        let lookup = move |i: chipmunk_suite::bv::InputId| env[i.0 as usize];
        let roots: Vec<TermId> = outs
            .field_outs
            .iter()
            .chain(outs.state_outs.iter())
            .copied()
            .collect();
        let got = c.eval_many(&roots, &lookup);
        let want_flat: Vec<u64> = want
            .fields
            .iter()
            .chain(want.states.iter())
            .copied()
            .collect();
        assert_eq!(got, want_flat, "case {case}:\n{prog}");
    }
}

/// Interpreter and the Domino lowering's TAC evaluation agree.
#[test]
fn interpreter_matches_domino_tac() {
    let mut rng = Xoshiro256::seed_from_u64(0xc055_0002);
    for case in 0..96 {
        let prog = random_program(&mut rng);
        let inp = random_input(&mut rng);
        let interp = Interpreter::new(&prog, WIDTH);
        let want = interp.exec(&inp);
        let tac = chipmunk_suite::domino::tac::lower(&prog).unwrap();
        let mask = (1u64 << WIDTH) - 1;
        let (fo, so) = chipmunk_suite::domino::tac::eval_tac(&tac, &inp.fields, &inp.states, mask);
        assert_eq!(fo, want.fields, "case {case}:\n{prog}");
        assert_eq!(so, want.states, "case {case}:\n{prog}");
    }
}

/// Every generated mutation of a random program is equivalent to it.
#[test]
fn mutations_are_always_equivalent() {
    let mut rng = Xoshiro256::seed_from_u64(0xc055_0003);
    for case in 0..96 {
        let prog = random_program(&mut rng);
        let seed = rng.gen_u64_below(1000);
        let muts = chipmunk_suite::mutate::mutations(&prog, seed, 2);
        for m in muts {
            assert!(
                chipmunk_suite::mutate::equivalent(&prog, &m, 5, 100),
                "case {case}: mutation diverged:\n{m}"
            );
        }
    }
}
