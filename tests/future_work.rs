//! Integration tests for the §5 future-work prototypes, exercised through
//! the public APIs exactly as the examples use them.

use chipmunk_suite::chipmunk::{compile_approximate, ApproxOptions, CompilerOptions};
use chipmunk_suite::domino::DominoOptions;
use chipmunk_suite::lang::parse;
use chipmunk_suite::pisa::{stateful::library, StatelessAluSpec};
use chipmunk_suite::repair::{suggest, RepairOptions};
use chipmunk_suite::superopt::{superoptimize, SuperoptOptions};

/// §5.3 — the shootout rewrite is repairable, the repair compiles, and the
/// repaired program is the canonical one-step form.
#[test]
fn repair_closes_the_shootout_loop() {
    let rejected = parse(
        "state total;
         if (8 > pkt.bytes) { total = pkt.bytes + total; }
         pkt.running = total;",
    )
    .unwrap();
    let domino = DominoOptions::new(library::pred_raw(4));
    let hint = suggest(&rejected, &RepairOptions::new(domino.clone())).expect("repairable");
    // The hint must itself compile (suggest guarantees it, verify anyway).
    chipmunk_suite::domino::compile(&hint.program, &domino).expect("hint compiles");
    assert!(hint.steps.len() <= 2);
    assert!(chipmunk_suite::mutate::equivalent(
        &rejected,
        &hint.program,
        6,
        300
    ));
}

/// §5.3 — repair hints are deterministic (BFS over a deterministic
/// enumeration has no randomness to vary).
#[test]
fn repair_is_deterministic() {
    let rejected = parse("state s; s = 1 + s;").unwrap();
    let opts = RepairOptions::new(DominoOptions::new(library::raw(4)));
    let a = suggest(&rejected, &opts).expect("repairable");
    let b = suggest(&rejected, &opts).expect("repairable");
    assert_eq!(a.program, b.program);
    assert_eq!(a.steps, b.steps);
}

/// §5.1 — the superoptimizer beats the Domino baseline's instruction count
/// on a strength-reduction case: Domino cannot compile `x * 5` at all
/// (no multiplier), while the superoptimizer finds the 3-add program.
#[test]
fn superoptimizer_handles_what_the_baseline_cannot() {
    let spec = parse("pkt.out = pkt.x * 5;").unwrap();
    let d = chipmunk_suite::domino::compile(
        &spec,
        &DominoOptions {
            width: 7,
            stateless: StatelessAluSpec::arith_only(3),
            stateful: library::raw(3),
        },
    );
    assert!(d.is_err(), "baseline should lack a multiplier");
    let out = superoptimize(&spec, &SuperoptOptions::small_for_tests()).expect("feasible");
    assert_eq!(out.instrs.len(), 3);
}

/// §5.1 — optimality certificates: whatever is found at length L, lengths
/// below L were proven UNSAT, so a hand-rolled longer program can never be
/// reported.
#[test]
fn superoptimizer_results_are_minimal() {
    for (src, expect) in [
        ("pkt.out = pkt.x + pkt.x;", 1),
        ("pkt.out = pkt.x * 3;", 2),
        ("pkt.out = pkt.x * 4;", 2),
    ] {
        let spec = parse(src).unwrap();
        let out = superoptimize(&spec, &SuperoptOptions::small_for_tests())
            .unwrap_or_else(|e| panic!("{src}: {e}"));
        assert_eq!(out.instrs.len(), expect, "{src}");
        assert_eq!(out.infeasible_below, expect - 1, "{src}");
    }
}

/// §5.2 — approximation strictly extends the set of compilable programs,
/// and the reported in-domain error is zero.
#[test]
fn approximation_extends_compilability() {
    let prog = parse(
        "state hits;
         if (pkt.len > 28) { hits = hits + 1; }
         pkt.big = pkt.len > 28 ? 1 : 0;",
    )
    .unwrap();
    let mut base = CompilerOptions::new(library::pred_raw(3));
    base.stateless = StatelessAluSpec::banzai(3);
    base.max_stages = 2;
    base.cegis.verify_width = 6;
    assert!(chipmunk_suite::chipmunk::compile(&prog, &base).is_err());
    let out = compile_approximate(
        &prog,
        &ApproxOptions {
            base,
            domain_width: 4,
            error_samples: 500,
            seed: 9,
        },
    )
    .expect("approximately compilable");
    assert_eq!(out.in_domain_error_rate, 0.0);
    assert!(
        out.error_rate > 0.0,
        "approximation must be visible outside"
    );
}
