//! End-to-end integration: corpus programs through both code generators,
//! with every produced artifact validated against the reference
//! interpreter.
//!
//! Chipmunk runs use reduced verification widths so the suite stays fast
//! in debug builds; the full-width runs live in the `table2`/`figure5`
//! release binaries.

use chipmunk_suite::bench::{by_name, corpus};
use chipmunk_suite::chipmunk::{
    cegis::validate_decoded, compile as chipmunk_compile, CegisOptions, CompilerOptions, Sketch,
};
use chipmunk_suite::domino::{compile as domino_compile, DominoOptions};
use chipmunk_suite::lang::{Interpreter, PacketState};
use chipmunk_suite::pisa::StatelessAluSpec;

fn fast_chipmunk_opts(b: &chipmunk_suite::bench::Benchmark) -> CompilerOptions {
    CompilerOptions {
        max_stages: 3,
        slots: None,
        stateful: b.template.spec(4),
        stateless: StatelessAluSpec::banzai(4),
        sketch: Default::default(),
        cegis: CegisOptions {
            verify_width: 7,
            screen_width: Some(5),
            synth_input_bits: 4,
            num_initial_inputs: 3,
            max_iters: 128,
            deadline: None,
            seed: 99,
            domain_width: None,
            budget: chipmunk_suite::sat::ResourceBudget::UNLIMITED,
        },
        timeout: Some(std::time::Duration::from_secs(240)),
        parallel: false,
        portfolio: false,
    }
}

#[test]
fn every_original_compiles_under_domino_and_matches_the_interpreter() {
    for b in corpus() {
        let prog = b.program();
        let opts = DominoOptions {
            width: 10,
            stateless: StatelessAluSpec::banzai(4),
            stateful: b.template.spec(4),
        };
        let out = domino_compile(&prog, &opts)
            .unwrap_or_else(|e| panic!("{}: domino rejected original: {e}", b.name));

        let mut folded = prog.clone();
        chipmunk_suite::lang::passes::const_fold(&mut folded, 10);
        let interp = Interpreter::new(&folded, 10);
        let mut seed = 0x1234u64;
        for _ in 0..200 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let inp = PacketState {
                fields: (0..prog.field_names().len())
                    .map(|k| (seed >> (3 * k + 1)) & 0x3ff)
                    .collect(),
                states: (0..prog.state_names().len())
                    .map(|k| (seed >> (5 * k + 11)) & 0x3ff)
                    .collect(),
            };
            assert_eq!(out.exec(&inp), interp.exec(&inp), "{} diverges", b.name);
        }
    }
}

#[test]
fn fast_benchmarks_synthesize_and_validate() {
    // The cheap half of the corpus (small grids) at reduced width.
    for name in ["sampling", "detect-new-flows", "stateful-firewall"] {
        let b = by_name(name).expect("corpus");
        let prog = b.program();
        let opts = fast_chipmunk_opts(&b);
        let out = chipmunk_compile(&prog, &opts)
            .unwrap_or_else(|e| panic!("{name}: chipmunk failed: {e}"));
        assert_eq!(out.resources.stages_used, 1, "{name} should fit one stage");
        let sketch = Sketch::new(
            out.grid.clone(),
            prog.field_names().len(),
            prog.state_names().len(),
            opts.sketch,
        )
        .expect("sketch reconstructs");
        assert_eq!(
            validate_decoded(
                &prog,
                &sketch,
                &out.decoded,
                opts.cegis.verify_width,
                500,
                5
            ),
            None,
            "{name}: synthesized config diverges from spec"
        );
    }
}

#[test]
fn chipmunk_beats_domino_on_stage_count_for_firewall() {
    // The Figure 5 claim on one concrete program: the synthesized pipeline
    // is shallower than the rewrite-rule pipeline.
    let b = by_name("stateful-firewall").expect("corpus");
    let prog = b.program();
    let d = domino_compile(
        &prog,
        &DominoOptions {
            width: 7,
            stateless: StatelessAluSpec::banzai(4),
            stateful: b.template.spec(4),
        },
    )
    .expect("domino compiles the original");
    let c = chipmunk_compile(&prog, &fast_chipmunk_opts(&b)).expect("chipmunk compiles");
    assert!(
        c.resources.stages_used <= d.resources.stages_used,
        "chipmunk {} stages vs domino {}",
        c.resources.stages_used,
        d.resources.stages_used
    );
}

#[test]
fn mutations_preserve_the_table2_asymmetry_on_sampling() {
    // Chipmunk compiles every mutation; Domino rejects at least one.
    let b = by_name("sampling").expect("corpus");
    let prog = b.program();
    let muts = chipmunk_suite::mutate::mutations(&prog, 2019, 6);
    let d_opts = DominoOptions {
        width: 7,
        stateless: StatelessAluSpec::banzai(4),
        stateful: b.template.spec(4),
    };
    let mut domino_fail = 0;
    for (i, m) in muts.iter().enumerate() {
        if domino_compile(m, &d_opts).is_err() {
            domino_fail += 1;
        }
        let out = chipmunk_compile(m, &fast_chipmunk_opts(&b))
            .unwrap_or_else(|e| panic!("chipmunk failed mutation {i}: {e}\n{m}"));
        assert!(out.resources.stages_used <= 2);
    }
    assert!(
        domino_fail > 0,
        "expected the rigid matcher to reject at least one of 6 mutations"
    );
}

#[test]
fn synthesized_sampling_pipeline_streams_thousands_of_packets() {
    let b = by_name("sampling").expect("corpus");
    let prog = b.program();
    let opts = fast_chipmunk_opts(&b);
    let out = chipmunk_compile(&prog, &opts).expect("compiles");
    let mut pipe = chipmunk_suite::pisa::Pipeline::new(
        out.grid.clone(),
        out.decoded.pipeline.clone(),
        1,
        opts.cegis.verify_width,
    )
    .expect("config validates");
    let interp = Interpreter::new(&prog, opts.cegis.verify_width);
    let mut st = PacketState::zeroed(&prog);
    let mut samples = 0u64;
    for _ in 0..5000 {
        let phv = pipe.exec(&[st.fields[0]]);
        st = interp.exec(&st);
        assert_eq!(phv[0], st.fields[0]);
        samples += phv[0];
    }
    assert_eq!(samples, 500); // exactly every 10th packet
}
