//! End-to-end robustness tests for the infeasibility-certification
//! degrade ladder, driven through the real environment kill switches:
//!
//! * `CHIPMUNK_CORRUPT_INFEASIBLE_PROOF=1` — test hook that corrupts the
//!   incremental solver's proof before the check, forcing the
//!   quarantine → fresh-re-solve path a real proof-logging bug would take;
//! * `CHIPMUNK_FRESH_INFEASIBLE=1` — operator kill switch that re-derives
//!   every infeasibility from a fresh solver, bypassing the incremental
//!   proof entirely;
//! * `CHIPMUNK_PROOF_BYTES` — proof log byte budget (`0` disables
//!   logging; a tiny budget forces truncation), whose degradations must
//!   be explicit, never silent, and never a panic.
//!
//! The hooks are process-global environment variables, so this file is
//! its own test binary and every test serializes on a local mutex.

use std::sync::Mutex;

use chipmunk::{compile, Certificate, CheckBudget, CodegenError, CompilerOptions, InfeasibleCert};
use chipmunk_lang::parse;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Compile a program the small test grid can never fit (multiplication
/// has no ALU support there) and return the certification record that
/// travelled with the Infeasible verdict.
fn infeasible_compile() -> InfeasibleCert {
    let prog = parse("pkt.z = pkt.x * pkt.y;").unwrap();
    match compile(&prog, &CompilerOptions::small_for_tests()).unwrap_err() {
        CodegenError::Infeasible(cert) => cert,
        other => panic!("expected an infeasible verdict, got: {other}"),
    }
}

/// Tentpole acceptance: a corrupted incremental proof is *rejected* by
/// the checker, the verdict is quarantined, and one fresh re-solve
/// re-derives the infeasibility with a proof that does validate — the
/// caller still ends up with a certified verdict, and the record shows
/// the whole journey.
#[test]
fn corrupted_incremental_proof_is_quarantined_and_fresh_resolved() {
    let _g = lock();
    std::env::set_var("CHIPMUNK_CORRUPT_INFEASIBLE_PROOF", "1");
    let cert = infeasible_compile();
    std::env::remove_var("CHIPMUNK_CORRUPT_INFEASIBLE_PROOF");
    assert!(
        cert.quarantined,
        "a corrupted incremental proof must quarantine the verdict: {cert:?}"
    );
    assert!(
        cert.fresh_resolve,
        "quarantine must trigger a fresh re-solve: {cert:?}"
    );
    assert!(
        cert.certified,
        "the fresh re-solve must re-certify the verdict: {cert:?}"
    );
    let proof = cert
        .proof
        .as_deref()
        .expect("the re-certified verdict ships its (fresh) proof");
    assert!(
        Certificate::parse(proof)
            .unwrap()
            .check(&CheckBudget::default())
            .is_valid(),
        "shipped proof must re-validate independently"
    );
}

/// The operator kill switch re-derives infeasibility from scratch: no
/// quarantine (nothing failed), but the record says the verdict came
/// from a fresh solve and it is still proof-certified.
#[test]
fn fresh_infeasible_kill_switch_bypasses_the_incremental_proof() {
    let _g = lock();
    std::env::set_var("CHIPMUNK_FRESH_INFEASIBLE", "1");
    let cert = infeasible_compile();
    std::env::remove_var("CHIPMUNK_FRESH_INFEASIBLE");
    assert!(cert.fresh_resolve, "{cert:?}");
    assert!(
        !cert.quarantined,
        "the kill switch is not a quarantine: {cert:?}"
    );
    assert!(cert.certified, "{cert:?}");
}

/// Proof logging off: the verdict still arrives (solving is unaffected)
/// but it is explicitly unchecked, with a reason — never silent.
#[test]
fn disabled_proof_logging_degrades_to_an_explicit_unchecked_verdict() {
    let _g = lock();
    std::env::set_var("CHIPMUNK_PROOF_BYTES", "0");
    let cert = infeasible_compile();
    std::env::remove_var("CHIPMUNK_PROOF_BYTES");
    assert!(!cert.certified, "{cert:?}");
    assert!(cert.proof.is_none(), "{cert:?}");
    let reason = cert.reason.as_deref().expect("unchecked verdict says why");
    assert!(reason.contains("disabled"), "reason: {reason}");
}

/// A starved proof byte budget truncates the log mid-solve; the verdict
/// degrades to explicitly-unchecked with the overflow named, and the
/// compile neither panics nor loses the infeasibility itself.
#[test]
fn truncated_proof_log_degrades_to_an_explicit_unchecked_verdict() {
    let _g = lock();
    std::env::set_var("CHIPMUNK_PROOF_BYTES", "512");
    let cert = infeasible_compile();
    std::env::remove_var("CHIPMUNK_PROOF_BYTES");
    assert!(!cert.certified, "{cert:?}");
    assert!(cert.truncated, "{cert:?}");
    let reason = cert.reason.as_deref().expect("unchecked verdict says why");
    assert!(reason.contains("overflow"), "reason: {reason}");
}
