//! Counterexample-guided inductive synthesis (CEGIS).
//!
//! This is the paper's Figure 3 loop with its §3 "outer loop" twist:
//!
//! 1. **Synthesis phase** — an incremental SAT instance holds one literal
//!    per hole bit. For every concrete test input we instantiate the sketch
//!    circuit with the inputs as constants (Equation 2) and assert that its
//!    outputs equal the reference interpreter's outputs. The spec side is
//!    *executed*, not encoded — fixing the inputs turns `S(xᵢ)` into plain
//!    constants, which is exactly why CEGIS beats solving the QBF directly
//!    (§2.3).
//! 2. **Verification phase** — the candidate hole assignment is checked
//!    against the spec for *all* inputs (Equation 3) by bit-blasting the
//!    equivalence query at the full semantic width (default 10 bits — the
//!    role Z3 plays in the paper). An optional cheap *screening* pass at a
//!    smaller width catches most bad candidates first; screening
//!    counterexamples are only fed back if they also distinguish at full
//!    width, which keeps the loop sound.
//! 3. A failed verification yields a counterexample input that joins the
//!    test set; synthesis failure (UNSAT) proves the sketch infeasible for
//!    this grid.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use chipmunk_bv::{Binding, Blaster, BvOp, Circuit, TermId};
use chipmunk_lang::spec::compile_spec;
use chipmunk_lang::{Interpreter, PacketState, Program};
use chipmunk_pisa::Pipeline;
use chipmunk_sat::{
    BudgetAccount, Certificate, CheckBudget, CheckOutcome, Lit, ResourceBudget, SolveResult, Solver,
};

use crate::sketch::{DecodedConfig, Sketch};

/// Hard byte budget for the synthesis solver's DRAT proof log. Overflow
/// degrades to an explicitly-flagged unchecked verdict — never a panic,
/// never silent. Overridable via `CHIPMUNK_PROOF_BYTES` (`0` disables
/// proof logging entirely, e.g. for overhead measurements).
const DEFAULT_PROOF_BYTES: u64 = 64 << 20;

/// Propagation ceiling for one DRAT-checker pass, layered under the
/// job-wide [`BudgetAccount`] so certification cannot blow an SLO even on
/// an otherwise-unlimited job.
const CHECK_PROPAGATION_LIMIT: u64 = 200_000_000;

/// Largest proof transcript shipped inside an [`InfeasibleCert`] (and
/// hence over the serve wire). Bigger proofs are still checked locally;
/// only the text is withheld.
const PROOF_TEXT_MAX_BYTES: usize = 4 << 20;

/// Options for one CEGIS run.
#[derive(Clone, Copy, Debug)]
pub struct CegisOptions {
    /// Semantic width: the candidate must match the spec for all inputs of
    /// this many bits (the paper verifies with Z3 at 10-bit integers).
    pub verify_width: u8,
    /// Width of the cheap screening verifier (the role of SKETCH's internal
    /// 5-bit verification in the paper). `None` disables screening — the
    /// decoupled-widths ablation.
    pub screen_width: Option<u8>,
    /// Initial concrete inputs are sampled from `[0, 2^synth_input_bits)`
    /// (SKETCH's "small input range" idea).
    pub synth_input_bits: u8,
    /// Number of random initial inputs (plus the all-zeros input).
    pub num_initial_inputs: usize,
    /// Iteration cap (each iteration adds at least one counterexample).
    pub max_iters: usize,
    /// Wall-clock deadline for the whole run.
    pub deadline: Option<Instant>,
    /// Seed for initial-input sampling.
    pub seed: u64,
    /// Approximate synthesis (the paper's §5.2): when set, the candidate
    /// only has to match the specification on inputs whose fields and
    /// states are all below `2^domain_width`. Outside that domain the
    /// synthesized pipeline may diverge — measure the divergence with
    /// [`crate::approx::compile_approximate`]. `None` (the default)
    /// demands exact equivalence over the full verification width.
    pub domain_width: Option<u8>,
    /// Hard resource ceilings on the SAT work the *whole job* performs:
    /// synthesis and verification solves debit one shared
    /// [`BudgetAccount`], so the conflict/propagation ceilings bound the
    /// cumulative spend across every solve rather than re-arming per
    /// solver (`clause_bytes` stays per-solver — it bounds live memory,
    /// not accumulated work). A tripped ceiling surfaces as
    /// [`SynthesisError::Timeout`], exactly like a wall-clock deadline —
    /// the run gives up gracefully instead of growing without bound.
    pub budget: ResourceBudget,
}

impl Default for CegisOptions {
    fn default() -> Self {
        CegisOptions {
            verify_width: 10,
            screen_width: Some(5),
            synth_input_bits: 5,
            num_initial_inputs: 4,
            max_iters: 256,
            deadline: None,
            seed: 0xc0ffee,
            domain_width: None,
            budget: ResourceBudget::UNLIMITED,
        }
    }
}

/// Work counters for a CEGIS run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CegisStats {
    /// Number of synthesis/verification iterations.
    pub iterations: usize,
    /// Counterexamples fed back (screen + full).
    pub counterexamples: usize,
    /// Counterexamples contributed by the screening verifier.
    pub screen_counterexamples: usize,
    /// Wall time in the synthesis SAT solver.
    pub synth_time: Duration,
    /// Wall time in the verification solvers.
    pub verify_time: Duration,
    /// Total wall time of the run. Invariant:
    /// `synth_time + verify_time <= total_time`.
    pub total_time: Duration,
    /// Conflicts spent by the synthesis solver.
    pub synth_conflicts: u64,
    /// Unit propagations performed by the synthesis solver.
    pub synth_propagations: u64,
    /// Conflicts spent by the verification solvers (screening + full
    /// width). Historically omitted, which made the telemetry plane
    /// under-report solver work.
    pub verify_conflicts: u64,
    /// Unit propagations performed by the verification solvers.
    pub verify_propagations: u64,
    /// Live clause-literal bytes held by the synthesis solver at the end
    /// of the run (original + learnt), the quantity bounded by
    /// `ResourceBudget::clause_bytes`.
    pub clause_bytes: u64,
    /// Resource-budget ceilings tripped across the run — synthesis and
    /// verification solvers alike.
    pub budget_trips: u64,
}

/// A successful synthesis result.
#[derive(Clone, Debug)]
pub struct Synthesized {
    /// Decoded hardware configuration.
    pub decoded: DecodedConfig,
    /// Raw hole values, aligned with [`Sketch::holes`].
    pub hole_values: Vec<u64>,
    /// The counterexample inputs the verifier fed back during the run —
    /// the inputs the program is known to be sensitive to. Certification
    /// replays exactly these (plus a random sweep) against the final
    /// configuration.
    pub counterexamples: Vec<PacketState>,
    /// Work counters.
    pub stats: CegisStats,
}

/// How trustworthy an [`SynthesisError::Infeasible`] verdict is, and why.
///
/// The terminal UNSAT behind every Infeasible is certified by pulling a
/// DRAT [`Certificate`] off the synthesis solver and validating it with
/// the in-repo checker. The degrade ladder (DESIGN §16) is:
///
/// 1. **certified** — the proof validated; `proof` carries the transcript
///    (when small enough to ship).
/// 2. **quarantined** — the incremental proof failed its check, so the
///    verdict itself was impeached and re-derived by one from-scratch
///    solve (`fresh_resolve`), whose own proof is then checked.
/// 3. **unchecked** — no certificate exists (byte-budget overflow sets
///    `truncated`; logging disabled) or the check ran out of budget;
///    `reason` says which. Explicitly flagged, never silent.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct InfeasibleCert {
    /// The DRAT certificate for the terminal UNSAT was validated by
    /// [`Certificate::check`].
    pub certified: bool,
    /// The first (incremental) certificate failed its check; the verdict
    /// was quarantined and re-derived from scratch.
    pub quarantined: bool,
    /// The verdict comes from a fresh from-scratch solve rather than the
    /// incremental synthesis solver (quarantine retry, or the
    /// `CHIPMUNK_FRESH_INFEASIBLE=1` kill switch).
    pub fresh_resolve: bool,
    /// Proof logging overflowed its byte budget, so no certificate
    /// exists for this solve.
    pub truncated: bool,
    /// Lemmas (learnt-clause additions) in the certificate.
    pub lemmas: u64,
    /// Bytes of proof log the solver retained.
    pub proof_bytes: u64,
    /// Why the verdict is unchecked, when it is.
    pub reason: Option<String>,
    /// The DRAT certificate text ([`Certificate::to_text`]), present when
    /// validated and at most [`PROOF_TEXT_MAX_BYTES`] long.
    pub proof: Option<String>,
}

impl InfeasibleCert {
    /// An unchecked verdict carrying only an explanation — used by layers
    /// that lost the original certificate (e.g. crossing a panic boundary
    /// or a wire protocol) but must keep the flag explicit.
    pub fn unchecked(reason: impl Into<String>) -> InfeasibleCert {
        InfeasibleCert {
            reason: Some(reason.into()),
            ..InfeasibleCert::default()
        }
    }
}

/// How one certification attempt ended (internal to the degrade ladder).
enum CertifyOutcome {
    /// Proof validated; the verdict is trustworthy.
    Certified,
    /// No certificate existed (logging disabled or byte budget tripped).
    NoProof,
    /// The certificate failed validation — the verdict is impeached.
    CheckFailed,
    /// The checker ran out of its propagation budget.
    CheckOutOfBudget,
}

/// Why synthesis did not produce a configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SynthesisError {
    /// No hole assignment satisfies all accumulated test inputs: the
    /// program does not fit this grid. Carries the certification status
    /// of the UNSAT verdict — complete-strategy depth decisions must only
    /// trust it when `certified` is set.
    Infeasible(InfeasibleCert),
    /// The deadline, iteration cap, or a resource budget was exhausted.
    Timeout,
    /// The run observed its cooperative cancellation flag and stopped —
    /// raced out by a sibling search (portfolio/parallel sweep) or an
    /// external abort. Distinct from [`SynthesisError::Timeout`] so a
    /// cancelled racing loser is never attributed as a budget failure.
    Cancelled,
    /// The options are self-inconsistent (e.g. a `verify_width` narrower
    /// than the sketch's widest hole, or outside `1..=64`). Returned as a
    /// typed error rather than panicking because options can come from
    /// untrusted serve requests.
    InvalidOptions(String),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Infeasible(cert) => write!(
                f,
                "sketch is infeasible for this grid ({})",
                if cert.certified {
                    "proof-certified"
                } else {
                    "unchecked"
                }
            ),
            SynthesisError::Timeout => write!(f, "synthesis timed out"),
            SynthesisError::Cancelled => write!(f, "synthesis was cancelled"),
            SynthesisError::InvalidOptions(why) => write!(f, "invalid options: {why}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Run CEGIS for `prog` against `sketch`.
///
/// The program must be hash-free
/// ([`chipmunk_lang::passes::eliminate_hashes`]).
pub fn synthesize(
    prog: &Program,
    sketch: &Sketch,
    opts: &CegisOptions,
) -> Result<Synthesized, SynthesisError> {
    synthesize_with_cancel(prog, sketch, opts, None)
}

/// Shared context a CEGIS run participates in beyond its own options:
/// cooperative cancellation, the job-wide solver-budget ledger, and the
/// cross-step counterexample pool. All fields default to "standalone run".
#[derive(Clone, Default)]
pub struct SynthControl {
    /// Cooperative cancellation flag: when another thread sets it, the run
    /// stops at the next solver checkpoint with
    /// [`SynthesisError::Cancelled`].
    pub cancel: Option<Arc<AtomicBool>>,
    /// Job-wide [`BudgetAccount`] shared by every solver this run creates
    /// — and, when a compile job passes the same account to each plan
    /// step, by the whole escalation. `None` creates a private account, so
    /// a standalone run is its own job.
    pub account: Option<Arc<BudgetAccount>>,
    /// Counterexample pool shared across plan steps: its contents join the
    /// initial test inputs, and every counterexample this run discovers is
    /// pushed back — even if the run later fails. A failed shallow depth
    /// thereby hands the hard inputs it paid for to the deeper retries
    /// (and to racing siblings).
    pub cex_pool: Option<Arc<Mutex<Vec<PacketState>>>>,
}

/// [`synthesize`] with a cooperative cancellation flag: when another
/// thread sets it, the run stops at the next solver checkpoint and reports
/// [`SynthesisError::Cancelled`]. Used by the parallel grid-depth sweep so
/// a shallow success can stop the deeper (often much slower) searches.
pub fn synthesize_with_cancel(
    prog: &Program,
    sketch: &Sketch,
    opts: &CegisOptions,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<Synthesized, SynthesisError> {
    synthesize_with_control(
        prog,
        sketch,
        opts,
        SynthControl {
            cancel,
            ..SynthControl::default()
        },
    )
}

/// [`synthesize`] with full run control: cancellation, a shared job-wide
/// budget account, and the cross-step counterexample pool. This is the
/// primitive the plan executor drives; the other entry points are thin
/// wrappers.
pub fn synthesize_with_control(
    prog: &Program,
    sketch: &Sketch,
    opts: &CegisOptions,
    ctl: SynthControl,
) -> Result<Synthesized, SynthesisError> {
    let cancel = ctl.cancel.clone();
    let w = opts.verify_width;
    // Typed validation instead of asserts: options arrive from untrusted
    // serve requests, so a bad combination must not crash the process.
    if w == 0 || w > 64 {
        return Err(SynthesisError::InvalidOptions(format!(
            "verify_width {w} is outside the supported range 1..=64"
        )));
    }
    if w < sketch.max_hole_bits() {
        return Err(SynthesisError::InvalidOptions(format!(
            "verify_width {w} is narrower than the sketch's widest hole ({} bits); \
             selector codes would truncate",
            sketch.max_hole_bits()
        )));
    }
    let run_start = Instant::now();
    let num_fields = prog.field_names().len();
    let num_states = prog.state_names().len();
    let mut run_span = chipmunk_trace::span!(
        "cegis.run",
        holes = sketch.holes().len(),
        fields = num_fields,
        states = num_states,
        verify_width = w,
    );
    let interp = Interpreter::new(prog, w);

    // --- Build the sketch circuit once at the semantic width.
    let mut circuit = Circuit::new(w);
    let hole_terms: Vec<TermId> = sketch
        .holes()
        .iter()
        .map(|hd| circuit.input(&format!("hole_{}", hd.name)))
        .collect();
    let field_terms: Vec<TermId> = prog
        .field_names()
        .iter()
        .map(|n| circuit.input(&format!("pkt_{n}")))
        .collect();
    let state_terms: Vec<TermId> = prog
        .state_names()
        .iter()
        .map(|n| circuit.input(&format!("state_{n}")))
        .collect();
    let sk_out = sketch.symbolic(&mut circuit, &hole_terms, &field_terms, &state_terms);

    // --- Incremental synthesis solver with shared hole literals. Every
    // solver in this run (synthesis, screening, full-width verification)
    // debits the same job-wide account, so `opts.budget` is a cumulative
    // ceiling rather than a per-solver one.
    let account = ctl
        .account
        .clone()
        .unwrap_or_else(|| Arc::new(BudgetAccount::new()));
    let mut stats = CegisStats::default();
    let add_input = |solver: &mut Solver, tru: Lit, hole_bits: &[Vec<Lit>], inp: &PacketState| {
        let want = interp.exec(inp);
        let mut b = Blaster::new(solver, tru);
        sketch.bind_holes(&circuit, &hole_terms, hole_bits, &mut b);
        for (i, &t) in field_terms.iter().enumerate() {
            b.bind(circuit.input_id(t), Binding::Const(inp.fields[i]));
        }
        for (i, &t) in state_terms.iter().enumerate() {
            b.bind(circuit.input_id(t), Binding::Const(inp.states[i]));
        }
        for (outs, wants) in [
            (&sk_out.field_outs, &want.fields),
            (&sk_out.state_outs, &want.states),
        ] {
            for (k, &t) in outs.iter().enumerate() {
                let bits = b.blast(&circuit, t);
                for (bi, &lit) in bits.iter().enumerate() {
                    let expect = (wants[k] >> bi) & 1 == 1;
                    b.assert_bit(lit, expect);
                }
            }
        }
    };

    // --- Build one synthesis solver over a set of test inputs: the
    // incremental instance with shared hole literals, plus a DRAT proof
    // log so a terminal UNSAT can be certified. Packaged as a closure
    // because the certification ladder may need to reconstruct an
    // *identical but independent* instance for a from-scratch re-solve
    // (fresh literal numbering, fresh proof log). Every solver debits the
    // same job-wide account, so `opts.budget` stays a cumulative ceiling.
    let build_synth = |inputs: &[PacketState]| -> (Solver, Lit, Vec<Vec<Lit>>) {
        let mut solver = Solver::new();
        let proof_limit = proof_byte_limit();
        if proof_limit > 0 {
            solver.enable_proof(proof_limit);
        }
        solver.set_cancel_flag(cancel.clone());
        solver.set_budget(opts.budget);
        solver.set_budget_account(Some(account.clone()));
        let tru = chipmunk_bv::mk_true(&mut solver);
        let hole_bits: Vec<Vec<Lit>> = {
            let mut b = Blaster::new(&mut solver, tru);
            sketch.fresh_hole_bits(&mut b)
        };
        // Allocation constraints involve only holes: assert once.
        if !sk_out.constraints.is_empty() {
            let mut b = Blaster::new(&mut solver, tru);
            sketch.bind_holes(&circuit, &hole_terms, &hole_bits, &mut b);
            // Fields/states are irrelevant to the constraints; bind to
            // zero so the blaster never allocates fresh input literals.
            for &t in field_terms.iter().chain(state_terms.iter()) {
                b.bind(circuit.input_id(t), Binding::Const(0));
            }
            for &ct in &sk_out.constraints {
                b.assert_term(&circuit, ct);
            }
        }
        for inp in inputs {
            add_input(&mut solver, tru, &hole_bits, inp);
        }
        (solver, tru, hole_bits)
    };

    // --- Initial test inputs: all-zeros plus seeded random small values.
    let input_bits = match opts.domain_width {
        Some(d) => opts.synth_input_bits.min(d),
        None => opts.synth_input_bits,
    };
    let small_mask = if input_bits >= w {
        circuit.mask()
    } else {
        (1u64 << input_bits) - 1
    };
    let mut rng = SplitMix64(opts.seed);
    let mut initial = vec![PacketState {
        fields: vec![0; num_fields],
        states: vec![0; num_states],
    }];
    for _ in 0..opts.num_initial_inputs {
        initial.push(PacketState {
            fields: (0..num_fields).map(|_| rng.next() & small_mask).collect(),
            states: (0..num_states).map(|_| rng.next() & small_mask).collect(),
        });
    }
    // Counterexamples inherited from earlier plan steps (failed shallower
    // depths, racing siblings): known-hard inputs for this program, valid
    // at any depth/strategy because they constrain the spec side only.
    if let Some(pool) = &ctl.cex_pool {
        for cex in pool.lock().unwrap().iter() {
            if cex.fields.len() == num_fields
                && cex.states.len() == num_states
                && !initial.contains(cex)
            {
                initial.push(cex.clone());
            }
        }
    }
    let (mut solver, tru, hole_bits) = build_synth(&initial);

    // --- Verification instances, one per width, persistent across
    // iterations (the miter is blasted once; each candidate is checked by
    // solving under assumptions that pin the hole bits). The env var
    // CHIPMUNK_FRESH_VERIFY=1 restores the legacy rebuild-per-iteration
    // path — the differential suite exercises both.
    let fresh = fresh_verify_requested();
    let mut full_verifier = Verifier::with_mode(prog, sketch, w, opts.domain_width, !fresh);
    full_verifier.set_budget(opts.budget);
    full_verifier.set_budget_account(Some(account.clone()));
    // The screen width is raised to the widest hole so selector codes
    // survive; if that reaches the full width, screening is pointless.
    let mut screen_verifier = opts
        .screen_width
        .map(|sw| sw.max(sketch.max_hole_bits()))
        .filter(|&sw| sw < w)
        .map(|sw| {
            let mut v = Verifier::with_mode(prog, sketch, sw, opts.domain_width, !fresh);
            v.set_budget(opts.budget);
            v.set_budget_account(Some(account.clone()));
            v
        });

    // --- The CEGIS loop.
    let mut cexes: Vec<PacketState> = Vec::new();
    for iter in 0..opts.max_iters {
        stats.iterations += 1;
        if cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
        {
            chipmunk_trace::event!("cegis.cancelled", iter = iter);
            return Err(SynthesisError::Cancelled);
        }
        if let Some(d) = opts.deadline {
            if Instant::now() >= d {
                chipmunk_trace::event!("cegis.deadline", iter = iter, phase = "synth");
                return Err(SynthesisError::Timeout);
            }
        }
        // Synthesis phase.
        solver.set_deadline(opts.deadline);
        let t0 = Instant::now();
        let mut synth_sp = chipmunk_trace::span!("cegis.synth", iter = iter);
        let res = solver.solve(&[]);
        if chipmunk_trace::enabled() {
            synth_sp.record(
                "result",
                match res {
                    SolveResult::Sat => "sat",
                    SolveResult::Unsat => "unsat",
                    SolveResult::Unknown => "unknown",
                },
            );
        }
        drop(synth_sp);
        stats.synth_time += t0.elapsed();
        fold_solver_stats(
            &mut stats,
            &solver,
            screen_verifier.as_ref(),
            &full_verifier,
        );
        let hole_values: Vec<u64> = match res {
            SolveResult::Unsat => {
                // The terminal UNSAT justifies Infeasible; certify it so
                // "does not fit" is as trustworthy as "here is a config".
                let mut info = InfeasibleCert::default();
                // From-scratch re-derivation: rebuild the whole instance
                // (own solver, literals, proof log) over every input
                // accumulated so far, solve once, certify that.
                let fresh_certify = |info: &mut InfeasibleCert| -> Option<SynthesisError> {
                    info.fresh_resolve = true;
                    let mut all_inputs = initial.clone();
                    all_inputs.extend(cexes.iter().cloned());
                    let (mut fs, _tru, _bits) = build_synth(&all_inputs);
                    fs.set_deadline(opts.deadline);
                    match fs.solve(&[]) {
                        SolveResult::Unsat => {
                            certify_unsat_solver(&fs, &account, false, info);
                            None
                        }
                        SolveResult::Unknown => {
                            if cancel
                                .as_ref()
                                .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                            {
                                return Some(SynthesisError::Cancelled);
                            }
                            info.reason =
                                Some("fresh re-solve exhausted its deadline or budget".to_string());
                            None
                        }
                        SolveResult::Sat => {
                            // Soundness alarm: the from-scratch solve
                            // disagrees with the incremental verdict.
                            // Surface loudly, never certify.
                            chipmunk_trace::event!("cegis.infeasible_disagreement", iter = iter);
                            info.reason = Some(
                                "fresh re-solve found the instance satisfiable; \
                                 incremental verdict not trusted"
                                    .to_string(),
                            );
                            None
                        }
                    }
                };
                if fresh_infeasible_requested() {
                    // Kill switch: never trust the incremental solve.
                    if let Some(e) = fresh_certify(&mut info) {
                        return Err(e);
                    }
                } else {
                    let first = certify_unsat_solver(&solver, &account, true, &mut info);
                    if matches!(first, CertifyOutcome::CheckFailed) {
                        // An invalid proof impeaches the verdict itself:
                        // quarantine and retry once from scratch.
                        info.quarantined = true;
                        chipmunk_trace::event!("cegis.infeasible_quarantined", iter = iter);
                        if let Some(e) = fresh_certify(&mut info) {
                            return Err(e);
                        }
                    }
                }
                chipmunk_trace::event!(
                    "cegis.infeasible",
                    certified = info.certified,
                    quarantined = info.quarantined,
                    fresh = info.fresh_resolve,
                    lemmas = info.lemmas,
                );
                return Err(SynthesisError::Infeasible(info));
            }
            SolveResult::Unknown => {
                // The solver reports Unknown for deadlines, budgets, and
                // cancellation alike; the raised flag tells them apart.
                if cancel
                    .as_ref()
                    .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
                {
                    chipmunk_trace::event!("cegis.cancelled", iter = iter);
                    return Err(SynthesisError::Cancelled);
                }
                chipmunk_trace::event!("cegis.deadline", iter = iter, phase = "synth");
                return Err(SynthesisError::Timeout);
            }
            SolveResult::Sat => {
                let dec = Blaster::new(&mut solver, tru);
                hole_bits
                    .iter()
                    .map(|bits| dec.decode(bits).expect("model is total"))
                    .collect()
            }
        };

        // Screening verification at a small width (cheap), if enabled.
        let t1 = Instant::now();
        let mut verify_sp = chipmunk_trace::span!("cegis.verify", iter = iter);
        if let Some(sv) = screen_verifier.as_mut() {
            let screen_res = sv.check(prog, sketch, &hole_values, opts.deadline, cancel.clone());
            if let Some(cex) = screen_res? {
                // Only sound to feed back if it also distinguishes at
                // the full width.
                if distinguishes_at(prog, sketch, &hole_values, &cex, w) {
                    stats.verify_time += t1.elapsed();
                    stats.counterexamples += 1;
                    stats.screen_counterexamples += 1;
                    fold_solver_stats(
                        &mut stats,
                        &solver,
                        screen_verifier.as_ref(),
                        &full_verifier,
                    );
                    verify_sp.record("result", "cex");
                    verify_sp.record("provenance", "screen");
                    drop(verify_sp);
                    chipmunk_trace::event!("cegis.cex", iter = iter, provenance = "screen");
                    add_input(&mut solver, tru, &hole_bits, &cex);
                    share_cex(&ctl, &cex);
                    cexes.push(cex);
                    continue;
                }
            }
        }
        // Full-width verification (the paper's Z3 role).
        let cex = full_verifier.check(prog, sketch, &hole_values, opts.deadline, cancel.clone());
        stats.verify_time += t1.elapsed();
        fold_solver_stats(
            &mut stats,
            &solver,
            screen_verifier.as_ref(),
            &full_verifier,
        );
        match cex? {
            None => {
                verify_sp.record("result", "equiv");
                drop(verify_sp);
                stats.total_time = run_start.elapsed();
                if chipmunk_trace::enabled() {
                    run_span.record("result", "ok");
                    run_span.record("iterations", stats.iterations as u64);
                    run_span.record("counterexamples", stats.counterexamples as u64);
                }
                let decoded = sketch.decode(&hole_values);
                return Ok(Synthesized {
                    decoded,
                    hole_values,
                    counterexamples: cexes,
                    stats,
                });
            }
            Some(cex) => {
                stats.counterexamples += 1;
                verify_sp.record("result", "cex");
                verify_sp.record("provenance", "full");
                drop(verify_sp);
                chipmunk_trace::event!("cegis.cex", iter = iter, provenance = "full");
                add_input(&mut solver, tru, &hole_bits, &cex);
                share_cex(&ctl, &cex);
                cexes.push(cex);
            }
        }
    }
    chipmunk_trace::event!("cegis.iter_cap", max_iters = opts.max_iters);
    Err(SynthesisError::Timeout)
}

/// Has the legacy rebuild-per-iteration verification path been requested
/// via the `CHIPMUNK_FRESH_VERIFY=1` kill switch?
fn fresh_verify_requested() -> bool {
    std::env::var_os("CHIPMUNK_FRESH_VERIFY").is_some_and(|v| v == "1")
}

/// Kill switch mirroring `CHIPMUNK_FRESH_VERIFY`: with
/// `CHIPMUNK_FRESH_INFEASIBLE=1`, every Infeasible verdict is re-derived
/// by a from-scratch solve before being certified — the incremental
/// solver's own proof is never trusted.
fn fresh_infeasible_requested() -> bool {
    std::env::var_os("CHIPMUNK_FRESH_INFEASIBLE").is_some_and(|v| v == "1")
}

/// Test hook (`CHIPMUNK_CORRUPT_INFEASIBLE_PROOF=1`): deliberately damage
/// the incremental path's certificate before checking it, so the
/// quarantine-and-re-solve ladder can be exercised end to end. Never
/// applied to fresh re-solve certificates.
fn corrupt_infeasible_proof_requested() -> bool {
    std::env::var_os("CHIPMUNK_CORRUPT_INFEASIBLE_PROOF").is_some_and(|v| v == "1")
}

/// Byte budget for the synthesis solver's proof log
/// (`CHIPMUNK_PROOF_BYTES` override; `0` disables logging).
fn proof_byte_limit() -> u64 {
    std::env::var("CHIPMUNK_PROOF_BYTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_PROOF_BYTES)
}

/// Damage a certificate in a way the checker must catch: flip one literal
/// of the first lemma, or, for a search-free proof, append a deletion of
/// a clause that was never added.
fn corrupt_certificate(cert: &mut Certificate) {
    for step in &mut cert.steps {
        if let chipmunk_sat::ProofStep::Add(lits) = step {
            if let Some(l) = lits.first_mut() {
                *l = !*l;
                return;
            }
        }
    }
    cert.steps.push(chipmunk_sat::ProofStep::Delete(Vec::new()));
}

/// Pull the DRAT certificate off an UNSAT solver and validate it,
/// recording the outcome into `info`. `corruptible` arms the
/// [`corrupt_infeasible_proof_requested`] test hook (incremental path
/// only). Checker work is charged to the job-wide `account` and capped by
/// [`CHECK_PROPAGATION_LIMIT`].
fn certify_unsat_solver(
    solver: &Solver,
    account: &Arc<BudgetAccount>,
    corruptible: bool,
    info: &mut InfeasibleCert,
) -> CertifyOutcome {
    info.truncated = solver.proof_truncated();
    info.proof_bytes = solver.proof_bytes();
    let Some(mut cert) = solver.certificate() else {
        info.reason = Some(if info.truncated {
            "proof log overflowed its byte budget".to_string()
        } else {
            "proof logging disabled".to_string()
        });
        return CertifyOutcome::NoProof;
    };
    if corruptible && corrupt_infeasible_proof_requested() {
        corrupt_certificate(&mut cert);
    }
    info.lemmas = cert.num_lemmas() as u64;
    let budget = CheckBudget {
        propagations: Some(CHECK_PROPAGATION_LIMIT),
        account: Some(account.clone()),
    };
    match cert.check(&budget) {
        CheckOutcome::Valid => {
            info.certified = true;
            info.reason = None;
            let text = cert.to_text();
            if text.len() <= PROOF_TEXT_MAX_BYTES {
                info.proof = Some(text);
            }
            CertifyOutcome::Certified
        }
        CheckOutcome::Invalid(why) => {
            info.certified = false;
            info.reason = Some(format!("proof check failed: {why}"));
            CertifyOutcome::CheckFailed
        }
        CheckOutcome::OutOfBudget => {
            info.certified = false;
            info.reason = Some("proof check exhausted its propagation budget".to_string());
            CertifyOutcome::CheckOutOfBudget
        }
    }
}

/// Deposit a counterexample into the shared cross-step pool (if any), so
/// later plan steps inherit it even when this run ultimately fails.
fn share_cex(ctl: &SynthControl, cex: &PacketState) {
    if let Some(pool) = &ctl.cex_pool {
        let mut pool = pool.lock().unwrap();
        if !pool.contains(cex) {
            pool.push(cex.clone());
        }
    }
}

/// Fold the current solver work counters into `stats`: synthesis counters
/// from the persistent synthesis solver, verification counters summed over
/// the per-width verification instances, budget trips over all of them.
fn fold_solver_stats(
    stats: &mut CegisStats,
    synth: &Solver,
    screen: Option<&Verifier>,
    full: &Verifier,
) {
    let ss = synth.stats();
    stats.synth_conflicts = ss.conflicts;
    stats.synth_propagations = ss.propagations;
    stats.clause_bytes = synth.clause_bytes();
    let (mut vc, mut vp, mut vt) = full.work();
    if let Some(s) = screen {
        let (c, p, t) = s.work();
        vc += c;
        vp += p;
        vt += t;
    }
    stats.verify_conflicts = vc;
    stats.verify_propagations = vp;
    stats.budget_trips = ss.budget_trips + vt;
}

/// Check a candidate hole assignment against the program at `width`;
/// `Ok(Some(input))` is a distinguishing input. When `domain_width` is
/// set, only inputs with every field and state below `2^domain_width` are
/// quantified over (approximate synthesis, §5.2).
///
/// This is the from-scratch path: the miter is blasted into a fresh
/// solver for this one query. Loops that check many candidates should
/// hold a persistent [`Verifier`] instead.
pub fn verify_at(
    prog: &Program,
    sketch: &Sketch,
    hole_values: &[u64],
    width: u8,
    domain_width: Option<u8>,
    deadline: Option<Instant>,
) -> Result<Option<PacketState>, SynthesisError> {
    Verifier::with_mode(prog, sketch, width, domain_width, false).check(
        prog,
        sketch,
        hole_values,
        deadline,
        None,
    )
}

/// The sketch-vs-spec miter circuit at one width, plus the terms needed to
/// bind holes and decode counterexamples from a model.
struct Miter {
    circuit: Circuit,
    hole_terms: Vec<TermId>,
    field_terms: Vec<TermId>,
    state_terms: Vec<TermId>,
    diffs: Vec<TermId>,
    domain_constraints: Vec<TermId>,
}

fn build_miter(prog: &Program, sketch: &Sketch, width: u8, domain_width: Option<u8>) -> Miter {
    let mut circuit = Circuit::new(width);
    let hole_terms: Vec<TermId> = sketch
        .holes()
        .iter()
        .map(|hd| circuit.input(&format!("hole_{}", hd.name)))
        .collect();
    let field_terms: Vec<TermId> = prog
        .field_names()
        .iter()
        .map(|n| circuit.input(&format!("pkt_{n}")))
        .collect();
    let state_terms: Vec<TermId> = prog
        .state_names()
        .iter()
        .map(|n| circuit.input(&format!("state_{n}")))
        .collect();
    let sk_out = sketch.symbolic(&mut circuit, &hole_terms, &field_terms, &state_terms);
    let spec_out = compile_spec(prog, &mut circuit, &field_terms, &state_terms);

    let mut diffs: Vec<TermId> = Vec::new();
    for (a, b) in sk_out
        .field_outs
        .iter()
        .zip(spec_out.field_outs.iter())
        .chain(sk_out.state_outs.iter().zip(spec_out.state_outs.iter()))
    {
        diffs.push(circuit.binop(BvOp::Ne, *a, *b));
    }
    // Domain restriction: the counterexample must lie inside the domain.
    let mut domain_constraints: Vec<TermId> = Vec::new();
    if let Some(d) = domain_width {
        if d < width {
            let bound = circuit.constant(1u64 << d);
            for &t in field_terms.iter().chain(state_terms.iter()) {
                domain_constraints.push(circuit.binop(BvOp::Ult, t, bound));
            }
        }
    }
    Miter {
        circuit,
        hole_terms,
        field_terms,
        state_terms,
        diffs,
        domain_constraints,
    }
}

/// The persistent, incremental half of a [`Verifier`]: the miter blasted
/// once with the holes realized as *free* literals, so each candidate is a
/// `solve` under assumptions and learned clauses, VSIDS activity, and
/// saved phases survive across CEGIS iterations.
struct PersistentMiter {
    solver: Solver,
    tru: Lit,
    hole_bits: Vec<Vec<Lit>>,
    field_bits: Vec<Vec<Lit>>,
    state_bits: Vec<Vec<Lit>>,
}

/// A verification instance at one width.
///
/// In the default incremental mode the sketch-vs-spec miter is built and
/// bit-blasted once, with hole inputs left as free literals;
/// [`Verifier::check`] then pins the hole bits to a candidate's decoded
/// values with solver assumptions, so successive queries share one solver
/// and its learned state. The legacy mode (`CHIPMUNK_FRESH_VERIFY=1`, or
/// [`verify_at`]) rebuilds the miter into a fresh solver per query with
/// holes bound as constants.
///
/// Either way the verifier accumulates its solver work, honors a
/// [`ResourceBudget`] and an optional job-wide [`BudgetAccount`], and
/// returns `Ok(None)` for equivalence or `Ok(Some(cex))` with a
/// distinguishing input.
pub struct Verifier {
    width: u8,
    domain_width: Option<u8>,
    budget: ResourceBudget,
    account: Option<Arc<BudgetAccount>>,
    /// `Some` in incremental mode, `None` in rebuild-per-query mode.
    inc: Option<PersistentMiter>,
    conflicts: u64,
    propagations: u64,
    budget_trips: u64,
    last_core: Vec<Lit>,
}

impl Verifier {
    /// A persistent incremental verifier for `prog`/`sketch` at `width`.
    /// The miter is blasted now; each [`Verifier::check`] is one
    /// assumption-pinned solve on the same solver.
    pub fn new(prog: &Program, sketch: &Sketch, width: u8, domain_width: Option<u8>) -> Verifier {
        Verifier::with_mode(prog, sketch, width, domain_width, true)
    }

    pub(crate) fn with_mode(
        prog: &Program,
        sketch: &Sketch,
        width: u8,
        domain_width: Option<u8>,
        incremental: bool,
    ) -> Verifier {
        let inc = incremental.then(|| {
            let m = build_miter(prog, sketch, width, domain_width);
            let mut solver = Solver::new();
            let tru = chipmunk_bv::mk_true(&mut solver);
            let mut b = Blaster::new(&mut solver, tru);
            // Holes stay free: `fresh_hole_bits` allocates each hole at its
            // declared width and `bind_holes` zero-pads to the circuit
            // width, mirroring the synthesis encoding — so a decoded hole
            // value always fits its assumption vector.
            let hole_bits = sketch.fresh_hole_bits(&mut b);
            sketch.bind_holes(&m.circuit, &m.hole_terms, &hole_bits, &mut b);
            b.assert_any(&m.circuit, &m.diffs);
            for &dc in &m.domain_constraints {
                b.assert_term(&m.circuit, dc);
            }
            // Realize all program inputs so counterexamples are total.
            let field_bits: Vec<Vec<Lit>> = m
                .field_terms
                .iter()
                .map(|&t| b.blast(&m.circuit, t))
                .collect();
            let state_bits: Vec<Vec<Lit>> = m
                .state_terms
                .iter()
                .map(|&t| b.blast(&m.circuit, t))
                .collect();
            drop(b);
            PersistentMiter {
                solver,
                tru,
                hole_bits,
                field_bits,
                state_bits,
            }
        });
        Verifier {
            width,
            domain_width,
            budget: ResourceBudget::UNLIMITED,
            account: None,
            inc,
            conflicts: 0,
            propagations: 0,
            budget_trips: 0,
            last_core: Vec::new(),
        }
    }

    /// Install hard resource ceilings for subsequent checks.
    pub fn set_budget(&mut self, budget: ResourceBudget) {
        self.budget = budget;
    }

    /// Install the shared job-wide budget ledger debited by every check.
    pub fn set_budget_account(&mut self, account: Option<Arc<BudgetAccount>>) {
        self.account = account;
    }

    /// Accumulated solver work across all checks:
    /// `(conflicts, propagations, budget_trips)`.
    pub fn work(&self) -> (u64, u64, u64) {
        (self.conflicts, self.propagations, self.budget_trips)
    }

    /// The failed-assumption core behind the most recent equivalence
    /// verdict (`Ok(None)` from an incremental [`Verifier::check`]): the
    /// subset of pinned hole-bit assumptions the solver actually needed
    /// to prove no distinguishing input exists. Makes the verdict
    /// self-describing — hole bits absent from the core did not matter.
    /// Empty after a counterexample, a rebuild-mode check, or before any
    /// check has run.
    pub fn last_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Check one candidate hole assignment. `Ok(None)` means the candidate
    /// is equivalent to the spec at this width (within the domain, if
    /// restricted); `Ok(Some(input))` is a distinguishing input.
    pub fn check(
        &mut self,
        prog: &Program,
        sketch: &Sketch,
        hole_values: &[u64],
        deadline: Option<Instant>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Result<Option<PacketState>, SynthesisError> {
        self.last_core.clear();
        match &mut self.inc {
            Some(pm) => {
                pm.solver.set_deadline(deadline);
                pm.solver.set_cancel_flag(cancel.clone());
                pm.solver.set_budget(self.budget);
                pm.solver.set_budget_account(self.account.clone());
                let mut assumptions = Vec::new();
                for (bits, &v) in pm.hole_bits.iter().zip(hole_values) {
                    assumptions.extend(chipmunk_bv::assumption_lits(bits, v));
                }
                let before = pm.solver.stats();
                let res = pm.solver.solve(&assumptions);
                let after = pm.solver.stats();
                self.conflicts += after.conflicts - before.conflicts;
                self.propagations += after.propagations - before.propagations;
                self.budget_trips += after.budget_trips - before.budget_trips;
                match res {
                    SolveResult::Unsat => {
                        self.last_core = pm.solver.failed_assumptions().to_vec();
                        Ok(None)
                    }
                    SolveResult::Unknown => Err(interrupt_error(&cancel)),
                    SolveResult::Sat => {
                        let dec = Blaster::new(&mut pm.solver, pm.tru);
                        let fields = pm
                            .field_bits
                            .iter()
                            .map(|bits| dec.decode(bits).expect("total model"))
                            .collect();
                        let states = pm
                            .state_bits
                            .iter()
                            .map(|bits| dec.decode(bits).expect("total model"))
                            .collect();
                        Ok(Some(PacketState { fields, states }))
                    }
                }
            }
            None => {
                // Legacy path: rebuild the miter into a fresh solver, with
                // holes collapsed to constants at blast time.
                let m = build_miter(prog, sketch, self.width, self.domain_width);
                let mut solver = Solver::new();
                solver.set_deadline(deadline);
                solver.set_cancel_flag(cancel.clone());
                solver.set_budget(self.budget);
                solver.set_budget_account(self.account.clone());
                let tru = chipmunk_bv::mk_true(&mut solver);
                let mut b = Blaster::new(&mut solver, tru);
                for (i, &t) in m.hole_terms.iter().enumerate() {
                    b.bind(m.circuit.input_id(t), Binding::Const(hole_values[i]));
                }
                b.assert_any(&m.circuit, &m.diffs);
                for &dc in &m.domain_constraints {
                    b.assert_term(&m.circuit, dc);
                }
                let field_bits: Vec<Vec<Lit>> = m
                    .field_terms
                    .iter()
                    .map(|&t| b.blast(&m.circuit, t))
                    .collect();
                let state_bits: Vec<Vec<Lit>> = m
                    .state_terms
                    .iter()
                    .map(|&t| b.blast(&m.circuit, t))
                    .collect();
                drop(b);
                let res = solver.solve(&[]);
                let st = solver.stats();
                self.conflicts += st.conflicts;
                self.propagations += st.propagations;
                self.budget_trips += st.budget_trips;
                match res {
                    SolveResult::Unsat => Ok(None),
                    SolveResult::Unknown => Err(interrupt_error(&cancel)),
                    SolveResult::Sat => {
                        let dec = Blaster::new(&mut solver, tru);
                        let fields = field_bits
                            .iter()
                            .map(|bits| dec.decode(bits).expect("total model"))
                            .collect();
                        let states = state_bits
                            .iter()
                            .map(|bits| dec.decode(bits).expect("total model"))
                            .collect();
                        Ok(Some(PacketState { fields, states }))
                    }
                }
            }
        }
    }
}

/// The solver reports Unknown for deadlines, budgets, and cancellation
/// alike; the raised flag tells them apart.
fn interrupt_error(cancel: &Option<Arc<AtomicBool>>) -> SynthesisError {
    if cancel
        .as_ref()
        .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
    {
        SynthesisError::Cancelled
    } else {
        SynthesisError::Timeout
    }
}

/// Does `input` distinguish the candidate from the spec at `width`?
/// (Concrete execution — used to validate screening counterexamples, and
/// by the differential suites to check that a verifier-returned
/// counterexample is genuine rather than merely plausible.)
pub fn distinguishes_at(
    prog: &Program,
    sketch: &Sketch,
    hole_values: &[u64],
    input: &PacketState,
    width: u8,
) -> bool {
    let want = Interpreter::new(prog, width).exec(input);
    let got = exec_decoded(prog, sketch, &sketch.decode(hole_values), input, width);
    got != want
}

/// Execute a decoded configuration on one packet, mapping program fields
/// onto PHV containers and back.
pub fn exec_decoded(
    prog: &Program,
    sketch: &Sketch,
    decoded: &DecodedConfig,
    input: &PacketState,
    width: u8,
) -> PacketState {
    let grid = sketch.grid().clone();
    let slots = grid.slots;
    let num_states = prog.state_names().len();
    let mut pipe = Pipeline::new(grid, decoded.pipeline.clone(), num_states, width)
        .expect("decoded configs validate");
    for (v, &val) in input.states.iter().enumerate() {
        pipe.set_state(v, val);
    }
    let mut phv = vec![0u64; slots];
    for (f, &c) in decoded.field_to_container.iter().enumerate() {
        phv[c] = input.fields[f];
    }
    let phv_out = pipe.exec(&phv);
    PacketState {
        fields: decoded
            .field_to_container
            .iter()
            .map(|&c| phv_out[c])
            .collect(),
        states: (0..num_states).map(|v| pipe.state(v)).collect(),
    }
}

/// Differential validation of a synthesized configuration: run `samples`
/// random packets through both the interpreter and the configured pipeline
/// and report the first mismatch.
pub fn validate_decoded(
    prog: &Program,
    sketch: &Sketch,
    decoded: &DecodedConfig,
    width: u8,
    samples: usize,
    seed: u64,
) -> Option<PacketState> {
    let interp = Interpreter::new(prog, width);
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut rng = SplitMix64(seed);
    let num_fields = prog.field_names().len();
    let num_states = prog.state_names().len();
    for _ in 0..samples {
        let inp = PacketState {
            fields: (0..num_fields).map(|_| rng.next() & mask).collect(),
            states: (0..num_states).map(|_| rng.next() & mask).collect(),
        };
        let want = interp.exec(&inp);
        let got = exec_decoded(prog, sketch, decoded, &inp, width);
        if got != want {
            return Some(inp);
        }
    }
    None
}

/// Minimal deterministic RNG (SplitMix64) — keeps this crate free of the
/// `rand` dependency while staying reproducible.
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::SketchOptions;
    use chipmunk_pisa::stateful::library;
    use chipmunk_pisa::GridSpec;

    fn fast_opts() -> CegisOptions {
        CegisOptions {
            verify_width: 6,
            screen_width: Some(3),
            synth_input_bits: 3,
            num_initial_inputs: 3,
            max_iters: 64,
            deadline: None,
            seed: 42,
            domain_width: None,
            budget: ResourceBudget::UNLIMITED,
        }
    }

    fn synth_ok(src: &str, grid: GridSpec, opts: &CegisOptions) -> Synthesized {
        let prog = chipmunk_lang::parse(src).unwrap();
        let sketch = Sketch::new(
            grid,
            prog.field_names().len(),
            prog.state_names().len(),
            SketchOptions::default(),
        )
        .unwrap();
        let out = synthesize(&prog, &sketch, opts).expect("synthesis should succeed");
        // Defense in depth: differential-validate the result.
        assert_eq!(
            validate_decoded(&prog, &sketch, &out.decoded, opts.verify_width, 500, 7),
            None,
            "synthesized config diverges from spec"
        );
        out
    }

    #[test]
    fn synthesizes_identity_program() {
        let g = GridSpec::new(1, 2, library::raw(2), 2);
        synth_ok("pkt.y = pkt.x;", g, &fast_opts());
    }

    #[test]
    fn synthesizes_increment() {
        let g = GridSpec::new(1, 1, library::raw(2), 2);
        synth_ok("pkt.x = pkt.x + 1;", g, &fast_opts());
    }

    #[test]
    fn synthesizes_stateful_accumulator() {
        // s += pkt.x; needs one raw stateful ALU.
        let g = GridSpec::new(1, 2, library::raw(2), 2);
        synth_ok("state s; s = s + pkt.x;", g, &fast_opts());
    }

    #[test]
    fn synthesizes_sampling_with_if_else_raw() {
        let g = GridSpec::new(2, 2, library::if_else_raw(3), 3);
        let out = synth_ok(
            "state count;
             if (count == 5) { count = 0; pkt.sample = 1; }
             else { count = count + 1; pkt.sample = 0; }",
            g,
            &fast_opts(),
        );
        assert!(out.stats.iterations >= 1);
    }

    #[test]
    fn stats_time_accounting_is_consistent() {
        let g = GridSpec::new(2, 2, library::if_else_raw(3), 3);
        let out = synth_ok(
            "state count;
             if (count == 5) { count = 0; pkt.sample = 1; }
             else { count = count + 1; pkt.sample = 0; }",
            g,
            &fast_opts(),
        );
        let s = out.stats;
        assert!(
            s.synth_time + s.verify_time <= s.total_time,
            "phase times exceed total: synth {:?} + verify {:?} > total {:?}",
            s.synth_time,
            s.verify_time,
            s.total_time,
        );
        // Every iteration but the successful last one feeds back exactly
        // one counterexample; initial inputs are not counterexamples.
        assert_eq!(s.iterations, s.counterexamples + 1);
        assert!(s.screen_counterexamples <= s.counterexamples);
    }

    #[test]
    fn infeasible_when_grid_too_weak() {
        // x*y is not expressible by add/sub ALUs on a 1-stage grid.
        let prog = chipmunk_lang::parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let g = GridSpec::new(1, 3, library::raw(2), 2);
        let sketch = Sketch::new(g, 3, 0, SketchOptions::default()).unwrap();
        let err = synthesize(&prog, &sketch, &fast_opts()).unwrap_err();
        assert!(matches!(err, SynthesisError::Infeasible(_)), "got {err:?}");
    }

    #[test]
    fn infeasible_verdict_is_proof_certified() {
        // The default path must ship a DRAT certificate that the in-repo
        // checker validates — independently re-checked here from the
        // transcript text, exactly as a downstream consumer would.
        let prog = chipmunk_lang::parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let g = GridSpec::new(1, 3, library::raw(2), 2);
        let sketch = Sketch::new(g, 3, 0, SketchOptions::default()).unwrap();
        let err = synthesize(&prog, &sketch, &fast_opts()).unwrap_err();
        let SynthesisError::Infeasible(cert) = err else {
            panic!("expected Infeasible, got {err:?}");
        };
        assert!(
            cert.certified,
            "incremental infeasibility must certify: {:?}",
            cert.reason
        );
        assert!(!cert.quarantined);
        assert!(!cert.fresh_resolve);
        assert!(!cert.truncated);
        assert!(cert.proof_bytes > 0);
        let text = cert.proof.expect("certified verdicts ship the proof");
        let parsed = Certificate::parse(&text).expect("transcript parses");
        assert!(
            parsed.check(&CheckBudget::default()).is_valid(),
            "shipped transcript must re-validate"
        );
    }

    #[test]
    fn budget_tripped_synthesis_is_timeout_never_infeasible() {
        // Regression (satellite of the certified-infeasibility work): a
        // budget-tripped solve reports Unknown, which must surface as
        // Timeout, never Infeasible — even with proof logging active. The
        // propagation ceiling is 1, so any solve that actually *searches*
        // trips before concluding anything. The instances therefore must
        // not be refutable at clause-addition time: the 1-stage `raw` mul
        // grid from `infeasible_when_grid_too_weak` is disqualified — its
        // contradiction surfaces through level-zero unit propagation
        // while clauses are added, before any budget is consulted, and
        // that free UNSAT is legitimately certified regardless of budget.
        let budget = ResourceBudget {
            conflicts: Some(1),
            propagations: Some(1),
            ..ResourceBudget::UNLIMITED
        };
        let opts = CegisOptions {
            budget,
            ..fast_opts()
        };
        // A feasible instance: synthesis has to search for a candidate,
        // trips the ledger, and must not claim anything.
        let prog = chipmunk_lang::parse("pkt.x = pkt.x + pkt.y;").unwrap();
        let g = GridSpec::new(1, 2, library::raw(2), 2);
        let sketch = Sketch::new(g, 2, 0, SketchOptions::default()).unwrap();
        let err = synthesize(&prog, &sketch, &opts).unwrap_err();
        assert_eq!(err, SynthesisError::Timeout, "feasible instance");
        // A genuinely infeasible instance whose refutation needs real
        // search (mul on a two-stage predicated grid takes thousands of
        // conflicts unbudgeted): the ledger runs dry mid-way, and the
        // starved solve must degrade to Timeout, not to a bogus verdict.
        let prog = chipmunk_lang::parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let g = GridSpec::new(2, 3, library::if_else_raw(3), 3);
        let sketch = Sketch::new(g, 3, 0, SketchOptions::default()).unwrap();
        let err = synthesize(&prog, &sketch, &opts).unwrap_err();
        assert_eq!(err, SynthesisError::Timeout, "infeasible instance");
    }

    #[test]
    fn incremental_equivalence_verdicts_carry_a_core() {
        let prog = chipmunk_lang::parse("pkt.x = pkt.x + 1;").unwrap();
        let g = GridSpec::new(1, 1, library::raw(2), 2);
        let sketch = Sketch::new(g, 1, 0, SketchOptions::default()).unwrap();
        let opts = fast_opts();
        let out = synthesize(&prog, &sketch, &opts).expect("synthesis succeeds");
        let mut inc = Verifier::new(&prog, &sketch, opts.verify_width, None);
        assert_eq!(
            inc.check(&prog, &sketch, &out.hole_values, None, None)
                .unwrap(),
            None
        );
        // Equivalence was proved under pinned-hole assumptions, so the
        // failed-assumption core names the hole bits that mattered.
        assert!(
            !inc.last_core().is_empty(),
            "equivalence verdict should be self-describing"
        );
        // A counterexample verdict has no core.
        let mut bad = out.hole_values.clone();
        bad[0] ^= 1;
        if inc
            .check(&prog, &sketch, &bad, None, None)
            .unwrap()
            .is_some()
        {
            assert!(inc.last_core().is_empty());
        }
    }

    #[test]
    fn deadline_yields_timeout() {
        let prog = chipmunk_lang::parse("state s; s = s + pkt.x;").unwrap();
        let g = GridSpec::new(2, 2, library::nested_ifs(3), 3);
        let sketch = Sketch::new(g, 1, 1, SketchOptions::default()).unwrap();
        let opts = CegisOptions {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..fast_opts()
        };
        let err = synthesize(&prog, &sketch, &opts).unwrap_err();
        assert_eq!(err, SynthesisError::Timeout);
    }

    #[test]
    fn narrow_verify_width_is_a_typed_error() {
        // Regression: this used to be a reachable assert!, which a serve
        // request with a small `width` could use to kill a worker.
        let prog = chipmunk_lang::parse("pkt.x = pkt.x + 1;").unwrap();
        let g = GridSpec::new(1, 1, library::raw(2), 2);
        let sketch = Sketch::new(g, 1, 0, SketchOptions::default()).unwrap();
        let opts = CegisOptions {
            verify_width: 1,
            ..fast_opts()
        };
        let err = synthesize(&prog, &sketch, &opts).unwrap_err();
        assert!(
            matches!(err, SynthesisError::InvalidOptions(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn out_of_range_verify_width_is_a_typed_error() {
        let prog = chipmunk_lang::parse("pkt.x = pkt.x + 1;").unwrap();
        let g = GridSpec::new(1, 1, library::raw(2), 2);
        let sketch = Sketch::new(g, 1, 0, SketchOptions::default()).unwrap();
        for w in [0u8, 65, 255] {
            let opts = CegisOptions {
                verify_width: w,
                ..fast_opts()
            };
            let err = synthesize(&prog, &sketch, &opts).unwrap_err();
            assert!(
                matches!(err, SynthesisError::InvalidOptions(_)),
                "width {w}: got {err:?}"
            );
        }
    }

    #[test]
    fn tiny_resource_budget_yields_timeout() {
        let prog = chipmunk_lang::parse("state s; s = s + pkt.x;").unwrap();
        let g = GridSpec::new(2, 2, library::nested_ifs(3), 3);
        let sketch = Sketch::new(g, 1, 1, SketchOptions::default()).unwrap();
        let opts = CegisOptions {
            budget: ResourceBudget {
                conflicts: Some(1),
                propagations: Some(1),
                ..ResourceBudget::UNLIMITED
            },
            ..fast_opts()
        };
        let err = synthesize(&prog, &sketch, &opts).unwrap_err();
        assert_eq!(err, SynthesisError::Timeout);
        // Deterministic: the same tiny budget gives the same outcome.
        let err2 = synthesize(&prog, &sketch, &opts).unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn job_budget_is_cumulative_across_all_solves() {
        // Regression for the per-solver budget bug: verification solvers
        // used to re-arm the full ceiling on every iteration, so a run
        // could overspend its "hard" budget by ~iterations×. With the
        // job-wide account, total spend across every solve the run
        // performs (synthesis + screening + full-width verification)
        // never exceeds the configured ceiling.
        let prog = chipmunk_lang::parse("state s; s = s + pkt.x;").unwrap();
        let g = GridSpec::new(2, 2, library::nested_ifs(3), 3);
        let sketch = Sketch::new(g, 1, 1, SketchOptions::default()).unwrap();
        let opts = CegisOptions {
            budget: ResourceBudget {
                conflicts: Some(5),
                propagations: Some(20_000),
                ..ResourceBudget::UNLIMITED
            },
            ..fast_opts()
        };
        let account = Arc::new(BudgetAccount::new());
        let err = synthesize_with_control(
            &prog,
            &sketch,
            &opts,
            SynthControl {
                account: Some(account.clone()),
                ..SynthControl::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, SynthesisError::Timeout);
        assert!(
            account.conflicts() <= 5,
            "job spent {} conflicts against a 5-conflict ceiling",
            account.conflicts()
        );
        assert!(
            account.propagations() <= 20_000,
            "job spent {} propagations against a 20k ceiling",
            account.propagations()
        );
    }

    #[test]
    fn stats_report_verification_work() {
        let g = GridSpec::new(2, 2, library::if_else_raw(3), 3);
        let out = synth_ok(
            "state count;
             if (count == 5) { count = 0; pkt.sample = 1; }
             else { count = count + 1; pkt.sample = 0; }",
            g,
            &fast_opts(),
        );
        // Every run ends with at least one full-width verification solve,
        // and the verifier always propagates its assumption/unit clauses.
        assert!(out.stats.verify_propagations > 0);
        assert!(out.stats.synth_propagations > 0);
    }

    #[test]
    fn incremental_verifier_agrees_with_rebuild() {
        // The persistent assumption-pinned verifier and the from-scratch
        // rebuild must return the same verdict for any candidate — and
        // any counterexample either returns must concretely distinguish.
        let prog = chipmunk_lang::parse("pkt.x = pkt.x + 1;").unwrap();
        let g = GridSpec::new(1, 1, library::raw(2), 2);
        let sketch = Sketch::new(g, 1, 0, SketchOptions::default()).unwrap();
        let opts = fast_opts();
        let w = opts.verify_width;
        let out = synthesize(&prog, &sketch, &opts).expect("synthesis succeeds");

        let mut inc = Verifier::new(&prog, &sketch, w, None);
        assert_eq!(
            inc.check(&prog, &sketch, &out.hole_values, None, None)
                .unwrap(),
            None,
            "winner must verify incrementally"
        );
        assert_eq!(
            verify_at(&prog, &sketch, &out.hole_values, w, None, None).unwrap(),
            None,
            "winner must verify from scratch"
        );

        // Seeded single-bit perturbations of the winner: verdicts agree,
        // and the persistent instance stays sound across mixed SAT/UNSAT
        // queries (the incremental hazard this suite guards).
        let mut rng = SplitMix64(0xfeed);
        for round in 0..16 {
            let mut hv = out.hole_values.clone();
            let i = (rng.next() as usize) % hv.len();
            let bits = sketch.holes()[i].bits.max(1);
            hv[i] ^= 1 << (rng.next() % bits as u64);
            let fresh = verify_at(&prog, &sketch, &hv, w, None, None).unwrap();
            let pinned = inc.check(&prog, &sketch, &hv, None, None).unwrap();
            assert_eq!(
                fresh.is_none(),
                pinned.is_none(),
                "round {round}: verdicts diverge for {hv:?} (fresh {fresh:?}, pinned {pinned:?})"
            );
            for cex in [fresh, pinned].into_iter().flatten() {
                assert!(
                    distinguishes_at(&prog, &sketch, &hv, &cex, w),
                    "round {round}: {cex:?} does not distinguish {hv:?}"
                );
            }
        }
        // Re-check the winner after all that: still equivalent.
        assert_eq!(
            inc.check(&prog, &sketch, &out.hole_values, None, None)
                .unwrap(),
            None
        );
    }

    #[test]
    fn cex_pool_seeds_and_collects() {
        let src = "state count;
                   if (count == 5) { count = 0; pkt.sample = 1; }
                   else { count = count + 1; pkt.sample = 0; }";
        let prog = chipmunk_lang::parse(src).unwrap();
        let g = GridSpec::new(2, 2, library::if_else_raw(3), 3);
        let sketch = Sketch::new(g, 1, 1, SketchOptions::default()).unwrap();
        let pool = Arc::new(Mutex::new(Vec::new()));
        let ctl = |pool: &Arc<Mutex<Vec<PacketState>>>| SynthControl {
            cex_pool: Some(pool.clone()),
            ..SynthControl::default()
        };
        let out1 = synthesize_with_control(&prog, &sketch, &fast_opts(), ctl(&pool))
            .expect("first run succeeds");
        assert_eq!(
            pool.lock().unwrap().len(),
            out1.counterexamples.len(),
            "every discovered counterexample lands in the pool"
        );
        // A second run seeded with the pool starts from the hard inputs
        // the first run paid for, so it never feeds one of them back as a
        // fresh counterexample again.
        let out2 = synthesize_with_control(&prog, &sketch, &fast_opts(), ctl(&pool))
            .expect("seeded run succeeds");
        assert_eq!(
            validate_decoded(&prog, &sketch, &out2.decoded, 6, 300, 5),
            None
        );
        for cex in &out2.counterexamples {
            assert!(
                !out1.counterexamples.contains(cex),
                "pool-seeded run rediscovered {cex:?}"
            );
        }
        assert!(out2.stats.iterations <= out1.stats.iterations);
    }

    #[test]
    fn screening_disabled_still_works() {
        let g = GridSpec::new(1, 1, library::raw(2), 2);
        let opts = CegisOptions {
            screen_width: None,
            ..fast_opts()
        };
        synth_ok("pkt.x = pkt.x + 2;", g, &opts);
    }

    #[test]
    fn non_canonical_field_allocation_synthesizes() {
        let prog = chipmunk_lang::parse("pkt.y = pkt.x + 1;").unwrap();
        let g = GridSpec::new(1, 2, library::raw(2), 2);
        let sketch = Sketch::new(
            g,
            2,
            0,
            SketchOptions {
                canonical_fields: false,
            },
        )
        .unwrap();
        let out = synthesize(&prog, &sketch, &fast_opts()).expect("succeeds");
        // The allocation must be injective.
        let mut seen = std::collections::HashSet::new();
        for &c in &out.decoded.field_to_container {
            assert!(seen.insert(c), "two fields share container {c}");
        }
        assert_eq!(
            validate_decoded(&prog, &sketch, &out.decoded, 6, 300, 3),
            None
        );
    }
}
