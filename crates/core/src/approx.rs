//! Approximate program synthesis — a working prototype of the paper's
//! §5.2: *"Program synthesis can provide a general method to reduce
//! program resource usage through approximation … producing approximate
//! results with bounded errors."*
//!
//! The approximation contract here is **domain restriction**: the
//! synthesized pipeline must match the specification exactly for every
//! input whose packet fields and state values lie below
//! `2^domain_width`, and may diverge outside. That buys feasibility —
//! e.g. a program whose constants exceed the hardware's immediate range
//! is *exactly* uncompilable, but compiles approximately whenever the
//! offending behaviour cannot trigger inside the domain — and the error is
//! quantified, not hoped for: [`compile_approximate`] measures the
//! full-width divergence rate by seeded sampling and reports it alongside
//! the configuration.

use chipmunk_lang::{Interpreter, PacketState, Program};

use crate::cegis::{exec_decoded, SplitMix64};
use crate::search::{compile, CodegenError, CodegenSuccess, CompilerOptions};
use crate::sketch::Sketch;

/// Options for an approximate compilation.
#[derive(Clone, Debug)]
pub struct ApproxOptions {
    /// The exact-compilation options (grid, ALUs, CEGIS widths). The
    /// `cegis.domain_width` field is overwritten by [`ApproxOptions::domain_width`].
    pub base: CompilerOptions,
    /// Inputs are quantified over `[0, 2^domain_width)` per field/state.
    pub domain_width: u8,
    /// Samples for the full-width error estimate.
    pub error_samples: usize,
    /// Seed for error sampling.
    pub seed: u64,
}

/// An approximate compilation result.
#[derive(Clone, Debug)]
pub struct ApproxOutcome {
    /// The synthesized configuration (exact within the domain).
    pub result: CodegenSuccess,
    /// Fraction of *uniform full-width* inputs on which the pipeline
    /// diverges from the specification (0.0 = exact everywhere sampled).
    pub error_rate: f64,
    /// Fraction of uniform *in-domain* inputs that diverge — always 0.0
    /// up to sampling, kept as a sanity check.
    pub in_domain_error_rate: f64,
}

/// Compile `prog` exactly-within-domain and measure its full-width error.
pub fn compile_approximate(
    prog: &Program,
    opts: &ApproxOptions,
) -> Result<ApproxOutcome, CodegenError> {
    let mut base = opts.base.clone();
    base.cegis.domain_width = Some(opts.domain_width);
    let result = compile(prog, &base)?;

    // Measure divergence by seeded sampling at the full verification width.
    let mut hashfree = prog.clone();
    if hashfree.stmts().iter().any(|s| s.contains_hash()) {
        chipmunk_lang::passes::eliminate_hashes(&mut hashfree);
    }
    let sketch = Sketch::new(
        result.grid.clone(),
        hashfree.field_names().len(),
        hashfree.state_names().len(),
        base.sketch,
    )
    .expect("winning sketch reconstructs");
    let width = base.cegis.verify_width;
    let full_mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let dom_mask = (1u64 << opts.domain_width.min(width)) - 1;
    let interp = Interpreter::new(&hashfree, width);
    let nf = hashfree.field_names().len();
    let ns = hashfree.state_names().len();

    let rate = |mask: u64, salt: u64| -> f64 {
        let mut rng = SplitMix64(opts.seed ^ salt);
        let mut diverged = 0usize;
        for _ in 0..opts.error_samples {
            let inp = PacketState {
                fields: (0..nf).map(|_| rng.next() & mask).collect(),
                states: (0..ns).map(|_| rng.next() & mask).collect(),
            };
            let want = interp.exec(&inp);
            let got = exec_decoded(&hashfree, &sketch, &result.decoded, &inp, width);
            if got != want {
                diverged += 1;
            }
        }
        diverged as f64 / opts.error_samples.max(1) as f64
    };
    let error_rate = rate(full_mask, 0x0ff5e7);
    let in_domain_error_rate = rate(dom_mask, 0x1d0ca1);

    Ok(ApproxOutcome {
        result,
        error_rate,
        in_domain_error_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::CompilerOptions;
    use chipmunk_lang::parse;
    use chipmunk_pisa::stateful::library;

    /// A threshold program whose constant (28) exceeds the 3-bit immediate
    /// range: exactly uncompilable, approximately compilable on the domain
    /// `< 16` where the threshold can never fire.
    fn threshold_prog() -> chipmunk_lang::Program {
        parse(
            "state hits;
             if (pkt.len > 28) { hits = hits + 1; }
             pkt.big = pkt.len > 28 ? 1 : 0;",
        )
        .unwrap()
    }

    fn base_opts() -> CompilerOptions {
        let mut o = CompilerOptions::new(library::pred_raw(3));
        o.stateless = chipmunk_pisa::StatelessAluSpec::banzai(3);
        o.max_stages = 2;
        o.cegis.verify_width = 6;
        o.cegis.screen_width = Some(5);
        o.cegis.seed = 31;
        o
    }

    #[test]
    fn exact_compilation_fails_on_oversized_constant() {
        let prog = threshold_prog();
        assert!(matches!(
            compile(&prog, &base_opts()).unwrap_err(),
            CodegenError::Infeasible(_)
        ));
    }

    #[test]
    fn approximate_compilation_succeeds_with_bounded_error() {
        let prog = threshold_prog();
        let out = compile_approximate(
            &prog,
            &ApproxOptions {
                base: base_opts(),
                domain_width: 4, // len < 16 < 28: the branch never fires
                error_samples: 800,
                seed: 3,
            },
        )
        .expect("approximately feasible");
        // Exact inside the domain …
        assert_eq!(out.in_domain_error_rate, 0.0);
        // … wrong only where len > 28 can occur: for uniform 6-bit len
        // that's 35/64 of inputs, and the config plainly never fires, so
        // the measured error must be in that ballpark and strictly between
        // 0 and 1.
        assert!(out.error_rate > 0.2, "error rate {}", out.error_rate);
        assert!(out.error_rate < 0.9, "error rate {}", out.error_rate);
        assert!(out.result.resources.stages_used >= 1);
    }

    #[test]
    fn exactly_compilable_programs_have_zero_error() {
        let prog = parse("state s; if (pkt.len > 3) { s = s + 1; }").unwrap();
        let out = compile_approximate(
            &prog,
            &ApproxOptions {
                base: base_opts(),
                domain_width: 4,
                error_samples: 600,
                seed: 5,
            },
        )
        .expect("feasible");
        // The domain already pins the interesting behaviour; with the
        // constant in range the synthesizer happens to be exact everywhere.
        assert_eq!(out.in_domain_error_rate, 0.0);
    }
}
