//! # chipmunk
//!
//! A synthesis-based code generator for PISA packet-processing pipelines —
//! a from-scratch Rust reproduction of *"Autogenerating Fast
//! Packet-Processing Code Using Program Synthesis"* (HotNets 2019).
//!
//! Given a packet transaction (a `chipmunk-lang` program), a grid shape and
//! ALU descriptions (`chipmunk-pisa`), the compiler:
//!
//! 1. generates a **sketch** — a symbolic pipeline whose hardware
//!    configurations (Table 1 of the paper: ALU opcodes, mux controls,
//!    packet-field and state-variable allocations, immediates) are *holes*
//!    ([`Sketch`]);
//! 2. runs **CEGIS** (counterexample-guided inductive synthesis) to fill
//!    the holes so the pipeline is input-output equivalent to the program
//!    ([`cegis`]), with a decoupled wide-width verification pass standing in
//!    for the paper's Z3 outer loop;
//! 3. searches grid sizes **smallest-first**, so the first success uses the
//!    minimum number of pipeline stages ([`compile`]).
//!
//! ## Quick start
//!
//! ```
//! use chipmunk::{compile, CompilerOptions};
//! use chipmunk_lang::parse;
//!
//! let prog = parse(
//!     "state count;
//!      if (count == 3) { count = 0; pkt.sample = 1; }
//!      else { count = count + 1; pkt.sample = 0; }",
//! ).unwrap();
//! let opts = CompilerOptions::small_for_tests();
//! let out = compile(&prog, &opts).expect("synthesis succeeds");
//! assert_eq!(out.resources.stages_used, 1);
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod cache;
pub mod cegis;
pub mod certify;
mod search;
pub mod sketch;

pub use approx::{compile_approximate, ApproxOptions, ApproxOutcome};
pub use cache::{cache_key, canonical_text, layout_names};
pub use cegis::{
    CegisOptions, CegisStats, InfeasibleCert, SynthControl, SynthesisError, Synthesized, Verifier,
};
pub use certify::{certify_config, certify_success, CertifyReport, CertifyRequest};
pub use search::{
    compile, compile_with_cancel, compile_with_control, plan_compilation, CodegenError,
    CodegenSuccess, CompilerOptions, PlanControl,
};
pub use sketch::{DecodedConfig, HoleDecl, Sketch, SketchOptions, SketchOutputs};

// The budget type appears in `CegisOptions`; re-export it so downstream
// crates can fill it without a direct chipmunk-sat dependency. The DRAT
// certificate types ride along so the serving layer and CLI can re-check
// a shipped proof without one either.
pub use chipmunk_sat::{BudgetAccount, Certificate, CheckBudget, CheckOutcome, ResourceBudget};

/// The compilation-plan data model and executor, re-exported so the
/// serving layer and CLI can fingerprint, explain, and observe plans
/// without a direct `chipmunk-plan` dependency.
pub mod plan {
    pub use chipmunk_plan::{
        CompilePlan, PlanGroup, PlanStep, RaceMode, StepOutcome, StepReport, Strategy,
    };
}
