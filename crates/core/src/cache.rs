//! Content-addressed cache keys for compilation results.
//!
//! A Chipmunk query is expensive (CEGIS over bit-blasted SAT) but fully
//! determined by its inputs: the packet program and the compilation
//! options. Better still, the paper's own mutation benchmark shows that
//! semantics-preserving rewrites (commuted operands, mirrored comparisons,
//! hoisted subexpressions, …) leave the underlying synthesis problem
//! unchanged — so a cache keyed on a *canonical form* of the program turns
//! every mutant re-compilation into a free hit.
//!
//! The key is an FNV-1a 64-bit hash over a canonical description of:
//!
//! 1. the program, after hash elimination and
//!    [`chipmunk_lang::passes::canonicalize`] (which inverts every mutation
//!    kind in `chipmunk-mutate`),
//! 2. the grid search space (`max_stages`, `slots`),
//! 3. the stateless and stateful ALU specs,
//! 4. the sketch and CEGIS options that affect the *result* (widths,
//!    sampling, iteration cap, seed, approximation domain).
//!
//! Deliberately excluded: `timeout`, `deadline` and `parallel`. They bound
//! *how long* the answer may take, not *what* it is — a configuration
//! synthesized under one budget is equally valid under another.

use std::fmt::Write as _;

use chipmunk_lang::Program;

use crate::search::CompilerOptions;

/// 64-bit FNV-1a. Stable, dependency-free, and plenty for a cache keyed by
/// canonical text (collisions would need two distinct canonical
/// descriptions hashing equal — acceptable for a result cache).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical source text of a program: hash calls eliminated, then
/// normalized by [`chipmunk_lang::passes::canonicalize`] at `width` bits.
/// Two programs related by any `chipmunk-mutate` rewrite share this text.
pub fn canonical_text(prog: &Program, width: u8) -> String {
    let mut p = prog.clone();
    if p.stmts().iter().any(|s| s.contains_hash()) {
        chipmunk_lang::passes::eliminate_hashes(&mut p);
    }
    chipmunk_lang::passes::canonicalize(&mut p, width);
    p.to_string()
}

/// The field and state names a compilation of `prog` is laid out over, in
/// index order: the submitted program's names after hash elimination (each
/// hash call appends a fresh metadata field, exactly as [`crate::compile`]
/// does internally). `CodegenSuccess::decoded.field_to_container` is
/// indexed by this field list.
///
/// Index order is *requester-local*: [`canonical_text`] (and therefore
/// [`cache_key`]) orders by name, so two programs can share a key while
/// numbering their fields differently. A result cache keyed by
/// [`cache_key`] must carry these name lists alongside the result and
/// remap indices by name when serving a different submitter.
pub fn layout_names(prog: &Program) -> (Vec<String>, Vec<String>) {
    let mut p = prog.clone();
    if p.stmts().iter().any(|s| s.contains_hash()) {
        chipmunk_lang::passes::eliminate_hashes(&mut p);
    }
    (p.field_names().to_vec(), p.state_names().to_vec())
}

/// Content hash of a compilation query, as a 16-hex-digit string.
pub fn cache_key(prog: &Program, opts: &CompilerOptions) -> String {
    let mut desc = String::new();
    let _ = writeln!(
        desc,
        "prog:{}",
        canonical_text(prog, opts.cegis.verify_width)
    );
    let _ = writeln!(
        desc,
        "grid:max_stages={};slots={:?}",
        opts.max_stages, opts.slots
    );
    let _ = writeln!(desc, "stateless:{:?}", opts.stateless);
    let _ = writeln!(desc, "stateful:{:?}", opts.stateful);
    let _ = writeln!(desc, "sketch:{:?}", opts.sketch);
    let c = &opts.cegis;
    let _ = writeln!(
        desc,
        "cegis:vw={};sw={:?};sib={};nii={};mi={};seed={};dw={:?}",
        c.verify_width,
        c.screen_width,
        c.synth_input_bits,
        c.num_initial_inputs,
        c.max_iters,
        c.seed,
        c.domain_width,
    );
    format!("{:016x}", fnv1a64(desc.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_lang::parse;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn mutants_share_a_key() {
        let opts = CompilerOptions::small_for_tests();
        let base = parse("state s; if (s == 3) { s = 0; } else { s = s + 1; }").unwrap();
        let mutants = [
            // CommuteOperands (s + 1 → 1 + s) and MirrorComparison (== flipped).
            "state s; if (3 == s) { s = 0; } else { s = 1 + s; }",
            // NegateBranch.
            "state s; if (!(s == 3)) { s = s + 1; } else { s = 0; }",
            // AddIdentity.
            "state s; if (s == 3) { s = 0 + 0; } else { s = s + 1 + 0; }",
        ];
        let key = cache_key(&base, &opts);
        for m in mutants {
            let mp = parse(m).unwrap();
            assert_eq!(cache_key(&mp, &opts), key, "mutant diverged: {m}");
        }
    }

    #[test]
    fn different_programs_or_options_get_different_keys() {
        let opts = CompilerOptions::small_for_tests();
        let a = parse("pkt.x = pkt.a + pkt.b;").unwrap();
        let b = parse("pkt.x = pkt.a - pkt.b;").unwrap();
        assert_ne!(cache_key(&a, &opts), cache_key(&b, &opts));
        let mut wider = opts.clone();
        wider.cegis.verify_width = 8;
        assert_ne!(cache_key(&a, &opts), cache_key(&a, &wider));
        let mut deeper = opts.clone();
        deeper.max_stages += 1;
        assert_ne!(cache_key(&a, &opts), cache_key(&a, &deeper));
    }

    #[test]
    fn key_equal_programs_can_still_number_fields_differently() {
        // Canonical text orders by *name*, so these two commuted programs
        // share a key — but their first-use field numbering differs. This
        // is exactly why cached results must carry their name lists and be
        // remapped per requester (see chipmunk-serve).
        let opts = CompilerOptions::small_for_tests();
        let a = parse("pkt.x = pkt.b | pkt.a; pkt.y = pkt.a;").unwrap();
        let b = parse("pkt.x = pkt.a | pkt.b; pkt.y = pkt.a;").unwrap();
        assert_eq!(cache_key(&a, &opts), cache_key(&b, &opts));
        let (fa, sa) = layout_names(&a);
        let (fb, sb) = layout_names(&b);
        assert_eq!(fa, ["x", "b", "a", "y"]);
        assert_eq!(fb, ["x", "a", "b", "y"]);
        assert_eq!(sa, sb);
    }

    #[test]
    fn layout_names_include_hash_metadata_fields() {
        let p = parse("state s; s = hash(pkt.a, pkt.b) % 8; pkt.out = s;").unwrap();
        let (fields, states) = layout_names(&p);
        assert_eq!(fields, ["a", "b", "out", "hash_0"]);
        assert_eq!(states, ["s"]);
    }

    #[test]
    fn budget_knobs_do_not_change_the_key() {
        let prog = parse("pkt.x = pkt.a;").unwrap();
        let opts = CompilerOptions::small_for_tests();
        let mut budgeted = opts.clone();
        budgeted.timeout = Some(std::time::Duration::from_secs(5));
        budgeted.parallel = true;
        // Solver resource ceilings are budget knobs too: a config
        // synthesized under a tight conflict or memory budget is equally
        // valid under a loose one, so they must not fragment the cache.
        budgeted.cegis.budget = chipmunk_sat::ResourceBudget {
            conflicts: Some(10_000),
            propagations: Some(1_000_000),
            clause_bytes: Some(1 << 20),
        };
        assert_eq!(cache_key(&prog, &opts), cache_key(&prog, &budgeted));
    }
}
