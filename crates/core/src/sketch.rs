//! Sketch generation: the symbolic pipeline with holes.
//!
//! A [`Sketch`] fixes a grid shape and lays out one hole per hardware
//! configuration of Table 1 of the paper:
//!
//! | hole | configuration |
//! |---|---|
//! | `stage{s}_slot{j}_opcode` | stateless ALU opcode |
//! | `stage{s}_slot{j}_imm` | immediate operand |
//! | `stage{s}_slot{j}_mux_{a,b}` | stateless input-mux controls |
//! | `stage{s}_slot{j}_pkt_mux{k}` | stateful input-mux controls |
//! | `stage{s}_slot{j}_sfh_<name>` | stateful template holes |
//! | `stage{s}_omux{j}` | output-mux control per container |
//! | `state{v}_stage` | state-variable allocation (canonical rows) |
//! | `fld{f}_cont{c}` | packet-field allocation indicators (non-canonical mode only) |
//!
//! Canonicalization (§3, Figure 4 of the paper) pins packet field *i* to
//! container *i* and state variable *v* to stateful-ALU row *v*, leaving
//! only the state's *stage* as a hole; the non-canonical mode (used by the
//! canonicalization ablation) instead synthesizes a full field→container
//! indicator matrix under one-hot constraints.

use chipmunk_bv::{Binding, Blaster, BvOp, Circuit, TermId};
use chipmunk_pisa::{
    stateless, GridSpec, OutMuxSel, PipelineConfig, StageConfig, StatefulConfig, StatelessConfig,
};

/// Options controlling sketch construction.
#[derive(Clone, Copy, Debug)]
pub struct SketchOptions {
    /// Pin packet field `i` to PHV container `i` (Figure 4). Default true;
    /// the ablation benchmark turns this off.
    pub canonical_fields: bool,
}

impl Default for SketchOptions {
    fn default() -> Self {
        SketchOptions {
            canonical_fields: true,
        }
    }
}

/// One named hole with its bit width.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HoleDecl {
    /// Unique name, stable across [`Sketch::symbolic`] and
    /// [`Sketch::decode`].
    pub name: String,
    /// Bits of freedom.
    pub bits: u8,
}

/// Symbolic outputs of a sketch instantiation.
#[derive(Clone, Debug)]
pub struct SketchOutputs {
    /// Final value of each packet field.
    pub field_outs: Vec<TermId>,
    /// Final value of each state variable.
    pub state_outs: Vec<TermId>,
    /// Width-1 constraint terms that must all hold (allocation one-hot
    /// constraints; empty in canonical mode).
    pub constraints: Vec<TermId>,
}

/// The decoded result of a synthesis run.
#[derive(Clone, Debug)]
pub struct DecodedConfig {
    /// The concrete hardware configuration.
    pub pipeline: PipelineConfig,
    /// Container index assigned to each packet field (identity in canonical
    /// mode).
    pub field_to_container: Vec<usize>,
}

/// A symbolic pipeline over a fixed grid, with holes for every hardware
/// configuration.
#[derive(Clone, Debug)]
pub struct Sketch {
    grid: GridSpec,
    num_fields: usize,
    num_states: usize,
    options: SketchOptions,
    holes: Vec<HoleDecl>,
}

fn bits_for(n: usize) -> u8 {
    let mut b = 1u8;
    while (1usize << b) < n {
        b += 1;
    }
    b
}

impl Sketch {
    /// Build the hole layout for a grid and a program shape.
    ///
    /// # Errors
    /// If the program cannot possibly fit: more fields than containers, or
    /// more state variables than stateful-ALU rows.
    pub fn new(
        grid: GridSpec,
        num_fields: usize,
        num_states: usize,
        options: SketchOptions,
    ) -> Result<Sketch, String> {
        if num_fields > grid.slots {
            return Err(format!(
                "{num_fields} packet fields need {num_fields} PHV containers, grid has {}",
                grid.slots
            ));
        }
        if num_states > grid.slots {
            return Err(format!(
                "{num_states} state variables need {num_states} stateful-ALU rows, grid has {}",
                grid.slots
            ));
        }
        grid.stateful.validate()?;
        let mut holes = Vec::new();
        let mux_bits = bits_for(grid.slots);
        let omux_bits = bits_for(grid.slots + 1);
        if !options.canonical_fields {
            for f in 0..num_fields {
                for c in 0..grid.slots {
                    holes.push(HoleDecl {
                        name: format!("fld{f}_cont{c}"),
                        bits: 1,
                    });
                }
            }
        }
        for v in 0..num_states {
            holes.push(HoleDecl {
                name: format!("state{v}_stage"),
                bits: bits_for(grid.stages),
            });
        }
        for s in 0..grid.stages {
            for j in 0..grid.slots {
                holes.push(HoleDecl {
                    name: format!("stage{s}_slot{j}_opcode"),
                    bits: grid.stateless.opcode_bits(),
                });
                holes.push(HoleDecl {
                    name: format!("stage{s}_slot{j}_imm"),
                    bits: grid.stateless.imm_bits,
                });
                holes.push(HoleDecl {
                    name: format!("stage{s}_slot{j}_mux_a"),
                    bits: mux_bits,
                });
                holes.push(HoleDecl {
                    name: format!("stage{s}_slot{j}_mux_b"),
                    bits: mux_bits,
                });
            }
            for j in 0..grid.slots {
                for k in 0..grid.stateful.num_pkt_operands {
                    holes.push(HoleDecl {
                        name: format!("stage{s}_slot{j}_pkt_mux{k}"),
                        bits: mux_bits,
                    });
                }
                for (hn, hb) in &grid.stateful.holes {
                    holes.push(HoleDecl {
                        name: format!("stage{s}_slot{j}_sfh_{hn}"),
                        bits: *hb,
                    });
                }
            }
            for j in 0..grid.slots {
                holes.push(HoleDecl {
                    name: format!("stage{s}_omux{j}"),
                    bits: omux_bits,
                });
            }
        }
        Ok(Sketch {
            grid,
            num_fields,
            num_states,
            options,
            holes,
        })
    }

    /// The grid this sketch targets.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The hole layout, in the order expected by [`Sketch::symbolic`] and
    /// [`Sketch::decode`].
    pub fn holes(&self) -> &[HoleDecl] {
        &self.holes
    }

    /// Total hole bits — the log2 of the configuration-space size, the
    /// quantity the paper's §1 calls out as the scaling challenge.
    pub fn total_hole_bits(&self) -> u32 {
        self.holes.iter().map(|h| h.bits as u32).sum()
    }

    /// The widest single hole. Circuits instantiating this sketch must use
    /// at least this value width, otherwise selector codes would be
    /// truncated and the symbolic and concrete semantics would diverge.
    pub fn max_hole_bits(&self) -> u8 {
        self.holes.iter().map(|h| h.bits).max().unwrap_or(1)
    }

    fn hole_index(&self, name: &str) -> usize {
        self.holes
            .iter()
            .position(|h| h.name == name)
            .unwrap_or_else(|| panic!("no hole named {name}"))
    }

    /// Instantiate the pipeline symbolically.
    ///
    /// `hole_terms` supplies one term per hole (same order as
    /// [`Sketch::holes`]); `field_ins`/`state_ins` are the shared input
    /// terms. Returns the symbolic outputs plus any allocation constraints
    /// to assert.
    pub fn symbolic(
        &self,
        c: &mut Circuit,
        hole_terms: &[TermId],
        field_ins: &[TermId],
        state_ins: &[TermId],
    ) -> SketchOutputs {
        assert_eq!(hole_terms.len(), self.holes.len());
        assert_eq!(field_ins.len(), self.num_fields);
        assert_eq!(state_ins.len(), self.num_states);
        assert!(
            c.width() >= self.max_hole_bits(),
            "circuit width {} cannot represent {}-bit holes",
            c.width(),
            self.max_hole_bits()
        );
        let w = self.grid.slots;
        let zero = c.constant(0);
        let h = |name: String| hole_terms[self.hole_index(&name)];

        let mut constraints = Vec::new();

        // --- Field → container wiring (input side).
        let mut containers: Vec<TermId> = vec![zero; w];
        if self.options.canonical_fields {
            containers[..self.num_fields].copy_from_slice(field_ins);
        } else {
            // container c = the field whose indicator I[f][c] is set.
            for (ci, cont) in containers.iter_mut().enumerate() {
                let mut acc = zero;
                for (f, &fin) in field_ins.iter().enumerate() {
                    let ind = h(format!("fld{f}_cont{ci}"));
                    let one = c.constant(1);
                    let sel = c.binop(BvOp::Eq, ind, one);
                    acc = c.mux(sel, fin, acc);
                }
                *cont = acc;
            }
            // One-hot constraints: each field in exactly one container,
            // each container holds at most one field.
            let one = c.constant(1);
            for f in 0..self.num_fields {
                let mut sum = zero;
                for ci in 0..w {
                    let ind = h(format!("fld{f}_cont{ci}"));
                    sum = c.binop(BvOp::Add, sum, ind);
                }
                constraints.push(c.binop(BvOp::Eq, sum, one));
            }
            for ci in 0..w {
                let mut sum = zero;
                for f in 0..self.num_fields {
                    let ind = h(format!("fld{f}_cont{ci}"));
                    sum = c.binop(BvOp::Add, sum, ind);
                }
                constraints.push(c.binop(BvOp::Ule, sum, one));
            }
        }

        // --- State allocation: state v is active in stage `state{v}_stage`
        // at row v (canonical rows).
        let mut state_cur: Vec<TermId> = state_ins.to_vec();

        // --- Stages.
        for s in 0..self.grid.stages {
            // Stateless ALUs.
            let mut dest: Vec<TermId> = Vec::with_capacity(w);
            for j in 0..w {
                let a = select(c, h(format!("stage{s}_slot{j}_mux_a")), &containers);
                let b = select(c, h(format!("stage{s}_slot{j}_mux_b")), &containers);
                let imm = h(format!("stage{s}_slot{j}_imm"));
                let opcode = h(format!("stage{s}_slot{j}_opcode"));
                dest.push(stateless::symbolic_alu(
                    &self.grid.stateless,
                    c,
                    a,
                    b,
                    imm,
                    opcode,
                ));
            }
            // Stateful ALUs (row v can only hold state v).
            let mut salu_out: Vec<TermId> = vec![zero; w];
            for j in 0..w.min(self.num_states) {
                let stage_hole = h(format!("state{j}_stage"));
                let s_const = c.constant(s as u64);
                // Out-of-range stage codes clamp to the last stage, so every
                // state variable is always allocated somewhere (mirrored by
                // `decode`).
                let active = if s + 1 == self.grid.stages {
                    c.binop(BvOp::Uge, stage_hole, s_const)
                } else {
                    c.binop(BvOp::Eq, stage_hole, s_const)
                };
                let pkts: Vec<TermId> = (0..self.grid.stateful.num_pkt_operands)
                    .map(|k| select(c, h(format!("stage{s}_slot{j}_pkt_mux{k}")), &containers))
                    .collect();
                let sf_holes: Vec<TermId> = self
                    .grid
                    .stateful
                    .holes
                    .iter()
                    .map(|(hn, _)| h(format!("stage{s}_slot{j}_sfh_{hn}")))
                    .collect();
                let (new_state, out) =
                    self.grid
                        .stateful
                        .symbolic(c, &sf_holes, state_ins[j], &pkts);
                state_cur[j] = c.mux(active, new_state, state_cur[j]);
                salu_out[j] = c.mux(active, out, zero);
            }
            // Output muxes: values 0..w-1 select stateful ALU outputs; the
            // last value selects the container's own stateless ALU.
            let mut next: Vec<TermId> = Vec::with_capacity(w);
            for (j, &d) in dest.iter().enumerate() {
                let mut options = salu_out.clone();
                options.push(d);
                next.push(select(c, h(format!("stage{s}_omux{j}")), &options));
            }
            containers = next;
        }

        // --- Field outputs.
        let field_outs: Vec<TermId> = if self.options.canonical_fields {
            containers[..self.num_fields].to_vec()
        } else {
            (0..self.num_fields)
                .map(|f| {
                    let mut acc = zero;
                    let one = c.constant(1);
                    for (ci, &cont) in containers.iter().enumerate() {
                        let ind = h(format!("fld{f}_cont{ci}"));
                        let sel = c.binop(BvOp::Eq, ind, one);
                        acc = c.mux(sel, cont, acc);
                    }
                    acc
                })
                .collect()
        };

        SketchOutputs {
            field_outs,
            state_outs: state_cur,
            constraints,
        }
    }

    /// Allocate fresh solver literals for every hole.
    ///
    /// Returns one literal vector per hole, in hole order — share these
    /// across per-counterexample instantiations via [`Binding::Bits`].
    pub fn fresh_hole_bits(&self, blaster: &mut Blaster<'_>) -> Vec<Vec<chipmunk_sat::Lit>> {
        self.holes
            .iter()
            .map(|hd| blaster.fresh_bits(hd.bits))
            .collect()
    }

    /// Bind hole input terms of `circuit` to shared literals.
    pub fn bind_holes(
        &self,
        circuit: &Circuit,
        hole_terms: &[TermId],
        bits: &[Vec<chipmunk_sat::Lit>],
        blaster: &mut Blaster<'_>,
    ) {
        for (i, &t) in hole_terms.iter().enumerate() {
            // Hole inputs are value-width circuit inputs; pad the hole's
            // bits with constant-false to the circuit width.
            let mut padded = bits[i].clone();
            let f = !blaster.true_lit();
            while padded.len() < circuit.width() as usize {
                padded.push(f);
            }
            blaster.bind(circuit.input_id(t), Binding::Bits(padded));
        }
    }

    /// Decode concrete hole values (same order as [`Sketch::holes`]) into a
    /// hardware configuration.
    pub fn decode(&self, hole_values: &[u64]) -> DecodedConfig {
        assert_eq!(hole_values.len(), self.holes.len());
        let g = |name: String| hole_values[self.hole_index(&name)];
        let w = self.grid.slots;
        let clamp = |v: u64, n: usize| (v as usize).min(n - 1);

        let field_to_container: Vec<usize> = if self.options.canonical_fields {
            (0..self.num_fields).collect()
        } else {
            (0..self.num_fields)
                .map(|f| {
                    (0..w)
                        .find(|&c| g(format!("fld{f}_cont{c}")) & 1 == 1)
                        .unwrap_or(f)
                })
                .collect()
        };

        let mut stages = Vec::with_capacity(self.grid.stages);
        for s in 0..self.grid.stages {
            let stateless_cfg: Vec<StatelessConfig> = (0..w)
                .map(|j| StatelessConfig {
                    opcode: g(format!("stage{s}_slot{j}_opcode")),
                    imm: g(format!("stage{s}_slot{j}_imm")),
                    mux_a: clamp(g(format!("stage{s}_slot{j}_mux_a")), w),
                    mux_b: clamp(g(format!("stage{s}_slot{j}_mux_b")), w),
                })
                .collect();
            let stateful_cfg: Vec<StatefulConfig> = (0..w)
                .map(|j| {
                    // Out-of-range stage codes clamp to the last stage,
                    // mirroring `symbolic`.
                    let active = j < self.num_states
                        && clamp(g(format!("state{j}_stage")), self.grid.stages) == s;
                    StatefulConfig {
                        state_var: if active { Some(j) } else { None },
                        pkt_muxes: (0..self.grid.stateful.num_pkt_operands)
                            .map(|k| clamp(g(format!("stage{s}_slot{j}_pkt_mux{k}")), w))
                            .collect(),
                        holes: self
                            .grid
                            .stateful
                            .holes
                            .iter()
                            .map(|(hn, _)| g(format!("stage{s}_slot{j}_sfh_{hn}")))
                            .collect(),
                    }
                })
                .collect();
            let out_mux: Vec<OutMuxSel> = (0..w)
                .map(|j| {
                    let v = g(format!("stage{s}_omux{j}")) as usize;
                    if v < w {
                        OutMuxSel::Stateful(v)
                    } else {
                        OutMuxSel::Stateless
                    }
                })
                .collect();
            stages.push(StageConfig {
                stateless: stateless_cfg,
                stateful: stateful_cfg,
                out_mux,
            });
        }
        DecodedConfig {
            pipeline: PipelineConfig { stages },
            field_to_container,
        }
    }
}

/// Mux select over `options` with out-of-range defaulting to the last,
/// matching both [`chipmunk_pisa`]'s concrete executor and the decode
/// clamping.
fn select(c: &mut Circuit, sel: TermId, options: &[TermId]) -> TermId {
    let mut acc = options[options.len() - 1];
    for (i, &opt) in options.iter().enumerate().rev().skip(1) {
        let idx = c.constant(i as u64);
        let is_i = c.binop(BvOp::Eq, sel, idx);
        acc = c.mux(is_i, opt, acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_bv::InputId;
    use chipmunk_pisa::stateful::library;
    use chipmunk_pisa::Pipeline;

    fn grid(stages: usize, slots: usize) -> GridSpec {
        GridSpec::new(stages, slots, library::raw(2), 2)
    }

    #[test]
    fn hole_layout_is_deterministic_and_named() {
        let sk = Sketch::new(grid(2, 2), 1, 1, SketchOptions::default()).unwrap();
        let names: Vec<&str> = sk.holes().iter().map(|h| h.name.as_str()).collect();
        assert!(names.contains(&"state0_stage"));
        assert!(names.contains(&"stage1_slot1_opcode"));
        assert!(names.contains(&"stage0_omux0"));
        // No duplicates.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
        assert!(sk.total_hole_bits() > 0);
    }

    #[test]
    fn rejects_oversized_programs() {
        assert!(Sketch::new(grid(1, 2), 3, 0, SketchOptions::default()).is_err());
        assert!(Sketch::new(grid(1, 2), 1, 3, SketchOptions::default()).is_err());
    }

    #[test]
    fn non_canonical_mode_adds_indicator_holes() {
        let canon = Sketch::new(grid(1, 2), 2, 0, SketchOptions::default()).unwrap();
        let free = Sketch::new(
            grid(1, 2),
            2,
            0,
            SketchOptions {
                canonical_fields: false,
            },
        )
        .unwrap();
        assert_eq!(
            free.holes().len(),
            canon.holes().len() + 4 // 2 fields × 2 containers
        );
    }

    /// The symbolic pipeline must agree with the concrete executor for any
    /// hole assignment — for **every** library template: evaluate the
    /// circuit at random holes/inputs and run the decoded config through
    /// `chipmunk_pisa::Pipeline`. (A previous hole-name-aliasing bug in
    /// `nested_ifs` was only observable at this layer.)
    #[test]
    fn symbolic_matches_concrete_executor() {
        // Width must cover the widest hole (banzai opcode = 5 bits).
        let width = 6u8;
        let mask = (1u64 << width) - 1;
        for template in chipmunk_pisa::stateful::library::all(2) {
            let name = template.name.clone();
            let g = GridSpec::new(2, 2, template, 2);
            let sk = Sketch::new(g.clone(), 2, 1, SketchOptions::default()).unwrap();
            let mut c = Circuit::new(width);
            let hole_terms: Vec<TermId> = sk.holes().iter().map(|hd| c.input(&hd.name)).collect();
            let f0 = c.input("f0");
            let f1 = c.input("f1");
            let s0 = c.input("s0");
            let outs = sk.symbolic(&mut c, &hole_terms, &[f0, f1], &[s0]);
            assert!(outs.constraints.is_empty());

            let mut seed = 0xdead_beef_cafe_1234u64 ^ sk.total_hole_bits() as u64;
            for round in 0..40 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mut s = seed;
                let mut hole_values = Vec::new();
                for hd in sk.holes() {
                    s = s.wrapping_mul(2654435761).wrapping_add(17);
                    hole_values.push((s >> 7) & ((1u64 << hd.bits) - 1));
                }
                let fv = [(seed >> 3) & mask, (seed >> 11) & mask];
                let sv = (seed >> 17) & mask;

                // Circuit evaluation.
                let mut env: Vec<u64> = hole_values.clone();
                env.push(fv[0]);
                env.push(fv[1]);
                env.push(sv);
                let env2 = env.clone();
                let lookup = move |i: InputId| env2[i.index()];
                let got = c.eval_many(
                    &[outs.field_outs[0], outs.field_outs[1], outs.state_outs[0]],
                    &lookup,
                );

                // Concrete executor on the decoded config.
                let dec = sk.decode(&hole_values);
                let mut pipe = Pipeline::new(g.clone(), dec.pipeline, 1, width).unwrap();
                pipe.set_state(0, sv);
                let phv_out = pipe.exec(&[fv[0], fv[1]]);
                assert_eq!(
                    got,
                    vec![phv_out[0], phv_out[1], pipe.state(0)],
                    "template {name} round {round} holes {hole_values:?} fv {fv:?} sv {sv}"
                );
            }
        }
    }

    #[test]
    fn decode_produces_valid_configs() {
        let g = grid(3, 2);
        let sk = Sketch::new(g.clone(), 2, 2, SketchOptions::default()).unwrap();
        // All-zero holes: both states in stage 0.
        let zeros = vec![0u64; sk.holes().len()];
        let dec = sk.decode(&zeros);
        assert!(dec.pipeline.validate(&g, 2).is_ok());
        assert_eq!(dec.field_to_container, vec![0, 1]);
    }
}
