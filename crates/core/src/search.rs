//! The compiler driver: grid-size search over CEGIS runs.
//!
//! PISA compilation is all-or-nothing (§1 of the paper): a program either
//! fits a grid or it does not. The driver therefore tries grids with 1, 2,
//! 3, … stages and returns the **first** success, which is automatically
//! the minimal pipeline depth — the reason Chipmunk's Figure 5 stage counts
//! beat Domino's and show no variance across mutations.
//!
//! Since the planner/executor split, this module is a thin adapter: it
//! resolves the program against the grid (hash elimination, slot
//! resolution), asks [`chipmunk_plan`] for a [`CompilePlan`] — the same
//! escalation schedule, reified as data — and executes it with a runner
//! that maps one [`PlanStep`] to a sketch + CEGIS attempt and a certifier
//! that gates every win through [`crate::certify`]. Portfolio mode
//! ([`CompilerOptions::portfolio`]) races hole-restriction strategies per
//! depth, first certified win cancels the rest.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chipmunk_lang::Program;
use chipmunk_pisa::{
    grid::resources_of, GridSpec, ResourceUsage, StatefulAluSpec, StatelessAluSpec,
};
use chipmunk_plan::{
    CompilePlan, ExecControl, ExecError, ExecSuccess, Observer, PlanInputs, PlanStep, StepError,
    Strategy,
};

use crate::cegis::{CegisOptions, CegisStats, InfeasibleCert, SynthesisError, Synthesized};
use crate::sketch::{DecodedConfig, Sketch, SketchOptions};

/// Options for a full compilation.
#[derive(Clone, Debug)]
pub struct CompilerOptions {
    /// Largest pipeline depth to try (Tofino has 12 stages; the paper's
    /// benchmarks fit well under that).
    pub max_stages: usize,
    /// PHV containers / ALUs per stage. Defaults to
    /// `max(#fields, #states, 1)` — the smallest grid the program can
    /// occupy.
    pub slots: Option<usize>,
    /// Stateful ALU template for the (homogeneous) grid.
    pub stateful: StatefulAluSpec,
    /// Stateless ALU description.
    pub stateless: StatelessAluSpec,
    /// Sketch construction options (canonicalization).
    pub sketch: SketchOptions,
    /// CEGIS options (verification widths, input sampling, iteration cap).
    pub cegis: CegisOptions,
    /// Overall wall-clock budget for the whole search.
    pub timeout: Option<Duration>,
    /// Try all grid depths concurrently on OS threads and return the
    /// shallowest success (the search-space symmetry of §3 makes the runs
    /// independent).
    pub parallel: bool,
    /// Portfolio search: at each depth, race the hole-restriction
    /// strategies (opcode-restricted / canonical-allocation / full-ALU) on
    /// worker threads; the first **certified** win cancels the others. No
    /// single strategy dominates across benchmarks, so the race wins on
    /// wall-clock. Takes precedence over `parallel`.
    pub portfolio: bool,
}

impl CompilerOptions {
    /// Immediate-operand bit width shared by the CLI and serve defaults.
    pub const SERVICE_IMM_BITS: u8 = 4;
    /// Stateful ALU template name shared by the CLI and serve defaults.
    pub const SERVICE_TEMPLATE: &'static str = "if_else_raw";
    /// CEGIS verification width shared by the CLI and serve defaults.
    pub const SERVICE_VERIFY_WIDTH: u8 = 10;
    /// Pipeline-depth cap shared by the CLI and serve defaults.
    pub const SERVICE_MAX_STAGES: usize = 4;
    /// Wall-clock budget shared by the CLI and serve defaults.
    pub const SERVICE_TIMEOUT_MS: u64 = 300_000;

    /// Paper-like defaults for a given stateful ALU template.
    pub fn new(stateful: StatefulAluSpec) -> Self {
        CompilerOptions {
            max_stages: 6,
            slots: None,
            stateful,
            stateless: StatelessAluSpec::banzai(4),
            sketch: SketchOptions::default(),
            cegis: CegisOptions::default(),
            timeout: None,
            parallel: false,
            portfolio: false,
        }
    }

    /// The service-facing defaults shared by `chipmunkc compile`,
    /// `chipmunkc submit`, and the serve protocol decoder. Both front ends
    /// build from this single constructor so a new knob cannot silently
    /// diverge between the CLI path and the daemon path.
    pub fn service_defaults() -> Self {
        let stateful = chipmunk_pisa::stateful::library::by_name(
            Self::SERVICE_TEMPLATE,
            Self::SERVICE_IMM_BITS,
        )
        .expect("default template is in the library");
        let mut o = CompilerOptions::new(stateful);
        o.stateless = StatelessAluSpec::banzai(Self::SERVICE_IMM_BITS);
        o.cegis.verify_width = Self::SERVICE_VERIFY_WIDTH;
        o.max_stages = Self::SERVICE_MAX_STAGES;
        o.timeout = Some(Duration::from_millis(Self::SERVICE_TIMEOUT_MS));
        o
    }

    /// Small widths and grids for fast unit tests and doctests.
    pub fn small_for_tests() -> Self {
        let mut o = CompilerOptions::new(chipmunk_pisa::stateful::library::if_else_raw(3));
        o.max_stages = 2;
        o.stateless = StatelessAluSpec::banzai(3);
        o.cegis = CegisOptions {
            verify_width: 6,
            screen_width: Some(3),
            synth_input_bits: 3,
            num_initial_inputs: 3,
            max_iters: 64,
            seed: 42,
            ..CegisOptions::default()
        };
        o
    }
}

/// A successful compilation.
#[derive(Clone, Debug)]
pub struct CodegenSuccess {
    /// The synthesized hardware configuration.
    pub decoded: DecodedConfig,
    /// Raw hole values (aligned with the winning sketch's hole layout).
    pub hole_values: Vec<u64>,
    /// The grid the program was fitted to.
    pub grid: GridSpec,
    /// Resource usage — the paper's Figure 5 metrics.
    pub resources: ResourceUsage,
    /// CEGIS work counters of the winning run.
    pub stats: CegisStats,
    /// Wall time of the whole search.
    pub elapsed: Duration,
    /// Grid depths attempted (sequential mode: failures before success).
    pub stages_tried: usize,
    /// The CEGIS counterexamples that shaped this result — replayed by
    /// [`crate::certify`] whenever the configuration is re-checked (e.g.
    /// after a cache hit in the serving layer).
    pub counterexamples: Vec<chipmunk_lang::PacketState>,
}

/// Why compilation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodegenError {
    /// The program shape cannot fit any grid (too many fields/states for
    /// the slot count).
    TooLarge(String),
    /// Synthesis proved the program infeasible for every grid depth up to
    /// `max_stages`. Carries the certification record of the deepest
    /// depth's UNSAT — the verdict that pins the "does not fit" claim.
    Infeasible(InfeasibleCert),
    /// The time budget or iteration caps were exhausted before a decision.
    Timeout,
    /// A search thread panicked. Carries the (truncated) panic message.
    /// This is a compiler defect surfaced as data instead of an unwinding
    /// thread, so the serving layer can answer the client and keep the
    /// worker alive.
    Internal(String),
    /// The options were self-contradictory (e.g. a verification width
    /// narrower than the sketch's widest hole) — caller error, reported
    /// before any solving starts.
    InvalidOptions(String),
    /// The synthesized configuration failed independent certification
    /// against the program spec — a compiler or cache defect caught at
    /// the last line of defense, never shipped to the caller.
    Uncertified(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::TooLarge(m) => write!(f, "program too large: {m}"),
            CodegenError::Infeasible(cert) => write!(
                f,
                "no grid up to max_stages fits the program ({})",
                if cert.certified {
                    "proof-certified"
                } else {
                    "unchecked"
                }
            ),
            CodegenError::Timeout => write!(f, "compilation timed out"),
            CodegenError::Internal(m) => write!(f, "internal compiler error: {m}"),
            CodegenError::InvalidOptions(m) => write!(f, "invalid options: {m}"),
            CodegenError::Uncertified(m) => {
                write!(f, "result failed certification: {m}")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// The program-dependent plan parameters: hash-eliminated program, its
/// field/state counts, and the resolved grid width.
struct ResolvedProgram {
    prog: Program,
    num_fields: usize,
    num_states: usize,
    slots: usize,
}

fn resolve_program(
    prog: &Program,
    opts: &CompilerOptions,
) -> Result<ResolvedProgram, CodegenError> {
    let mut prog = prog.clone();
    if prog.stmts().iter().any(|s| s.contains_hash()) {
        chipmunk_lang::passes::eliminate_hashes(&mut prog);
    }
    let num_fields = prog.field_names().len();
    let num_states = prog.state_names().len();
    let slots = opts
        .slots
        .unwrap_or_else(|| num_fields.max(num_states).max(1));
    if num_fields > slots || num_states > slots {
        return Err(CodegenError::TooLarge(format!(
            "{num_fields} fields / {num_states} states exceed {slots} slots"
        )));
    }
    Ok(ResolvedProgram {
        prog,
        num_fields,
        num_states,
        slots,
    })
}

fn plan_for(resolved: &ResolvedProgram, opts: &CompilerOptions) -> CompilePlan {
    chipmunk_plan::plan(&PlanInputs {
        max_stages: opts.max_stages,
        slots: resolved.slots,
        parallel: opts.parallel,
        portfolio: opts.portfolio,
        budget: opts.cegis.budget,
        canonical_fields: opts.sketch.canonical_fields,
    })
}

/// Produce the [`CompilePlan`] that [`compile`] would execute for this
/// program, without running it — the `chipmunkc plan --explain` entry
/// point, and what the serving layer fingerprints for resumable jobs.
///
/// Hash calls are eliminated and the grid width resolved exactly as in
/// [`compile`], so the plan's step shapes match the attempts a real run
/// would make. Fails with [`CodegenError::TooLarge`] when no grid fits.
pub fn plan_compilation(
    prog: &Program,
    opts: &CompilerOptions,
) -> Result<CompilePlan, CodegenError> {
    Ok(plan_for(&resolve_program(prog, opts)?, opts))
}

/// How one [`PlanStep`]'s strategy specializes the caller's options: the
/// stateless ALU to sketch with and the sketch canonicalization flag.
///
/// The mapping is identity-preserving for the planner's default plans:
/// `CanonicalAllocation` with `sketch.canonical_fields == true` (and
/// `FullAlu` with it `false`) reproduce the caller's options byte-for-byte,
/// which is what makes the default plan behavior-identical to the historic
/// escalation loop.
fn strategy_config(
    opts: &CompilerOptions,
    strategy: Strategy,
) -> (StatelessAluSpec, SketchOptions) {
    match strategy {
        Strategy::CanonicalAllocation => (
            opts.stateless.clone(),
            SketchOptions {
                canonical_fields: true,
            },
        ),
        Strategy::OpcodeRestricted => (
            StatelessAluSpec::arith_only(opts.stateless.imm_bits),
            SketchOptions {
                canonical_fields: true,
            },
        ),
        Strategy::FullAlu => (
            opts.stateless.clone(),
            SketchOptions {
                canonical_fields: false,
            },
        ),
    }
}

/// Re-encode every stateless opcode of `pipeline` from `from`'s op list
/// to `base`'s, by operation identity.
///
/// Two spec-relative artifacts must not leak out of a strategy step.
/// First, the opcode hole is `opcode_bits(from)` wide, so the solver may
/// legally pick an index past the end of `from.ops`; the ALU clamps such
/// an index to the last opcode, and that clamp has to be baked in here —
/// under a wider `base` the raw index would name a real, different
/// operation. Second, the same operation generally sits at a different
/// index in each list, so indices are translated op-by-op. Steps whose
/// spec *is* the base spec are left byte-identical (the default plan's
/// behavior-equivalence guarantee). An op missing from `base` makes the
/// candidate unusable on the caller's hardware: the step reports
/// [`StepError::Infeasible`], which portfolio grouping already treats as
/// non-authoritative for restricted strategies.
fn remap_stateless_ops(
    pipeline: &mut chipmunk_pisa::grid::PipelineConfig,
    from: &StatelessAluSpec,
    base: &StatelessAluSpec,
) -> Result<(), StepError> {
    if from == base {
        return Ok(());
    }
    for stage in &mut pipeline.stages {
        for alu in &mut stage.stateless {
            let clamped = (alu.opcode as usize).min(from.ops.len().saturating_sub(1));
            let op = from.ops[clamped];
            let idx = base
                .ops
                .iter()
                .position(|o| *o == op)
                // Not a proof-backed verdict — the candidate just cannot
                // run on the caller's hardware — so never authoritative.
                .ok_or(StepError::Infeasible { certified: false })?;
            alu.opcode = idx as u64;
        }
    }
    Ok(())
}

/// Execution knobs for [`compile_with_control`] beyond the options: the
/// serving layer's cancellation flag, journal-driven resume offset, and
/// per-step progress observer.
#[derive(Default)]
pub struct PlanControl<'a> {
    /// Cooperative cancellation: when another thread sets the flag, the
    /// search stops at the next solver checkpoint.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Skip plan steps with `index < resume_from` — they already completed
    /// (without winning) in a previous run of the same plan.
    pub resume_from: usize,
    /// Invoked once per executed step with its outcome; the serving layer
    /// journals progress and attributes per-strategy metrics here.
    pub observer: Option<Observer<'a>>,
}

/// Compile a packet transaction to a PISA configuration.
///
/// Hash calls are eliminated automatically (each becomes a fresh read-only
/// metadata field, as delivered by PISA hash units).
pub fn compile(prog: &Program, opts: &CompilerOptions) -> Result<CodegenSuccess, CodegenError> {
    compile_with_control(prog, opts, PlanControl::default())
}

/// [`compile`] with a cooperative cancellation flag. When another thread
/// sets the flag, the search stops at the next solver checkpoint and
/// reports [`CodegenError::Timeout`] — the serving layer uses this for
/// per-job timeouts and abortive shutdown. Works in every plan mode (in
/// racing groups a monitor fans the external flag out to every per-step
/// flag).
pub fn compile_with_cancel(
    prog: &Program,
    opts: &CompilerOptions,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<CodegenSuccess, CodegenError> {
    compile_with_control(
        prog,
        opts,
        PlanControl {
            cancel,
            ..PlanControl::default()
        },
    )
}

/// [`compile`] with full plan-execution control: cancellation, resuming a
/// half-executed plan at its first unfinished step, and a per-step
/// observer. This is the primitive the serve daemon drives; `compile` and
/// [`compile_with_cancel`] are thin wrappers.
pub fn compile_with_control(
    prog: &Program,
    opts: &CompilerOptions,
    ctl: PlanControl<'_>,
) -> Result<CodegenSuccess, CodegenError> {
    let start = Instant::now();
    let mut search_sp = chipmunk_trace::span!(
        "search.compile",
        max_stages = opts.max_stages,
        parallel = opts.parallel,
        portfolio = opts.portfolio,
    );
    let resolved = match resolve_program(prog, opts) {
        Ok(r) => r,
        Err(e) => {
            search_sp.record("result", "too_large");
            return Err(e);
        }
    };
    let plan = plan_for(&resolved, opts);
    let prog = &resolved.prog;
    // One job-wide wall-clock deadline: the sooner of the coarse timeout
    // and any caller-supplied (wire `deadline_ms`) CEGIS deadline. The
    // plan executor derives remaining-time budgets from it, and the
    // budget account pushes it down to every solver's own polling.
    let deadline = match (opts.timeout.map(|t| start + t), opts.cegis.deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let cegis_base = CegisOptions {
        deadline,
        ..opts.cegis
    };
    // Job-wide solver accounting: every plan step's synthesis and
    // verification solvers debit this one ledger, so the caller's budget
    // ceilings bound the whole compile, not each solver separately.
    let account = Arc::new(chipmunk_sat::BudgetAccount::new());
    account.set_deadline(deadline);
    // Cross-step counterexample pool: hard inputs discovered at a failed
    // depth/strategy seed the next step's initial test set, so escalation
    // and racing inherit the work already paid for.
    let cex_pool = Arc::new(std::sync::Mutex::new(Vec::new()));
    // The plan executor's StepError carries only a `certified` bit; the
    // full certification record of the *deepest* infeasible depth is
    // parked here so a final Infeasible can ship its proof to the caller.
    let infeasible_cert: std::sync::Mutex<Option<(usize, InfeasibleCert)>> =
        std::sync::Mutex::new(None);

    let runner = |step: &PlanStep,
                  cancel: Option<Arc<AtomicBool>>|
     -> Result<(Synthesized, GridSpec), StepError> {
        let (stateless, sketch_opts) = strategy_config(opts, step.strategy);
        let grid = GridSpec {
            stages: step.stages,
            slots: step.slots,
            stateless,
            stateful: opts.stateful.clone(),
        };
        let mut sp = chipmunk_trace::span!(
            "search.grid",
            stages = step.stages,
            slots = step.slots,
            strategy = step.strategy.name(),
        );
        let sketch = Sketch::new(
            grid.clone(),
            resolved.num_fields,
            resolved.num_states,
            sketch_opts,
        )
        // Structural: the sketch cannot even be constructed on this grid.
        // Deterministic and solver-free, so it needs no SAT proof to be
        // authoritative — but the certification record says so explicitly.
        .map_err(|_| {
            let cert = InfeasibleCert {
                certified: true,
                reason: Some("structural: sketch cannot be constructed on this grid".to_string()),
                ..InfeasibleCert::default()
            };
            let mut slot = infeasible_cert.lock().unwrap_or_else(|p| p.into_inner());
            match &*slot {
                Some((stages, _)) if *stages >= step.stages => {}
                _ => *slot = Some((step.stages, cert)),
            }
            StepError::Infeasible { certified: true }
        })?;
        let cegis_opts = CegisOptions {
            budget: step.budget,
            ..cegis_base
        };
        let res = crate::cegis::synthesize_with_control(
            prog,
            &sketch,
            &cegis_opts,
            crate::cegis::SynthControl {
                cancel,
                account: Some(account.clone()),
                cex_pool: Some(cex_pool.clone()),
            },
        );
        if chipmunk_trace::enabled() {
            sp.record(
                "result",
                match &res {
                    Ok(_) => "ok",
                    Err(SynthesisError::Infeasible(_)) => "infeasible",
                    Err(SynthesisError::Timeout) => "timeout",
                    Err(SynthesisError::Cancelled) => "cancelled",
                    Err(SynthesisError::InvalidOptions(_)) => "invalid_options",
                },
            );
        }
        let mut synthesized = res.map_err(|e| match e {
            SynthesisError::Infeasible(cert) => {
                let certified = cert.certified;
                let mut slot = infeasible_cert.lock().unwrap_or_else(|p| p.into_inner());
                match &*slot {
                    Some((stages, _)) if *stages >= step.stages => {}
                    _ => *slot = Some((step.stages, cert)),
                }
                StepError::Infeasible { certified }
            }
            SynthesisError::Timeout => StepError::Timeout,
            SynthesisError::Cancelled => StepError::Cancelled,
            SynthesisError::InvalidOptions(m) => StepError::InvalidOptions(m),
        })?;
        // A winner synthesized under a strategy-restricted ALU must leave
        // the step encoded against the caller's spec: downstream consumers
        // (the wire document, the result cache, serve-side recertification)
        // rebuild the grid from the caller's options and would decode the
        // restricted spec's opcode indices as different operations.
        remap_stateless_ops(
            &mut synthesized.decoded.pipeline,
            &grid.stateless,
            &opts.stateless,
        )?;
        let grid = GridSpec {
            stateless: opts.stateless.clone(),
            ..grid
        };
        Ok((synthesized, grid))
    };
    let certify = |_step: &PlanStep, candidate: &(Synthesized, GridSpec)| -> Result<(), String> {
        let (synthesized, grid) = candidate;
        // Replay the whole job's counterexample pool, not just this run's:
        // a winner must also survive the inputs earlier steps paid for.
        let pool = cex_pool.lock().unwrap().clone();
        crate::certify::certify_synthesized(prog, opts, grid, synthesized, &pool).map(|_| ())
    };

    let res = chipmunk_plan::execute(
        &plan,
        runner,
        certify,
        ExecControl {
            cancel: ctl.cancel,
            deadline,
            resume_from: ctl.resume_from,
            observer: ctl.observer,
            // Auto-detect: racing groups degrade to an ordered sequential
            // trial when the machine has no spare cores to race on.
            race_threads: None,
        },
    );
    match res {
        Ok(ExecSuccess {
            value: (synthesized, grid),
            ..
        }) => {
            let resources = resources_of(&grid, &synthesized.decoded.pipeline);
            let stages = grid.stages;
            search_sp.record("result", "ok");
            search_sp.record("stages", stages as u64);
            Ok(CodegenSuccess {
                decoded: synthesized.decoded,
                hole_values: synthesized.hole_values,
                grid,
                resources,
                stats: synthesized.stats,
                elapsed: start.elapsed(),
                stages_tried: stages,
                counterexamples: synthesized.counterexamples,
            })
        }
        Err(e) => {
            let err = match e {
                ExecError::Infeasible => {
                    let cert = infeasible_cert
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .take()
                        .map(|(_, c)| c)
                        .unwrap_or_else(|| {
                            InfeasibleCert::unchecked("no certification record retained")
                        });
                    CodegenError::Infeasible(cert)
                }
                // External cancellation keeps its historic wire meaning:
                // the caller's budget ran out either way.
                ExecError::Timeout | ExecError::Cancelled => CodegenError::Timeout,
                ExecError::InvalidOptions(m) => CodegenError::InvalidOptions(m),
                ExecError::Internal(m) => CodegenError::Internal(m),
                ExecError::Uncertified(m) => CodegenError::Uncertified(m),
            };
            search_sp.record(
                "result",
                match &err {
                    CodegenError::TooLarge(_) => "too_large",
                    CodegenError::Infeasible(_) => "infeasible",
                    CodegenError::Timeout => "timeout",
                    CodegenError::Internal(_) => "internal",
                    CodegenError::InvalidOptions(_) => "invalid_options",
                    CodegenError::Uncertified(_) => "uncertified",
                },
            );
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cegis::validate_decoded;
    use chipmunk_lang::parse;
    use chipmunk_plan::{RaceMode, StepOutcome};

    #[test]
    fn compiles_sampling_minimally() {
        let prog = parse(
            "state count;
             if (count == 3) { count = 0; pkt.sample = 1; }
             else { count = count + 1; pkt.sample = 0; }",
        )
        .unwrap();
        let opts = CompilerOptions::small_for_tests();
        let out = compile(&prog, &opts).expect("sampling fits");
        assert_eq!(out.resources.stages_used, 1);
        assert!(out.resources.max_alus_per_stage >= 1);
        // Validate end-to-end.
        let sketch = Sketch::new(
            out.grid.clone(),
            prog.field_names().len(),
            prog.state_names().len(),
            opts.sketch,
        )
        .unwrap();
        assert_eq!(
            validate_decoded(
                &prog,
                &sketch,
                &out.decoded,
                opts.cegis.verify_width,
                400,
                5
            ),
            None
        );
    }

    #[test]
    fn default_plan_mirrors_escalation_loop() {
        let prog = parse("state s; s = s + pkt.x; pkt.y = s;").unwrap();
        let opts = CompilerOptions::small_for_tests();
        let plan = plan_compilation(&prog, &opts).unwrap();
        assert_eq!(plan.steps.len(), opts.max_stages);
        assert_eq!(plan.groups.len(), opts.max_stages);
        for (i, step) in plan.steps.iter().enumerate() {
            assert_eq!(step.stages, i + 1);
            assert_eq!(step.strategy, Strategy::CanonicalAllocation);
            assert_eq!(plan.groups[step.group].mode, RaceMode::Solo);
        }
        // The strategy mapping reproduces the caller's options exactly.
        let (stateless, sketch) = strategy_config(&opts, Strategy::CanonicalAllocation);
        assert_eq!(stateless, opts.stateless);
        assert_eq!(sketch.canonical_fields, opts.sketch.canonical_fields);
    }

    #[test]
    fn restricted_opcodes_are_remapped_to_the_base_spec() {
        use chipmunk_pisa::grid::{PipelineConfig, StageConfig, StatelessConfig};
        let from = StatelessAluSpec::arith_only(4);
        let base = StatelessAluSpec::banzai(4);
        let alu = |opcode| StatelessConfig {
            opcode,
            imm: 0,
            mux_a: 0,
            mux_b: 0,
        };
        let mut pipeline = PipelineConfig {
            stages: vec![StageConfig {
                // Index 3 names SubImm in both lists; index 7 is past the
                // end of the 6-op restricted list (a 3-bit hole allows it)
                // and must clamp to PassA, not decode as banzai's Ne.
                stateless: vec![alu(3), alu(7)],
                stateful: vec![],
                out_mux: vec![],
            }],
        };
        remap_stateless_ops(&mut pipeline, &from, &base).unwrap();
        assert_eq!(pipeline.stages[0].stateless[0].opcode, 3);
        assert_eq!(pipeline.stages[0].stateless[1].opcode, 5); // PassA
                                                               // Identity specs are left untouched, raw indices included.
        let mut same = PipelineConfig {
            stages: vec![StageConfig {
                stateless: vec![alu(31)],
                stateful: vec![],
                out_mux: vec![],
            }],
        };
        remap_stateless_ops(&mut same, &base, &base).unwrap();
        assert_eq!(same.stages[0].stateless[0].opcode, 31);
        // An op the caller's ALU cannot express voids the candidate.
        let exotic = StatelessAluSpec {
            ops: vec![chipmunk_pisa::StatelessOp::Xor],
            imm_bits: 4,
        };
        let mut foreign = PipelineConfig {
            stages: vec![StageConfig {
                stateless: vec![alu(0)],
                stateful: vec![],
                out_mux: vec![],
            }],
        };
        assert!(matches!(
            remap_stateless_ops(&mut foreign, &exotic, &from),
            Err(StepError::Infeasible { certified: false })
        ));
    }

    #[test]
    fn portfolio_winners_certify_under_the_base_spec() {
        // End-to-end guard for the opcode-portability bug: a portfolio win
        // (whatever strategy produced it) must recertify from its public
        // parts with the *caller's* stateless spec, exactly as the serving
        // layer does when it rebuilds the grid from request options.
        let prog = parse("pkt.x = pkt.a;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.portfolio = true;
        let out = compile(&prog, &opts).expect("portfolio compile");
        assert_eq!(out.grid.stateless, opts.stateless);
        crate::certify::certify_success(&prog, &opts, &out).expect("base-spec certification");
    }

    #[test]
    fn portfolio_mode_compiles_and_certifies() {
        let prog = parse(
            "state count;
             if (count == 3) { count = 0; pkt.sample = 1; }
             else { count = count + 1; pkt.sample = 0; }",
        )
        .unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.portfolio = true;
        let plan = plan_compilation(&prog, &opts).unwrap();
        assert_eq!(plan.steps.len(), 3 * opts.max_stages);
        assert!(plan
            .groups
            .iter()
            .all(|g| g.mode == RaceMode::Strategies && g.steps.len() == 3));
        let out = compile(&prog, &opts).expect("portfolio compiles");
        // Certification is part of winning a strategy race, so any result
        // returned here passed it; the winner must still be depth-minimal.
        assert_eq!(out.resources.stages_used, 1);
    }

    #[test]
    fn observer_sees_cancelled_losers_not_failures() {
        use std::sync::Mutex;
        let prog = parse(
            "state count;
             if (count == 3) { count = 0; pkt.sample = 1; }
             else { count = count + 1; pkt.sample = 0; }",
        )
        .unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.portfolio = true;
        let reports: Mutex<Vec<(usize, StepOutcome)>> = Mutex::new(Vec::new());
        let observer = |r: &chipmunk_plan::StepReport| {
            reports.lock().unwrap().push((r.step, r.outcome));
        };
        let out = compile_with_control(
            &prog,
            &opts,
            PlanControl {
                observer: Some(&observer),
                ..PlanControl::default()
            },
        )
        .expect("portfolio compiles");
        assert_eq!(out.resources.stages_used, 1);
        let reports = reports.into_inner().unwrap();
        // Exactly the first group's three steps ran (depth 1 won).
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().any(|(_, o)| *o == StepOutcome::Success));
        // A raced-out loser is attributed as cancelled, never as a
        // timeout/failure — the stats-attribution contract.
        for (_, outcome) in &reports {
            assert!(
                matches!(
                    outcome,
                    StepOutcome::Success | StepOutcome::Cancelled | StepOutcome::Infeasible
                ),
                "unexpected outcome {outcome:?}"
            );
        }
    }

    #[test]
    fn resume_skips_completed_steps() {
        let prog = parse("state s; s = s + pkt.x; pkt.y = s;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.max_stages = 3;
        let full = compile(&prog, &opts).expect("fits");
        // Resuming past the winning depth must still find a (deeper)
        // solution, proving skipped steps are really skipped.
        let resumed = compile_with_control(
            &prog,
            &opts,
            PlanControl {
                resume_from: full.stages_tried,
                ..PlanControl::default()
            },
        )
        .expect("resume fits deeper");
        assert!(resumed.stages_tried > full.stages_tried);
    }

    #[test]
    fn infeasible_program_reports_infeasible() {
        let prog = parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.max_stages = 2;
        let err = compile(&prog, &opts).unwrap_err();
        let CodegenError::Infeasible(cert) = err else {
            panic!("expected Infeasible, got {err:?}");
        };
        // End-to-end: the driver-level verdict carries a validated proof
        // for the deepest depth, and it re-validates from the transcript.
        assert!(cert.certified, "unchecked: {:?}", cert.reason);
        let text = cert.proof.expect("certified verdicts ship the proof");
        let parsed = chipmunk_sat::Certificate::parse(&text).expect("parses");
        assert!(parsed
            .check(&chipmunk_sat::CheckBudget::default())
            .is_valid());
    }

    #[test]
    fn too_many_fields_for_slots() {
        let prog = parse("pkt.a = pkt.b + pkt.c; pkt.d = pkt.e;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.slots = Some(2);
        assert!(matches!(
            compile(&prog, &opts).unwrap_err(),
            CodegenError::TooLarge(_)
        ));
        assert!(matches!(
            plan_compilation(&prog, &opts).unwrap_err(),
            CodegenError::TooLarge(_)
        ));
    }

    #[test]
    fn global_timeout_is_respected() {
        let prog = parse("state s; s = s + pkt.x; pkt.y = s;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.timeout = Some(Duration::from_nanos(1));
        assert_eq!(compile(&prog, &opts).unwrap_err(), CodegenError::Timeout);
    }

    #[test]
    fn parallel_matches_sequential_depth() {
        let prog = parse("state s; s = s + 1; pkt.out = s;").unwrap();
        let mut seq = CompilerOptions::small_for_tests();
        seq.max_stages = 3;
        let a = compile(&prog, &seq).expect("sequential");
        let mut par = seq.clone();
        par.parallel = true;
        let b = compile(&prog, &par).expect("parallel");
        assert_eq!(a.grid.stages, b.grid.stages);
    }

    #[test]
    fn parallel_failure_diagnostics_match_sequential() {
        // An infeasible program must produce the same diagnostic in both
        // modes, every run — the racing executor must not let thread finish
        // order (or cancellation artifacts) leak into the error.
        let prog = parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let mut seq = CompilerOptions::small_for_tests();
        seq.max_stages = 2;
        let expected = compile(&prog, &seq).unwrap_err();
        // Proof transcripts legitimately differ run to run (thread finish
        // order shapes the counterexample pool and hence the refutation),
        // so the determinism contract is on the verdict and its
        // certification status, not the proof bytes.
        let CodegenError::Infeasible(seq_cert) = &expected else {
            panic!("expected Infeasible, got {expected:?}");
        };
        assert!(seq_cert.certified);
        let mut par = seq.clone();
        par.parallel = true;
        for run in 0..4 {
            let err = compile(&prog, &par).unwrap_err();
            let CodegenError::Infeasible(cert) = &err else {
                panic!("run {run}: expected Infeasible, got {err:?}");
            };
            assert!(cert.certified, "run {run}: unchecked: {:?}", cert.reason);
        }
    }

    #[test]
    fn external_cancel_stops_all_modes() {
        let prog = parse("state s; s = s + pkt.x; pkt.y = s;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        for (parallel, portfolio) in [(false, false), (true, false), (false, true)] {
            opts.parallel = parallel;
            opts.portfolio = portfolio;
            let cancel = Arc::new(AtomicBool::new(true));
            assert_eq!(
                compile_with_cancel(&prog, &opts, Some(cancel)).unwrap_err(),
                CodegenError::Timeout,
                "parallel={parallel} portfolio={portfolio}"
            );
        }
    }

    #[test]
    fn service_defaults_are_stable() {
        let o = CompilerOptions::service_defaults();
        assert_eq!(o.stateful.name, "if_else_raw");
        assert_eq!(o.stateless, StatelessAluSpec::banzai(4));
        assert_eq!(o.cegis.verify_width, 10);
        assert_eq!(o.max_stages, 4);
        assert_eq!(o.timeout, Some(Duration::from_millis(300_000)));
        assert!(!o.parallel && !o.portfolio);
    }

    #[test]
    fn hash_programs_compile_via_elimination() {
        let prog = parse("state last; last = hash(pkt.a) ; pkt.out = last;").unwrap();
        // hash(pkt.a) becomes a free metadata field; `last = field` fits raw.
        let mut opts = CompilerOptions::small_for_tests();
        opts.max_stages = 3;
        opts.slots = Some(3);
        compile(&prog, &opts).expect("hash program compiles");
    }
}
