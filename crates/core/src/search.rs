//! The compiler driver: grid-size search over CEGIS runs.
//!
//! PISA compilation is all-or-nothing (§1 of the paper): a program either
//! fits a grid or it does not. The driver therefore tries grids with 1, 2,
//! 3, … stages and returns the **first** success, which is automatically
//! the minimal pipeline depth — the reason Chipmunk's Figure 5 stage counts
//! beat Domino's and show no variance across mutations.

use std::time::{Duration, Instant};

use chipmunk_lang::Program;
use chipmunk_pisa::{
    grid::resources_of, GridSpec, ResourceUsage, StatefulAluSpec, StatelessAluSpec,
};

use crate::cegis::{CegisOptions, CegisStats, SynthesisError, Synthesized};
use crate::sketch::{DecodedConfig, Sketch, SketchOptions};

/// Options for a full compilation.
#[derive(Clone, Debug)]
pub struct CompilerOptions {
    /// Largest pipeline depth to try (Tofino has 12 stages; the paper's
    /// benchmarks fit well under that).
    pub max_stages: usize,
    /// PHV containers / ALUs per stage. Defaults to
    /// `max(#fields, #states, 1)` — the smallest grid the program can
    /// occupy.
    pub slots: Option<usize>,
    /// Stateful ALU template for the (homogeneous) grid.
    pub stateful: StatefulAluSpec,
    /// Stateless ALU description.
    pub stateless: StatelessAluSpec,
    /// Sketch construction options (canonicalization).
    pub sketch: SketchOptions,
    /// CEGIS options (verification widths, input sampling, iteration cap).
    pub cegis: CegisOptions,
    /// Overall wall-clock budget for the whole search.
    pub timeout: Option<Duration>,
    /// Try all grid depths concurrently on OS threads and return the
    /// shallowest success (the search-space symmetry of §3 makes the runs
    /// independent).
    pub parallel: bool,
}

impl CompilerOptions {
    /// Paper-like defaults for a given stateful ALU template.
    pub fn new(stateful: StatefulAluSpec) -> Self {
        CompilerOptions {
            max_stages: 6,
            slots: None,
            stateful,
            stateless: StatelessAluSpec::banzai(4),
            sketch: SketchOptions::default(),
            cegis: CegisOptions::default(),
            timeout: None,
            parallel: false,
        }
    }

    /// Small widths and grids for fast unit tests and doctests.
    pub fn small_for_tests() -> Self {
        let mut o = CompilerOptions::new(chipmunk_pisa::stateful::library::if_else_raw(3));
        o.max_stages = 2;
        o.stateless = StatelessAluSpec::banzai(3);
        o.cegis = CegisOptions {
            verify_width: 6,
            screen_width: Some(3),
            synth_input_bits: 3,
            num_initial_inputs: 3,
            max_iters: 64,
            seed: 42,
            ..CegisOptions::default()
        };
        o
    }
}

/// A successful compilation.
#[derive(Clone, Debug)]
pub struct CodegenSuccess {
    /// The synthesized hardware configuration.
    pub decoded: DecodedConfig,
    /// Raw hole values (aligned with the winning sketch's hole layout).
    pub hole_values: Vec<u64>,
    /// The grid the program was fitted to.
    pub grid: GridSpec,
    /// Resource usage — the paper's Figure 5 metrics.
    pub resources: ResourceUsage,
    /// CEGIS work counters of the winning run.
    pub stats: CegisStats,
    /// Wall time of the whole search.
    pub elapsed: Duration,
    /// Grid depths attempted (sequential mode: failures before success).
    pub stages_tried: usize,
    /// The CEGIS counterexamples that shaped this result — replayed by
    /// [`crate::certify`] whenever the configuration is re-checked (e.g.
    /// after a cache hit in the serving layer).
    pub counterexamples: Vec<chipmunk_lang::PacketState>,
}

/// Why compilation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodegenError {
    /// The program shape cannot fit any grid (too many fields/states for
    /// the slot count).
    TooLarge(String),
    /// Synthesis proved the program infeasible for every grid depth up to
    /// `max_stages`.
    Infeasible,
    /// The time budget or iteration caps were exhausted before a decision.
    Timeout,
    /// A search thread panicked. Carries the (truncated) panic message.
    /// This is a compiler defect surfaced as data instead of an unwinding
    /// thread, so the serving layer can answer the client and keep the
    /// worker alive.
    Internal(String),
    /// The options were self-contradictory (e.g. a verification width
    /// narrower than the sketch's widest hole) — caller error, reported
    /// before any solving starts.
    InvalidOptions(String),
    /// The synthesized configuration failed independent certification
    /// against the program spec — a compiler or cache defect caught at
    /// the last line of defense, never shipped to the caller.
    Uncertified(String),
}

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodegenError::TooLarge(m) => write!(f, "program too large: {m}"),
            CodegenError::Infeasible => write!(f, "no grid up to max_stages fits the program"),
            CodegenError::Timeout => write!(f, "compilation timed out"),
            CodegenError::Internal(m) => write!(f, "internal compiler error: {m}"),
            CodegenError::InvalidOptions(m) => write!(f, "invalid options: {m}"),
            CodegenError::Uncertified(m) => {
                write!(f, "result failed certification: {m}")
            }
        }
    }
}

impl std::error::Error for CodegenError {}

/// Compile a packet transaction to a PISA configuration.
///
/// Hash calls are eliminated automatically (each becomes a fresh read-only
/// metadata field, as delivered by PISA hash units).
pub fn compile(prog: &Program, opts: &CompilerOptions) -> Result<CodegenSuccess, CodegenError> {
    compile_with_cancel(prog, opts, None)
}

/// [`compile`] with a cooperative cancellation flag. When another thread
/// sets the flag, the search stops at the next solver checkpoint and
/// reports [`CodegenError::Timeout`] — the serving layer uses this for
/// per-job timeouts and abortive shutdown. Works in both sequential and
/// parallel mode (in parallel mode a monitor fans the external flag out to
/// every per-depth flag).
pub fn compile_with_cancel(
    prog: &Program,
    opts: &CompilerOptions,
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
) -> Result<CodegenSuccess, CodegenError> {
    let start = Instant::now();
    let mut search_sp = chipmunk_trace::span!(
        "search.compile",
        max_stages = opts.max_stages,
        parallel = opts.parallel,
    );
    let mut prog = prog.clone();
    if prog.stmts().iter().any(|s| s.contains_hash()) {
        chipmunk_lang::passes::eliminate_hashes(&mut prog);
    }
    let num_fields = prog.field_names().len();
    let num_states = prog.state_names().len();
    let slots = opts
        .slots
        .unwrap_or_else(|| num_fields.max(num_states).max(1));
    if num_fields > slots || num_states > slots {
        search_sp.record("result", "too_large");
        return Err(CodegenError::TooLarge(format!(
            "{num_fields} fields / {num_states} states exceed {slots} slots"
        )));
    }
    let deadline = opts.timeout.map(|t| start + t);
    let cegis_opts = CegisOptions {
        deadline: match (deadline, opts.cegis.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
        ..opts.cegis
    };

    let attempt = |stages: usize,
                   cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>|
     -> Result<(Synthesized, GridSpec), SynthesisError> {
        let grid = GridSpec {
            stages,
            slots,
            stateless: opts.stateless.clone(),
            stateful: opts.stateful.clone(),
        };
        let mut sp = chipmunk_trace::span!("search.grid", stages = stages, slots = slots);
        let sketch = Sketch::new(grid.clone(), num_fields, num_states, opts.sketch)
            .map_err(|_| SynthesisError::Infeasible)?;
        let res = crate::cegis::synthesize_with_cancel(&prog, &sketch, &cegis_opts, cancel);
        if chipmunk_trace::enabled() {
            sp.record(
                "result",
                match &res {
                    Ok(_) => "ok",
                    Err(SynthesisError::Infeasible) => "infeasible",
                    Err(SynthesisError::Timeout) => "timeout",
                    Err(SynthesisError::InvalidOptions(_)) => "invalid_options",
                },
            );
        }
        res.map(|s| (s, grid))
    };

    if opts.parallel {
        let res = compile_parallel(&attempt, opts.max_stages, start, cancel)
            .and_then(|s| certified(&prog, opts, s));
        match &res {
            Ok(s) => {
                search_sp.record("result", "ok");
                search_sp.record("stages", s.stages_tried as u64);
            }
            Err(e) => search_sp.record(
                "result",
                match e {
                    CodegenError::TooLarge(_) => "too_large",
                    CodegenError::Infeasible => "infeasible",
                    CodegenError::Timeout => "timeout",
                    CodegenError::Internal(_) => "internal",
                    CodegenError::InvalidOptions(_) => "invalid_options",
                    CodegenError::Uncertified(_) => "uncertified",
                },
            ),
        }
        return res;
    }

    let mut saw_timeout = false;
    for stages in 1..=opts.max_stages {
        if cancel
            .as_ref()
            .is_some_and(|c| c.load(std::sync::atomic::Ordering::Relaxed))
        {
            search_sp.record("result", "timeout");
            return Err(CodegenError::Timeout);
        }
        match attempt(stages, cancel.clone()) {
            Ok((synthesized, grid)) => {
                let resources = resources_of(&grid, &synthesized.decoded.pipeline);
                let success = CodegenSuccess {
                    decoded: synthesized.decoded,
                    hole_values: synthesized.hole_values,
                    grid,
                    resources,
                    stats: synthesized.stats,
                    elapsed: start.elapsed(),
                    stages_tried: stages,
                    counterexamples: synthesized.counterexamples,
                };
                return match certified(&prog, opts, success) {
                    Ok(s) => {
                        search_sp.record("result", "ok");
                        search_sp.record("stages", stages as u64);
                        Ok(s)
                    }
                    Err(e) => {
                        search_sp.record("result", "uncertified");
                        Err(e)
                    }
                };
            }
            Err(SynthesisError::Infeasible) => continue,
            Err(SynthesisError::InvalidOptions(m)) => {
                // Deterministic caller error: every depth would report the
                // same thing, so fail fast with the typed reason.
                search_sp.record("result", "invalid_options");
                return Err(CodegenError::InvalidOptions(m));
            }
            Err(SynthesisError::Timeout) => {
                saw_timeout = true;
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    search_sp.record("result", "timeout");
                    return Err(CodegenError::Timeout);
                }
                // Iteration cap without a global deadline: deeper grids may
                // still succeed, keep going.
            }
        }
    }
    if saw_timeout {
        search_sp.record("result", "timeout");
        Err(CodegenError::Timeout)
    } else {
        search_sp.record("result", "infeasible");
        Err(CodegenError::Infeasible)
    }
}

type AttemptResult = Result<(Synthesized, GridSpec), SynthesisError>;

type AttemptFn<'a> = dyn Fn(usize, Option<std::sync::Arc<std::sync::atomic::AtomicBool>>) -> AttemptResult
    + Sync
    + 'a;

fn compile_parallel(
    attempt: &AttemptFn<'_>,
    max_stages: usize,
    start: Instant,
    cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
) -> Result<CodegenSuccess, CodegenError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    // One cancellation flag per depth: a success at depth d stops every
    // *deeper* search (their answer could not be preferred anyway), while
    // shallower searches keep running so the result stays minimal.
    let flags: Vec<Arc<AtomicBool>> = (0..max_stages)
        .map(|_| Arc::new(AtomicBool::new(false)))
        .collect();
    let done = Arc::new(AtomicBool::new(false));
    // Outer Err = the depth's thread panicked (message); inner result is
    // the ordinary attempt outcome.
    let mut results: Vec<(usize, Result<AttemptResult, String>)> = std::thread::scope(|scope| {
        // The SAT solver polls one flag per run, so an external cancel is
        // fanned out to every per-depth flag by a small monitor thread.
        if let Some(external) = cancel.clone() {
            let flags = flags.clone();
            let done = done.clone();
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    if external.load(Ordering::Relaxed) {
                        for f in &flags {
                            f.store(true, Ordering::Relaxed);
                        }
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        let handles: Vec<_> = (1..=max_stages)
            .map(|stages| {
                let my_flag = flags[stages - 1].clone();
                let deeper: Vec<Arc<AtomicBool>> = flags[stages..].to_vec();
                scope.spawn(move || {
                    // Isolate panics per depth: one depth blowing up must
                    // not unwind through `std::thread::scope` and abort the
                    // whole search (or, in a serve worker, kill the
                    // worker). A panicked depth is reported as data and
                    // classified below.
                    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        attempt(stages, Some(my_flag))
                    }))
                    .map_err(|payload| panic_text(payload.as_ref()));
                    if matches!(res, Ok(Ok(_))) {
                        for f in &deeper {
                            f.store(true, Ordering::Relaxed);
                        }
                    }
                    (stages, res)
                })
            })
            .collect();
        let out = handles
            .into_iter()
            .map(|h| h.join().expect("depth threads isolate panics"))
            .collect();
        done.store(true, Ordering::Relaxed);
        out
    });
    // Walk shallowest-first so both the chosen success and the failure
    // classification are deterministic regardless of thread finish order.
    // (Join order already yields this; the sort pins the invariant.)
    results.sort_by_key(|(stages, _)| *stages);
    let externally_cancelled = cancel.as_ref().is_some_and(|c| c.load(Ordering::Relaxed));
    let mut saw_timeout = false;
    let mut panicked: Option<(usize, String)> = None;
    let mut invalid: Option<String> = None;
    let mut best: Option<(usize, Synthesized, GridSpec)> = None;
    for (stages, res) in results {
        match res {
            Ok(Ok((s, g))) => {
                if best.is_none() {
                    best = Some((stages, s, g));
                }
            }
            Ok(Err(SynthesisError::InvalidOptions(m))) => {
                if invalid.is_none() {
                    invalid = Some(m);
                }
            }
            Ok(Err(SynthesisError::Timeout)) => {
                // A depth whose flag was raised reports Timeout as an
                // artifact of the cancellation, not of budget exhaustion;
                // counting it would make the diagnostic depend on how far
                // that thread got before noticing the flag. Cancellation is
                // only triggered by a shallower success (which wins anyway)
                // or by the external flag (reported separately below).
                if !flags[stages - 1].load(Ordering::Relaxed) {
                    saw_timeout = true;
                }
            }
            Ok(Err(SynthesisError::Infeasible)) => {}
            Err(msg) => {
                if panicked.is_none() {
                    panicked = Some((stages, msg));
                }
            }
        }
    }
    match best {
        Some((stages, synthesized, grid)) => {
            let resources = resources_of(&grid, &synthesized.decoded.pipeline);
            Ok(CodegenSuccess {
                decoded: synthesized.decoded,
                hole_values: synthesized.hole_values,
                grid,
                resources,
                stats: synthesized.stats,
                elapsed: start.elapsed(),
                stages_tried: stages,
                counterexamples: synthesized.counterexamples,
            })
        }
        // Bad options are deterministic across depths and describe a caller
        // mistake, so they trump every other diagnostic. A panicked depth
        // trumps Infeasible: with that depth undecided, infeasibility up to
        // max_stages is unproven. Timeout/cancel keep their meaning — the
        // caller's budget ran out either way.
        None if invalid.is_some() => Err(CodegenError::InvalidOptions(invalid.unwrap())),
        None if saw_timeout || externally_cancelled => Err(CodegenError::Timeout),
        None => match panicked {
            Some((stages, msg)) => Err(CodegenError::Internal(format!(
                "search thread for depth {stages} panicked: {msg}"
            ))),
            None => Err(CodegenError::Infeasible),
        },
    }
}

/// Run independent certification on a fresh compile result, turning a
/// failure into [`CodegenError::Uncertified`]. Every result [`compile`]
/// returns has passed this gate.
fn certified(
    prog: &Program,
    opts: &CompilerOptions,
    success: CodegenSuccess,
) -> Result<CodegenSuccess, CodegenError> {
    match crate::certify::certify_success(prog, opts, &success) {
        Ok(_) => Ok(success),
        Err(why) => Err(CodegenError::Uncertified(why)),
    }
}

/// Short, bounded rendering of a `catch_unwind` payload.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    const MAX: usize = 200;
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    if msg.len() > MAX {
        let mut cut = MAX;
        while !msg.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &msg[..cut])
    } else {
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cegis::validate_decoded;
    use chipmunk_lang::parse;

    #[test]
    fn compiles_sampling_minimally() {
        let prog = parse(
            "state count;
             if (count == 3) { count = 0; pkt.sample = 1; }
             else { count = count + 1; pkt.sample = 0; }",
        )
        .unwrap();
        let opts = CompilerOptions::small_for_tests();
        let out = compile(&prog, &opts).expect("sampling fits");
        assert_eq!(out.resources.stages_used, 1);
        assert!(out.resources.max_alus_per_stage >= 1);
        // Validate end-to-end.
        let sketch = Sketch::new(
            out.grid.clone(),
            prog.field_names().len(),
            prog.state_names().len(),
            opts.sketch,
        )
        .unwrap();
        assert_eq!(
            validate_decoded(
                &prog,
                &sketch,
                &out.decoded,
                opts.cegis.verify_width,
                400,
                5
            ),
            None
        );
    }

    #[test]
    fn parallel_sweep_isolates_panicking_depth() {
        // One depth blowing up must neither abort the sweep nor be
        // reported as Infeasible (that depth is undecided).
        let attempt: &AttemptFn<'_> = &|stages, _flag| {
            if stages == 2 {
                panic!("injected depth-2 panic");
            }
            Err(SynthesisError::Infeasible)
        };
        let err = compile_parallel(attempt, 3, Instant::now(), None).unwrap_err();
        match err {
            CodegenError::Internal(msg) => {
                assert!(msg.contains("depth 2"), "msg: {msg}");
                assert!(msg.contains("injected depth-2 panic"), "msg: {msg}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn parallel_sweep_panic_does_not_mask_timeout() {
        let attempt: &AttemptFn<'_> = &|stages, _flag| {
            if stages == 1 {
                panic!("injected depth-1 panic");
            }
            Err(SynthesisError::Timeout)
        };
        let err = compile_parallel(attempt, 2, Instant::now(), None).unwrap_err();
        assert_eq!(err, CodegenError::Timeout);
    }

    #[test]
    fn infeasible_program_reports_infeasible() {
        let prog = parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.max_stages = 2;
        assert_eq!(compile(&prog, &opts).unwrap_err(), CodegenError::Infeasible);
    }

    #[test]
    fn too_many_fields_for_slots() {
        let prog = parse("pkt.a = pkt.b + pkt.c; pkt.d = pkt.e;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.slots = Some(2);
        assert!(matches!(
            compile(&prog, &opts).unwrap_err(),
            CodegenError::TooLarge(_)
        ));
    }

    #[test]
    fn global_timeout_is_respected() {
        let prog = parse("state s; s = s + pkt.x; pkt.y = s;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        opts.timeout = Some(Duration::from_nanos(1));
        assert_eq!(compile(&prog, &opts).unwrap_err(), CodegenError::Timeout);
    }

    #[test]
    fn parallel_matches_sequential_depth() {
        let prog = parse("state s; s = s + 1; pkt.out = s;").unwrap();
        let mut seq = CompilerOptions::small_for_tests();
        seq.max_stages = 3;
        let a = compile(&prog, &seq).expect("sequential");
        let mut par = seq.clone();
        par.parallel = true;
        let b = compile(&prog, &par).expect("parallel");
        assert_eq!(a.grid.stages, b.grid.stages);
    }

    #[test]
    fn parallel_failure_diagnostics_match_sequential() {
        // An infeasible program must produce the same diagnostic in both
        // modes, every run — the parallel sweep must not let thread finish
        // order (or cancellation artifacts) leak into the error.
        let prog = parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let mut seq = CompilerOptions::small_for_tests();
        seq.max_stages = 2;
        let expected = compile(&prog, &seq).unwrap_err();
        assert_eq!(expected, CodegenError::Infeasible);
        let mut par = seq.clone();
        par.parallel = true;
        for run in 0..4 {
            assert_eq!(compile(&prog, &par).unwrap_err(), expected, "run {run}");
        }
    }

    #[test]
    fn external_cancel_stops_both_modes() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let prog = parse("state s; s = s + pkt.x; pkt.y = s;").unwrap();
        let mut opts = CompilerOptions::small_for_tests();
        for parallel in [false, true] {
            opts.parallel = parallel;
            let cancel = Arc::new(AtomicBool::new(true));
            assert_eq!(
                compile_with_cancel(&prog, &opts, Some(cancel)).unwrap_err(),
                CodegenError::Timeout,
                "parallel={parallel}"
            );
        }
    }

    #[test]
    fn hash_programs_compile_via_elimination() {
        let prog = parse("state last; last = hash(pkt.a) ; pkt.out = last;").unwrap();
        // hash(pkt.a) becomes a free metadata field; `last = field` fits raw.
        let mut opts = CompilerOptions::small_for_tests();
        opts.max_stages = 3;
        opts.slots = Some(3);
        compile(&prog, &opts).expect("hash program compiles");
    }
}
