//! Independent certification of synthesized configurations.
//!
//! A configuration about to leave the compiler (or the serve daemon —
//! fresh, cache-hit, or name-remapped) is re-checked against the program
//! specification by *concrete differential execution*: the configured
//! grid is instantiated in the `chipmunk-pisa` hardware simulator and run
//! against the reference interpreter on the all-zeros packet, the CEGIS
//! counterexample set (the inputs the program is known to be sensitive
//! to), and a seeded random sweep at the verification width.
//!
//! This is the validation posture argued for by the switch-compiler
//! testing literature: never trust a compiler output you can simulate —
//! the hardware-model interpreter is the oracle. The check is cheap
//! (concrete execution, no solver) and shares no code path with the
//! synthesis-side encoding, so it catches bit-flips in cached results,
//! mis-wired field-to-container maps, and encoder/decoder disagreements
//! alike.

use chipmunk_lang::{Interpreter, PacketState, Program};
use chipmunk_pisa::{GridSpec, Pipeline, PipelineConfig};

use crate::cegis::SplitMix64;
use crate::search::{CodegenSuccess, CompilerOptions};

/// Number of random-sweep inputs used by [`certify_success`].
pub const DEFAULT_SAMPLES: usize = 64;

/// Salt mixed into the CEGIS seed so the certification sweep draws
/// inputs independent of the synthesis-side initial samples.
const CERT_SEED_SALT: u64 = 0xce27_1f1c_a7e0_55ed;

/// What a successful certification checked.
#[derive(Clone, Copy, Debug)]
pub struct CertifyReport {
    /// Total concrete inputs executed differentially (all-zeros +
    /// counterexamples + random sweep).
    pub inputs_checked: usize,
}

/// Everything needed to certify one configuration against a program.
///
/// The configuration is passed as raw parts (grid, pipeline config,
/// field map) rather than a [`CodegenSuccess`] so the serving layer can
/// certify results reconstructed from cached/remapped JSON documents.
#[derive(Clone, Copy, Debug)]
pub struct CertifyRequest<'a> {
    /// The grid the configuration claims to target.
    pub grid: &'a GridSpec,
    /// The hardware configuration under test.
    pub pipeline: &'a PipelineConfig,
    /// Container index for each program field, in program field order.
    pub field_to_container: &'a [usize],
    /// CEGIS counterexamples to replay (may be empty, e.g. for cached
    /// results produced before counterexamples were recorded).
    pub counterexamples: &'a [PacketState],
    /// Semantic width at which spec and hardware must agree.
    pub width: u8,
    /// Approximate-synthesis domain: when set, agreement is only
    /// required for inputs below `2^domain_width` (§5.2 of the paper).
    pub domain_width: Option<u8>,
    /// Number of random-sweep inputs.
    pub samples: usize,
    /// Seed for the random sweep.
    pub seed: u64,
}

/// Certify a configuration against `prog` by differential execution.
///
/// Returns `Err` with a human-readable reason on the **first** failure:
/// a structurally invalid configuration (bad shapes, out-of-range
/// container indices, aliased fields — all reachable via corrupted cache
/// entries, so they are reported, never panicked on) or a semantic
/// divergence between the configured pipeline and the interpreter.
pub fn certify_config(prog: &Program, req: &CertifyRequest<'_>) -> Result<CertifyReport, String> {
    let mut sp = chipmunk_trace::span!(
        "certify.run",
        stages = req.grid.stages,
        slots = req.grid.slots,
        width = req.width,
    );
    let res = certify_config_impl(prog, req);
    if chipmunk_trace::enabled() {
        match &res {
            Ok(r) => {
                sp.record("result", "certified");
                sp.record("inputs", r.inputs_checked as u64);
            }
            Err(why) => {
                sp.record("result", "uncertified");
                sp.record("reason", why.as_str());
            }
        }
        chipmunk_trace::counter_add!("certify.runs", 1);
    }
    res
}

fn certify_config_impl(prog: &Program, req: &CertifyRequest<'_>) -> Result<CertifyReport, String> {
    let width = req.width;
    if width == 0 || width > 64 {
        return Err(format!("width {width} is outside 1..=64"));
    }
    // The oracle interprets the hash-free program (hash calls become free
    // metadata fields, exactly as the compiler sees them).
    let mut hashfree = prog.clone();
    if hashfree.stmts().iter().any(|s| s.contains_hash()) {
        chipmunk_lang::passes::eliminate_hashes(&mut hashfree);
    }
    let num_fields = hashfree.field_names().len();
    let num_states = hashfree.state_names().len();

    // --- Structural checks. A corrupted field map must become a typed
    // failure, not an out-of-bounds panic on whatever thread runs this.
    if req.field_to_container.len() != num_fields {
        return Err(format!(
            "field map covers {} fields, program has {num_fields}",
            req.field_to_container.len()
        ));
    }
    let mut used = vec![false; req.grid.slots];
    for (f, &c) in req.field_to_container.iter().enumerate() {
        if c >= req.grid.slots {
            return Err(format!(
                "field {f} mapped to container {c}, grid has {} slots",
                req.grid.slots
            ));
        }
        if used[c] {
            return Err(format!("two fields share container {c}"));
        }
        used[c] = true;
    }
    // Pipeline::new re-validates the full configuration against the grid.
    let mut pipe = Pipeline::new(req.grid.clone(), req.pipeline.clone(), num_states, width)
        .map_err(|e| format!("configuration rejected by the grid simulator: {e}"))?;

    // --- Differential execution: interpreter (spec) vs pipeline (hw).
    let interp = Interpreter::new(&hashfree, width);
    let mut check = |inp: &PacketState| -> Result<(), String> {
        if inp.fields.len() != num_fields || inp.states.len() != num_states {
            return Err(format!(
                "counterexample arity mismatch: {}/{} values for {num_fields} fields / \
                 {num_states} states",
                inp.fields.len(),
                inp.states.len()
            ));
        }
        for (v, &val) in inp.states.iter().enumerate() {
            pipe.set_state(v, val);
        }
        let mut phv = vec![0u64; req.grid.slots];
        for (f, &c) in req.field_to_container.iter().enumerate() {
            phv[c] = inp.fields[f];
        }
        let phv_out = pipe.exec(&phv);
        let got = PacketState {
            fields: req.field_to_container.iter().map(|&c| phv_out[c]).collect(),
            states: (0..num_states).map(|v| pipe.state(v)).collect(),
        };
        let want = interp.exec(inp);
        if got != want {
            return Err(format!(
                "pipeline diverges from spec on input {:?}/{:?}: hw {:?}/{:?} != spec {:?}/{:?}",
                inp.fields, inp.states, got.fields, got.states, want.fields, want.states
            ));
        }
        Ok(())
    };

    let mut checked = 0usize;
    let zero = PacketState {
        fields: vec![0; num_fields],
        states: vec![0; num_states],
    };
    check(&zero)?;
    checked += 1;
    for cex in req.counterexamples {
        check(cex)?;
        checked += 1;
    }
    // Seeded random sweep, restricted to the approximate-synthesis domain
    // when one is in force (outside it the pipeline may legally diverge).
    let eff = req.domain_width.map_or(width, |d| d.min(width));
    let mask = if eff >= 64 {
        u64::MAX
    } else {
        (1u64 << eff) - 1
    };
    let mut rng = SplitMix64(req.seed);
    for _ in 0..req.samples {
        let inp = PacketState {
            fields: (0..num_fields).map(|_| rng.next() & mask).collect(),
            states: (0..num_states).map(|_| rng.next() & mask).collect(),
        };
        check(&inp)?;
        checked += 1;
    }
    Ok(CertifyReport {
        inputs_checked: checked,
    })
}

/// Certify raw synthesis output before a [`CodegenSuccess`] is even
/// assembled — the gate the plan executor applies to every candidate win
/// (in a strategy race, *inside* the race, so an uncertified candidate
/// never cancels the other strategies).
///
/// `extra_inputs` are additional known-hard inputs to replay beyond the
/// run's own counterexamples — the plan executor passes the job's
/// cross-step counterexample pool, so a winner is also checked against
/// every input any earlier (failed) step was sensitive to.
pub(crate) fn certify_synthesized(
    prog: &Program,
    opts: &CompilerOptions,
    grid: &chipmunk_pisa::GridSpec,
    s: &crate::cegis::Synthesized,
    extra_inputs: &[PacketState],
) -> Result<CertifyReport, String> {
    let mut replay = s.counterexamples.clone();
    for inp in extra_inputs {
        if inp.fields.len() == prog.field_names().len()
            && inp.states.len() == prog.state_names().len()
            && !replay.contains(inp)
        {
            replay.push(inp.clone());
        }
    }
    certify_config(
        prog,
        &CertifyRequest {
            grid,
            pipeline: &s.decoded.pipeline,
            field_to_container: &s.decoded.field_to_container,
            counterexamples: &replay,
            width: opts.cegis.verify_width,
            domain_width: opts.cegis.domain_width,
            samples: DEFAULT_SAMPLES,
            seed: opts.cegis.seed ^ CERT_SEED_SALT,
        },
    )
}

/// Certify a fresh [`CodegenSuccess`] as produced by
/// [`crate::compile`], replaying its recorded CEGIS counterexamples.
pub fn certify_success(
    prog: &Program,
    opts: &CompilerOptions,
    out: &CodegenSuccess,
) -> Result<CertifyReport, String> {
    certify_config(
        prog,
        &CertifyRequest {
            grid: &out.grid,
            pipeline: &out.decoded.pipeline,
            field_to_container: &out.decoded.field_to_container,
            counterexamples: &out.counterexamples,
            width: opts.cegis.verify_width,
            domain_width: opts.cegis.domain_width,
            samples: DEFAULT_SAMPLES,
            seed: opts.cegis.seed ^ CERT_SEED_SALT,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn compiled(src: &str) -> (Program, CompilerOptions, CodegenSuccess) {
        let prog = chipmunk_lang::parse(src).unwrap();
        let opts = CompilerOptions::small_for_tests();
        let out = compile(&prog, &opts).expect("compiles");
        (prog, opts, out)
    }

    #[test]
    fn genuine_results_certify() {
        let (prog, opts, out) = compiled("state s; s = s + pkt.x; pkt.y = s;");
        let report = certify_success(&prog, &opts, &out).expect("certifies");
        // all-zeros + counterexamples + sweep
        assert!(report.inputs_checked > DEFAULT_SAMPLES);
    }

    #[test]
    fn bit_flipped_field_map_is_rejected() {
        let (prog, opts, mut out) = compiled("pkt.y = pkt.x + 1;");
        // Mis-wire: swap the two fields' containers. The result is a
        // structurally valid but semantically wrong configuration.
        out.decoded.field_to_container.swap(0, 1);
        let err = certify_success(&prog, &opts, &out).expect_err("must fail");
        assert!(err.contains("diverges"), "err: {err}");
    }

    #[test]
    fn out_of_range_container_is_a_typed_failure() {
        let (prog, opts, mut out) = compiled("pkt.y = pkt.x + 1;");
        out.decoded.field_to_container[0] = out.grid.slots + 17;
        let err = certify_success(&prog, &opts, &out).expect_err("must fail");
        assert!(err.contains("container"), "err: {err}");
    }

    #[test]
    fn aliased_fields_are_a_typed_failure() {
        let (prog, opts, mut out) = compiled("pkt.y = pkt.x + 1;");
        let c = out.decoded.field_to_container[0];
        out.decoded.field_to_container[1] = c;
        let err = certify_success(&prog, &opts, &out).expect_err("must fail");
        assert!(err.contains("share"), "err: {err}");
    }

    #[test]
    fn corrupted_pipeline_config_is_rejected() {
        let (prog, opts, mut out) = compiled("pkt.x = pkt.x + 1;");
        // Flip a bit in a stateless immediate: still structurally valid,
        // but the pipeline now computes the wrong constant.
        out.decoded.pipeline.stages[0].stateless[0].imm ^= 1;
        // Either the semantic check or (for some templates) the validator
        // must refuse — the point is: never certified.
        assert!(certify_success(&prog, &opts, &out).is_err());
    }

    #[test]
    fn wrong_stage_count_is_rejected_by_the_simulator() {
        let (prog, opts, mut out) = compiled("pkt.x = pkt.x + 1;");
        out.decoded.pipeline.stages.clear();
        let err = certify_success(&prog, &opts, &out).expect_err("must fail");
        assert!(err.contains("rejected"), "err: {err}");
    }
}
