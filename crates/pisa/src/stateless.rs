//! Stateless ALUs: per-container combinational units.
//!
//! A stateless ALU reads two operands selected by its input muxes from the
//! PHV containers of the current stage, plus an immediate operand from its
//! configuration, and applies one opcode. Its output becomes the
//! "destination" candidate for the ALU's own container (the output mux
//! decides whether the container takes it).
//!
//! The opcode set is configuration data ([`StatelessAluSpec`]), so the
//! simulated hardware can range from a bare adder to the full
//! Banzai-style arithmetic/logical/relational/conditional unit used in the
//! paper's evaluation (§4). Restricting the opcode set is also the lever
//! for the synthesis-speed heuristic discussed in §3.

use chipmunk_bv::{BvOp, Circuit, TermId};

use crate::symutil::select_chain;

/// One stateless ALU operation over operands `a`, `b` and immediate `imm`.
///
/// Predicates produce 0/1. Logical operations treat nonzero as true.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StatelessOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a + imm`
    AddImm,
    /// `a - imm`
    SubImm,
    /// `imm`
    ConstImm,
    /// `a` (pass-through)
    PassA,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == imm`
    EqImm,
    /// `a != imm`
    NeImm,
    /// `a < imm`
    LtImm,
    /// `a <= imm`
    LeImm,
    /// `a > imm`
    GtImm,
    /// `a >= imm`
    GeImm,
    /// `a && b` (logical)
    LAnd,
    /// `a || b` (logical)
    LOr,
    /// `!a` (logical)
    LNot,
    /// `a != 0 ? b : imm` (conditional)
    CondImm,
    /// `a ^ b` (bitwise)
    Xor,
    /// `a & b` (bitwise)
    BitAnd,
    /// `a | b` (bitwise)
    BitOr,
}

impl StatelessOp {
    /// Does the op read operand `b` (second input mux)?
    pub fn uses_b(self) -> bool {
        !matches!(
            self,
            StatelessOp::AddImm
                | StatelessOp::SubImm
                | StatelessOp::ConstImm
                | StatelessOp::PassA
                | StatelessOp::EqImm
                | StatelessOp::NeImm
                | StatelessOp::LtImm
                | StatelessOp::LeImm
                | StatelessOp::GtImm
                | StatelessOp::GeImm
                | StatelessOp::LNot
        )
    }

    /// Does the op read the immediate?
    pub fn uses_imm(self) -> bool {
        matches!(
            self,
            StatelessOp::AddImm
                | StatelessOp::SubImm
                | StatelessOp::ConstImm
                | StatelessOp::EqImm
                | StatelessOp::NeImm
                | StatelessOp::LtImm
                | StatelessOp::LeImm
                | StatelessOp::GtImm
                | StatelessOp::GeImm
                | StatelessOp::CondImm
        )
    }
}

/// Configuration-time description of the stateless ALU hardware.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatelessAluSpec {
    /// Opcodes the ALU supports, in hole-encoding order.
    pub ops: Vec<StatelessOp>,
    /// Number of bits of the immediate-operand hole.
    pub imm_bits: u8,
}

impl StatelessAluSpec {
    /// The full Banzai-style ALU: arithmetic, boolean, relational and
    /// conditional operators (the stateless ALU of the paper's evaluation).
    pub fn banzai(imm_bits: u8) -> Self {
        use StatelessOp::*;
        StatelessAluSpec {
            ops: vec![
                Add, Sub, AddImm, SubImm, ConstImm, PassA, Eq, Ne, Lt, Le, Gt, Ge, EqImm, NeImm,
                LtImm, LeImm, GtImm, GeImm, LAnd, LOr, LNot, CondImm, Xor, BitAnd, BitOr,
            ],
            imm_bits,
        }
    }

    /// A restricted arithmetic-only ALU (the opcode-restriction heuristic
    /// of §3: fewer hole values can speed up synthesis when the program
    /// fits).
    pub fn arith_only(imm_bits: u8) -> Self {
        use StatelessOp::*;
        StatelessAluSpec {
            ops: vec![Add, Sub, AddImm, SubImm, ConstImm, PassA],
            imm_bits,
        }
    }

    /// Bits needed for the opcode hole.
    pub fn opcode_bits(&self) -> u8 {
        bits_for(self.ops.len())
    }
}

/// Bits needed to index `n` choices (at least 1).
pub(crate) fn bits_for(n: usize) -> u8 {
    let mut b = 1u8;
    while (1usize << b) < n {
        b += 1;
    }
    b
}

/// Concrete evaluation of one opcode.
pub fn eval_op(op: StatelessOp, a: u64, b: u64, imm: u64, mask: u64) -> u64 {
    use StatelessOp::*;
    let (a, b, imm) = (a & mask, b & mask, imm & mask);
    match op {
        Add => a.wrapping_add(b) & mask,
        Sub => a.wrapping_sub(b) & mask,
        AddImm => a.wrapping_add(imm) & mask,
        SubImm => a.wrapping_sub(imm) & mask,
        ConstImm => imm,
        PassA => a,
        Eq => (a == b) as u64,
        Ne => (a != b) as u64,
        Lt => (a < b) as u64,
        Le => (a <= b) as u64,
        Gt => (a > b) as u64,
        Ge => (a >= b) as u64,
        EqImm => (a == imm) as u64,
        NeImm => (a != imm) as u64,
        LtImm => (a < imm) as u64,
        LeImm => (a <= imm) as u64,
        GtImm => (a > imm) as u64,
        GeImm => (a >= imm) as u64,
        LAnd => (a != 0 && b != 0) as u64,
        LOr => (a != 0 || b != 0) as u64,
        LNot => (a == 0) as u64,
        CondImm => {
            if a != 0 {
                b
            } else {
                imm
            }
        }
        Xor => a ^ b,
        BitAnd => a & b,
        BitOr => a | b,
    }
}

/// Symbolic evaluation of one (fixed) opcode.
pub fn symbolic_op(c: &mut Circuit, op: StatelessOp, a: TermId, b: TermId, imm: TermId) -> TermId {
    use StatelessOp::*;
    let zero = c.constant(0);
    match op {
        Add => c.binop(BvOp::Add, a, b),
        Sub => c.binop(BvOp::Sub, a, b),
        AddImm => c.binop(BvOp::Add, a, imm),
        SubImm => c.binop(BvOp::Sub, a, imm),
        ConstImm => imm,
        PassA => a,
        Eq => pred(c, BvOp::Eq, a, b),
        Ne => pred(c, BvOp::Ne, a, b),
        Lt => pred(c, BvOp::Ult, a, b),
        Le => pred(c, BvOp::Ule, a, b),
        Gt => pred(c, BvOp::Ugt, a, b),
        Ge => pred(c, BvOp::Uge, a, b),
        EqImm => pred(c, BvOp::Eq, a, imm),
        NeImm => pred(c, BvOp::Ne, a, imm),
        LtImm => pred(c, BvOp::Ult, a, imm),
        LeImm => pred(c, BvOp::Ule, a, imm),
        GtImm => pred(c, BvOp::Ugt, a, imm),
        GeImm => pred(c, BvOp::Uge, a, imm),
        LAnd => {
            let pa = c.binop(BvOp::Ne, a, zero);
            let pb = c.binop(BvOp::Ne, b, zero);
            let both = c.binop(BvOp::And, pa, pb);
            c.zext(both)
        }
        LOr => {
            let pa = c.binop(BvOp::Ne, a, zero);
            let pb = c.binop(BvOp::Ne, b, zero);
            let either = c.binop(BvOp::Or, pa, pb);
            c.zext(either)
        }
        LNot => {
            let pa = c.binop(BvOp::Eq, a, zero);
            c.zext(pa)
        }
        CondImm => {
            let pa = c.binop(BvOp::Ne, a, zero);
            c.mux(pa, b, imm)
        }
        Xor => c.binop(BvOp::Xor, a, b),
        BitAnd => c.binop(BvOp::And, a, b),
        BitOr => c.binop(BvOp::Or, a, b),
    }
}

fn pred(c: &mut Circuit, op: BvOp, a: TermId, b: TermId) -> TermId {
    let p = c.binop(op, a, b);
    c.zext(p)
}

/// Symbolic stateless ALU with a *hole-selected* opcode: computes every
/// supported opcode and selects by the opcode-hole term.
pub fn symbolic_alu(
    spec: &StatelessAluSpec,
    c: &mut Circuit,
    a: TermId,
    b: TermId,
    imm: TermId,
    opcode_hole: TermId,
) -> TermId {
    let options: Vec<TermId> = spec
        .ops
        .iter()
        .map(|&op| symbolic_op(c, op, a, b, imm))
        .collect();
    select_chain(c, opcode_hole, &options)
}

/// Concrete stateless ALU with an encoded opcode value (out-of-range codes
/// clamp to the last opcode, mirroring [`symbolic_alu`]).
pub fn eval_alu(spec: &StatelessAluSpec, opcode: u64, a: u64, b: u64, imm: u64, mask: u64) -> u64 {
    let op = crate::symutil::select_concrete(opcode, &spec.ops);
    eval_op(op, a, b, imm, mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_bv::InputId;

    #[test]
    fn banzai_spec_has_unique_ops() {
        let spec = StatelessAluSpec::banzai(2);
        let mut seen = std::collections::HashSet::new();
        for op in &spec.ops {
            assert!(seen.insert(*op), "duplicate opcode {op:?}");
        }
        assert!(spec.opcode_bits() >= 5);
    }

    #[test]
    fn bits_for_is_ceil_log2() {
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(23), 5);
    }

    #[test]
    fn concrete_and_symbolic_ops_agree() {
        let width = 4u8;
        let mask = 15u64;
        let spec = StatelessAluSpec::banzai(2);
        for &op in &spec.ops {
            let mut c = Circuit::new(width);
            let a = c.input("a");
            let b = c.input("b");
            let imm = c.input("imm");
            let out = symbolic_op(&mut c, op, a, b, imm);
            for va in 0..=mask {
                for vb in [0u64, 1, 7, 15] {
                    for vimm in [0u64, 3] {
                        let vals = [va, vb, vimm];
                        let got = c.eval(out, &move |i: InputId| vals[i.index()]);
                        let want = eval_op(op, va, vb, vimm, mask);
                        assert_eq!(got, want, "{op:?} a={va} b={vb} imm={vimm}");
                    }
                }
            }
        }
    }

    #[test]
    fn hole_selected_alu_matches_each_opcode() {
        let width = 4u8;
        let mask = 15u64;
        let spec = StatelessAluSpec::arith_only(2);
        let mut c = Circuit::new(width);
        let a = c.input("a");
        let b = c.input("b");
        let imm = c.input("imm");
        let hole = c.input("opcode");
        let out = symbolic_alu(&spec, &mut c, a, b, imm, hole);
        for code in 0..8u64 {
            for va in [0u64, 5, 15] {
                for vb in [1u64, 9] {
                    let vals = [va, vb, 2u64, code];
                    let got = c.eval(out, &move |i: InputId| vals[i.index()]);
                    let want = eval_alu(&spec, code, va, vb, 2, mask);
                    assert_eq!(got, want, "code={code} a={va} b={vb}");
                }
            }
        }
    }

    #[test]
    fn uses_b_and_imm_classification() {
        assert!(StatelessOp::Add.uses_b());
        assert!(!StatelessOp::Add.uses_imm());
        assert!(!StatelessOp::AddImm.uses_b());
        assert!(StatelessOp::AddImm.uses_imm());
        assert!(StatelessOp::CondImm.uses_b());
        assert!(StatelessOp::CondImm.uses_imm());
        assert!(!StatelessOp::PassA.uses_b());
        assert!(!StatelessOp::PassA.uses_imm());
    }
}
