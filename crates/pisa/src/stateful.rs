//! Stateful ALUs: registered units described by hole-bearing templates.
//!
//! A stateful ALU owns one state register. Per packet it reads the
//! register and up to two mux-selected packet operands, computes a new
//! register value, and emits an output into the stage's output muxes.
//! Updates are atomic: the new value is visible to the next packet
//! (§2.2 of the paper).
//!
//! The *behaviour* of the ALU is not fixed: it is a template — a small
//! expression over `{state, packet operands, literal constants, holes}` —
//! so that "a variety of simulated switch hardware" can be explored by
//! swapping templates. Holes select among template alternatives (mux arms,
//! relational operators) or provide immediate constants; the synthesizer
//! fills them, and a concrete configuration stores their values.
//!
//! The [`library`] module provides the Banzai-style templates used by the
//! paper's benchmarks: `raw`, `pred_raw`, `if_else_raw`, `sub`,
//! `nested_ifs`.

use chipmunk_bv::{BvOp, Circuit, TermId};

use crate::stateless::bits_for;
use crate::symutil::{select_chain, select_concrete};

/// Relational operators selectable inside templates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RelOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `<=` (unsigned)
    Le,
    /// `>` (unsigned)
    Gt,
    /// `>=` (unsigned)
    Ge,
}

impl RelOp {
    fn eval(self, a: u64, b: u64) -> bool {
        match self {
            RelOp::Eq => a == b,
            RelOp::Ne => a != b,
            RelOp::Lt => a < b,
            RelOp::Le => a <= b,
            RelOp::Gt => a > b,
            RelOp::Ge => a >= b,
        }
    }

    fn bvop(self) -> BvOp {
        match self {
            RelOp::Eq => BvOp::Eq,
            RelOp::Ne => BvOp::Ne,
            RelOp::Lt => BvOp::Ult,
            RelOp::Le => BvOp::Ule,
            RelOp::Gt => BvOp::Ugt,
            RelOp::Ge => BvOp::Uge,
        }
    }
}

/// Value-producing template expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AluExpr {
    /// The ALU's state register (value before this packet).
    State,
    /// The state value *after* the update. Only valid in the ALU's
    /// `output` expression — Banzai atoms may emit either the old or the
    /// freshly written value onto the packet path.
    NewState,
    /// Packet operand `i` (selected by the ALU's input mux `i`).
    Pkt(usize),
    /// Immediate constant supplied by hole `i`.
    ConstHole(usize),
    /// A literal constant baked into the template.
    Lit(u64),
    /// Wrapping addition.
    Add(Box<AluExpr>, Box<AluExpr>),
    /// Wrapping subtraction.
    Sub(Box<AluExpr>, Box<AluExpr>),
    /// Hole-selected alternative: `arms[holes[hole]]` (out-of-range hole
    /// values select the last arm).
    MuxHole {
        /// Index of the selecting hole.
        hole: usize,
        /// The alternatives.
        arms: Vec<AluExpr>,
    },
    /// Conditional.
    IfElse {
        /// Guard predicate.
        cond: Box<AluPred>,
        /// Value when the guard holds.
        then_: Box<AluExpr>,
        /// Value otherwise.
        else_: Box<AluExpr>,
    },
}

impl AluExpr {
    /// Boxed-addition helper.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: AluExpr, b: AluExpr) -> AluExpr {
        AluExpr::Add(Box::new(a), Box::new(b))
    }

    /// Boxed-subtraction helper.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: AluExpr, b: AluExpr) -> AluExpr {
        AluExpr::Sub(Box::new(a), Box::new(b))
    }
}

/// Predicate template expressions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AluPred {
    /// A fixed relational comparison.
    Rel {
        /// Operator.
        op: RelOp,
        /// Left operand.
        a: AluExpr,
        /// Right operand.
        b: AluExpr,
    },
    /// A hole-selected relational comparison: `ops[holes[hole]]`.
    RelHole {
        /// Index of the selecting hole.
        hole: usize,
        /// Candidate operators, in hole-encoding order.
        ops: Vec<RelOp>,
        /// Left operand.
        a: AluExpr,
        /// Right operand.
        b: AluExpr,
    },
    /// Conjunction.
    And(Box<AluPred>, Box<AluPred>),
    /// Disjunction.
    Or(Box<AluPred>, Box<AluPred>),
    /// Negation.
    Not(Box<AluPred>),
    /// A one-bit hole used directly as a predicate.
    FlagHole(usize),
    /// Constant true.
    True,
}

/// A stateful ALU description: its holes and its behaviour template.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatefulAluSpec {
    /// Template name (e.g. `"if_else_raw"`).
    pub name: String,
    /// Hole names and bit-widths, in encoding order. Immediate-constant
    /// holes use the grid's immediate width; selector holes use just enough
    /// bits for their arm count.
    pub holes: Vec<(String, u8)>,
    /// Number of packet operands (each gets one input mux), at most 2.
    pub num_pkt_operands: usize,
    /// New-state expression (must not mention [`AluExpr::NewState`]).
    pub update: AluExpr,
    /// Output expression: what the ALU drives onto the stage's output
    /// muxes. May mention [`AluExpr::NewState`]. Banzai atoms use this to
    /// emit old state, new state, or branch-computed packet values.
    pub output: AluExpr,
}

impl StatefulAluSpec {
    /// Total hole bits of one ALU instance.
    pub fn total_hole_bits(&self) -> u32 {
        self.holes.iter().map(|(_, b)| *b as u32).sum()
    }

    /// Validate internal consistency (hole indices, arm counts, operand
    /// indices). Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        fn expr(e: &AluExpr, s: &StatefulAluSpec) -> Result<(), String> {
            expr_in(e, s, false)
        }
        fn expr_in(e: &AluExpr, s: &StatefulAluSpec, allow_new: bool) -> Result<(), String> {
            match e {
                AluExpr::NewState => {
                    if allow_new {
                        Ok(())
                    } else {
                        Err("NewState is only valid in the output expression".into())
                    }
                }
                AluExpr::State | AluExpr::Lit(_) => Ok(()),
                AluExpr::Pkt(i) => {
                    if *i < s.num_pkt_operands {
                        Ok(())
                    } else {
                        Err(format!("packet operand {i} out of range"))
                    }
                }
                AluExpr::ConstHole(h) => check_hole(*h, s),
                AluExpr::Add(a, b) | AluExpr::Sub(a, b) => {
                    expr_in(a, s, allow_new)?;
                    expr_in(b, s, allow_new)
                }
                AluExpr::MuxHole { hole, arms } => {
                    check_hole(*hole, s)?;
                    if arms.is_empty() {
                        return Err("MuxHole with no arms".into());
                    }
                    let need = bits_for(arms.len());
                    if s.holes[*hole].1 < need {
                        return Err(format!(
                            "hole `{}` has {} bits but needs {} for {} arms",
                            s.holes[*hole].0,
                            s.holes[*hole].1,
                            need,
                            arms.len()
                        ));
                    }
                    arms.iter().try_for_each(|a| expr_in(a, s, allow_new))
                }
                AluExpr::IfElse { cond, then_, else_ } => {
                    pred(cond, s)?;
                    expr_in(then_, s, allow_new)?;
                    expr_in(else_, s, allow_new)
                }
            }
        }
        fn pred(p: &AluPred, s: &StatefulAluSpec) -> Result<(), String> {
            match p {
                AluPred::True => Ok(()),
                AluPred::FlagHole(h) => check_hole(*h, s),
                AluPred::Rel { a, b, .. } => {
                    expr(a, s)?;
                    expr(b, s)
                }
                AluPred::RelHole { hole, ops, a, b } => {
                    check_hole(*hole, s)?;
                    if ops.is_empty() {
                        return Err("RelHole with no ops".into());
                    }
                    expr(a, s)?;
                    expr(b, s)
                }
                AluPred::And(a, b) | AluPred::Or(a, b) => {
                    pred(a, s)?;
                    pred(b, s)
                }
                AluPred::Not(x) => pred(x, s),
            }
        }
        fn check_hole(h: usize, s: &StatefulAluSpec) -> Result<(), String> {
            if h < s.holes.len() {
                Ok(())
            } else {
                Err(format!("hole index {h} out of range"))
            }
        }
        if self.num_pkt_operands > 2 {
            return Err("at most 2 packet operands supported".into());
        }
        let mut names: Vec<&str> = self.holes.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        for w in names.windows(2) {
            if w[0] == w[1] {
                return Err(format!(
                    "duplicate hole name `{}`; holes are addressed by name",
                    w[0]
                ));
            }
        }
        expr(&self.update, self)?;
        expr_in(&self.output, self, true)?;
        Ok(())
    }

    /// Concrete execution: `(new_state, output)`.
    pub fn eval(&self, holes: &[u64], state: u64, pkts: &[u64], mask: u64) -> (u64, u64) {
        debug_assert_eq!(holes.len(), self.holes.len());
        let new_state = eval_expr(&self.update, holes, state, state, pkts, mask);
        let out = eval_expr(&self.output, holes, state, new_state, pkts, mask);
        (new_state, out)
    }

    /// Symbolic execution with hole *terms*: `(new_state, output)`.
    pub fn symbolic(
        &self,
        c: &mut Circuit,
        holes: &[TermId],
        state: TermId,
        pkts: &[TermId],
    ) -> (TermId, TermId) {
        debug_assert_eq!(holes.len(), self.holes.len());
        let new_state = sym_expr(&self.update, c, holes, state, state, pkts);
        let out = sym_expr(&self.output, c, holes, state, new_state, pkts);
        (new_state, out)
    }
}

fn eval_expr(
    e: &AluExpr,
    holes: &[u64],
    state: u64,
    new_state: u64,
    pkts: &[u64],
    mask: u64,
) -> u64 {
    match e {
        AluExpr::State => state & mask,
        AluExpr::NewState => new_state & mask,
        AluExpr::Pkt(i) => pkts[*i] & mask,
        AluExpr::ConstHole(h) => holes[*h] & mask,
        AluExpr::Lit(v) => v & mask,
        AluExpr::Add(a, b) => {
            eval_expr(a, holes, state, new_state, pkts, mask)
                .wrapping_add(eval_expr(b, holes, state, new_state, pkts, mask))
                & mask
        }
        AluExpr::Sub(a, b) => {
            eval_expr(a, holes, state, new_state, pkts, mask)
                .wrapping_sub(eval_expr(b, holes, state, new_state, pkts, mask))
                & mask
        }
        AluExpr::MuxHole { hole, arms } => {
            let arm = select_concrete(holes[*hole], &arms.iter().collect::<Vec<_>>());
            eval_expr(arm, holes, state, new_state, pkts, mask)
        }
        AluExpr::IfElse { cond, then_, else_ } => {
            if eval_pred(cond, holes, state, new_state, pkts, mask) {
                eval_expr(then_, holes, state, new_state, pkts, mask)
            } else {
                eval_expr(else_, holes, state, new_state, pkts, mask)
            }
        }
    }
}

fn eval_pred(
    p: &AluPred,
    holes: &[u64],
    state: u64,
    new_state: u64,
    pkts: &[u64],
    mask: u64,
) -> bool {
    match p {
        AluPred::True => true,
        AluPred::FlagHole(h) => holes[*h] & 1 == 1,
        AluPred::Rel { op, a, b } => op.eval(
            eval_expr(a, holes, state, new_state, pkts, mask),
            eval_expr(b, holes, state, new_state, pkts, mask),
        ),
        AluPred::RelHole { hole, ops, a, b } => {
            let op = select_concrete(holes[*hole], ops);
            op.eval(
                eval_expr(a, holes, state, new_state, pkts, mask),
                eval_expr(b, holes, state, new_state, pkts, mask),
            )
        }
        AluPred::And(a, b) => {
            eval_pred(a, holes, state, new_state, pkts, mask)
                && eval_pred(b, holes, state, new_state, pkts, mask)
        }
        AluPred::Or(a, b) => {
            eval_pred(a, holes, state, new_state, pkts, mask)
                || eval_pred(b, holes, state, new_state, pkts, mask)
        }
        AluPred::Not(x) => !eval_pred(x, holes, state, new_state, pkts, mask),
    }
}

fn sym_expr(
    e: &AluExpr,
    c: &mut Circuit,
    holes: &[TermId],
    state: TermId,
    new_state: TermId,
    pkts: &[TermId],
) -> TermId {
    match e {
        AluExpr::State => state,
        AluExpr::NewState => new_state,
        AluExpr::Pkt(i) => pkts[*i],
        AluExpr::ConstHole(h) => holes[*h],
        AluExpr::Lit(v) => c.constant(*v),
        AluExpr::Add(a, b) => {
            let va = sym_expr(a, c, holes, state, new_state, pkts);
            let vb = sym_expr(b, c, holes, state, new_state, pkts);
            c.binop(BvOp::Add, va, vb)
        }
        AluExpr::Sub(a, b) => {
            let va = sym_expr(a, c, holes, state, new_state, pkts);
            let vb = sym_expr(b, c, holes, state, new_state, pkts);
            c.binop(BvOp::Sub, va, vb)
        }
        AluExpr::MuxHole { hole, arms } => {
            let options: Vec<TermId> = arms
                .iter()
                .map(|a| sym_expr(a, c, holes, state, new_state, pkts))
                .collect();
            select_chain(c, holes[*hole], &options)
        }
        AluExpr::IfElse { cond, then_, else_ } => {
            let p = sym_pred(cond, c, holes, state, new_state, pkts);
            let t = sym_expr(then_, c, holes, state, new_state, pkts);
            let f = sym_expr(else_, c, holes, state, new_state, pkts);
            c.mux(p, t, f)
        }
    }
}

fn sym_pred(
    p: &AluPred,
    c: &mut Circuit,
    holes: &[TermId],
    state: TermId,
    new_state: TermId,
    pkts: &[TermId],
) -> TermId {
    match p {
        AluPred::True => c.tru(),
        AluPred::FlagHole(h) => {
            let one = c.constant(1);
            let zero = c.constant(0);
            let bit = c.binop(BvOp::And, holes[*h], one);
            c.binop(BvOp::Ne, bit, zero)
        }
        AluPred::Rel { op, a, b } => {
            let va = sym_expr(a, c, holes, state, new_state, pkts);
            let vb = sym_expr(b, c, holes, state, new_state, pkts);
            c.binop(op.bvop(), va, vb)
        }
        AluPred::RelHole { hole, ops, a, b } => {
            let va = sym_expr(a, c, holes, state, new_state, pkts);
            let vb = sym_expr(b, c, holes, state, new_state, pkts);
            let options: Vec<TermId> = ops.iter().map(|op| c.binop(op.bvop(), va, vb)).collect();
            // Width-1 select chain: compare the hole against each index.
            let mut acc = options[options.len() - 1];
            for (i, &opt) in options.iter().enumerate().rev().skip(1) {
                let idx = c.constant(i as u64);
                let is_i = c.binop(BvOp::Eq, holes[*hole], idx);
                acc = c.mux(is_i, opt, acc);
            }
            acc
        }
        AluPred::And(a, b) => {
            let pa = sym_pred(a, c, holes, state, new_state, pkts);
            let pb = sym_pred(b, c, holes, state, new_state, pkts);
            c.binop(BvOp::And, pa, pb)
        }
        AluPred::Or(a, b) => {
            let pa = sym_pred(a, c, holes, state, new_state, pkts);
            let pb = sym_pred(b, c, holes, state, new_state, pkts);
            c.binop(BvOp::Or, pa, pb)
        }
        AluPred::Not(x) => {
            let px = sym_pred(x, c, holes, state, new_state, pkts);
            c.not(px)
        }
    }
}

/// Banzai-style stateful ALU templates.
pub mod library {
    use super::*;

    /// The standard hole-selected relational operator set (3 bits).
    fn rel_ops() -> Vec<RelOp> {
        vec![
            RelOp::Eq,
            RelOp::Ne,
            RelOp::Lt,
            RelOp::Ge,
            RelOp::Gt,
            RelOp::Le,
        ]
    }

    /// The standard update alternatives over `{state, pkt_0, const}`:
    /// `state+pkt_0 | pkt_0 | state+const | const | state` (3-bit selector;
    /// the bare `state` arm lets one branch of a conditional leave the
    /// register untouched).
    fn raw_arms(const_hole: usize) -> Vec<AluExpr> {
        vec![
            AluExpr::add(AluExpr::State, AluExpr::Pkt(0)),
            AluExpr::Pkt(0),
            AluExpr::add(AluExpr::State, AluExpr::ConstHole(const_hole)),
            AluExpr::ConstHole(const_hole),
            AluExpr::State,
        ]
    }

    /// Two-operand update alternatives (3-bit selector):
    /// `state+pkt₀ | state+pkt₁ | pkt₀ | pkt₁ | state+const | const |
    /// state`. Two-operand atoms need both packet arms so the predicate can
    /// observe one packet value while the update writes another (e.g.
    /// flowlet switching); the bare `state` arm leaves the register
    /// untouched in one branch.
    fn raw2_arms(const_hole: usize) -> Vec<AluExpr> {
        vec![
            AluExpr::add(AluExpr::State, AluExpr::Pkt(0)),
            AluExpr::add(AluExpr::State, AluExpr::Pkt(1)),
            AluExpr::Pkt(0),
            AluExpr::Pkt(1),
            AluExpr::add(AluExpr::State, AluExpr::ConstHole(const_hole)),
            AluExpr::ConstHole(const_hole),
            AluExpr::State,
        ]
    }

    /// Two-operand update alternatives with subtraction (4-bit selector).
    fn sub2_arms(const_hole: usize) -> Vec<AluExpr> {
        vec![
            AluExpr::add(AluExpr::State, AluExpr::Pkt(0)),
            AluExpr::sub(AluExpr::State, AluExpr::Pkt(0)),
            AluExpr::add(AluExpr::State, AluExpr::Pkt(1)),
            AluExpr::sub(AluExpr::State, AluExpr::Pkt(1)),
            AluExpr::Pkt(0),
            AluExpr::Pkt(1),
            AluExpr::add(AluExpr::State, AluExpr::ConstHole(const_hole)),
            AluExpr::sub(AluExpr::State, AluExpr::ConstHole(const_hole)),
            AluExpr::ConstHole(const_hole),
            AluExpr::State,
        ]
    }

    /// Output alternatives (2-bit selector): `old state | new state |
    /// pkt₀ | const` — Banzai atoms can emit branch-computed packet values,
    /// not just the register.
    fn out_arms(const_hole: usize) -> Vec<AluExpr> {
        vec![
            AluExpr::State,
            AluExpr::NewState,
            AluExpr::Pkt(0),
            AluExpr::ConstHole(const_hole),
        ]
    }

    /// The standard predicate:
    /// `relop( state | pkt₀ | pkt₀-state | state-pkt₀ , pkt₁ | const )`,
    /// with the operator, both operand muxes, and the constant as holes.
    /// The difference arms cover inter-arrival-gap tests like flowlet's
    /// `now - last_time > GAP` (Banzai's `sub` predicates). Hole layout
    /// (appended at `base`): `rel(2) pred_a(2) pred_b(1) pred_const(imm)`.
    fn std_pred(base: usize, _imm_bits: u8) -> AluPred {
        AluPred::RelHole {
            hole: base,
            ops: rel_ops(),
            a: AluExpr::MuxHole {
                hole: base + 1,
                arms: vec![
                    AluExpr::State,
                    AluExpr::Pkt(0),
                    AluExpr::sub(AluExpr::Pkt(0), AluExpr::State),
                    AluExpr::sub(AluExpr::State, AluExpr::Pkt(0)),
                ],
            },
            b: AluExpr::MuxHole {
                hole: base + 2,
                arms: vec![AluExpr::Pkt(1), AluExpr::ConstHole(base + 3)],
            },
        }
    }

    fn std_pred_holes(imm_bits: u8) -> Vec<(String, u8)> {
        std_pred_holes_named("pred", imm_bits)
    }

    /// Like [`std_pred_holes`] with a distinct prefix — templates with
    /// several predicate groups must keep hole names unique (the sketch
    /// layer addresses holes by name).
    fn std_pred_holes_named(prefix: &str, imm_bits: u8) -> Vec<(String, u8)> {
        vec![
            (format!("{prefix}_rel"), 3),
            (format!("{prefix}_a_mux"), 2),
            (format!("{prefix}_b_mux"), 1),
            (format!("{prefix}_const"), imm_bits),
        ]
    }

    /// `raw`: unconditional read-add-write —
    /// `state = state+pkt₀ | pkt₀ | state+const | const`; emits a selected
    /// output (old/new state, packet operand, or constant).
    pub fn raw(imm_bits: u8) -> StatefulAluSpec {
        StatefulAluSpec {
            name: "raw".into(),
            holes: vec![
                ("upd_mode".into(), 3),
                ("upd_const".into(), imm_bits),
                ("out_mode".into(), 2),
                ("out_const".into(), imm_bits),
            ],
            num_pkt_operands: 1,
            update: AluExpr::MuxHole {
                hole: 0,
                arms: raw_arms(1),
            },
            output: AluExpr::MuxHole {
                hole: 2,
                arms: out_arms(3),
            },
        }
    }

    /// `pred_raw`: predicated read-add-write —
    /// `if (pred) state = raw-update`; emits old state.
    pub fn pred_raw(imm_bits: u8) -> StatefulAluSpec {
        // Holes: 0..4 = pred (rel, a_mux, b_mux, const), 4 = upd_mode,
        // 5 = upd_const.
        let mut holes = std_pred_holes(imm_bits);
        holes.push(("upd_mode".into(), 3)); // 4
        holes.push(("upd_const".into(), imm_bits)); // 5
        holes.push(("outa_mode".into(), 2)); // 6
        holes.push(("outa_const".into(), imm_bits)); // 7
        holes.push(("outb_mode".into(), 2)); // 8
        holes.push(("outb_const".into(), imm_bits)); // 9
        StatefulAluSpec {
            name: "pred_raw".into(),
            holes,
            num_pkt_operands: 2,
            update: AluExpr::IfElse {
                cond: Box::new(std_pred(0, imm_bits)),
                then_: Box::new(AluExpr::MuxHole {
                    hole: 4,
                    arms: raw2_arms(5),
                }),
                else_: Box::new(AluExpr::State),
            },
            output: AluExpr::IfElse {
                cond: Box::new(std_pred(0, imm_bits)),
                then_: Box::new(AluExpr::MuxHole {
                    hole: 6,
                    arms: out_arms(7),
                }),
                else_: Box::new(AluExpr::MuxHole {
                    hole: 8,
                    arms: out_arms(9),
                }),
            },
        }
    }

    /// `if_else_raw`: both branches update —
    /// `if (pred) state = upd₁ else state = upd₂`; emits old state.
    pub fn if_else_raw(imm_bits: u8) -> StatefulAluSpec {
        let mut holes = std_pred_holes(imm_bits);
        holes.push(("upd1_mode".into(), 3)); // 4
        holes.push(("upd1_const".into(), imm_bits)); // 5
        holes.push(("upd2_mode".into(), 3)); // 6
        holes.push(("upd2_const".into(), imm_bits)); // 7
        holes.push(("outa_mode".into(), 2)); // 8
        holes.push(("outa_const".into(), imm_bits)); // 9
        holes.push(("outb_mode".into(), 2)); // 10
        holes.push(("outb_const".into(), imm_bits)); // 11
        StatefulAluSpec {
            name: "if_else_raw".into(),
            holes,
            num_pkt_operands: 2,
            update: AluExpr::IfElse {
                cond: Box::new(std_pred(0, imm_bits)),
                then_: Box::new(AluExpr::MuxHole {
                    hole: 4,
                    arms: raw2_arms(5),
                }),
                else_: Box::new(AluExpr::MuxHole {
                    hole: 6,
                    arms: raw2_arms(7),
                }),
            },
            output: AluExpr::IfElse {
                cond: Box::new(std_pred(0, imm_bits)),
                then_: Box::new(AluExpr::MuxHole {
                    hole: 8,
                    arms: out_arms(9),
                }),
                else_: Box::new(AluExpr::MuxHole {
                    hole: 10,
                    arms: out_arms(11),
                }),
            },
        }
    }

    /// `sub`: like `if_else_raw` but the update arms include subtraction
    /// (needed by e.g. BLUE's probability decrease).
    pub fn sub(imm_bits: u8) -> StatefulAluSpec {
        let mut holes = std_pred_holes(imm_bits);
        holes.push(("upd1_mode".into(), 4)); // 4
        holes.push(("upd1_const".into(), imm_bits)); // 5
        holes.push(("upd2_mode".into(), 4)); // 6
        holes.push(("upd2_const".into(), imm_bits)); // 7
        holes.push(("outa_mode".into(), 2)); // 8
        holes.push(("outa_const".into(), imm_bits)); // 9
        holes.push(("outb_mode".into(), 2)); // 10
        holes.push(("outb_const".into(), imm_bits)); // 11
        StatefulAluSpec {
            name: "sub".into(),
            holes,
            num_pkt_operands: 2,
            update: AluExpr::IfElse {
                cond: Box::new(std_pred(0, imm_bits)),
                then_: Box::new(AluExpr::MuxHole {
                    hole: 4,
                    arms: sub2_arms(5),
                }),
                else_: Box::new(AluExpr::MuxHole {
                    hole: 6,
                    arms: sub2_arms(7),
                }),
            },
            output: AluExpr::IfElse {
                cond: Box::new(std_pred(0, imm_bits)),
                then_: Box::new(AluExpr::MuxHole {
                    hole: 8,
                    arms: out_arms(9),
                }),
                else_: Box::new(AluExpr::MuxHole {
                    hole: 10,
                    arms: out_arms(11),
                }),
            },
        }
    }

    /// `nested_ifs`: two-level predicates with four leaf updates — the most
    /// expressive (and most expensive to synthesize) template. The three
    /// predicates are independent (outer, inner-then, inner-else), and the
    /// leaves can subtract, mirroring Banzai's nested-if atom family.
    pub fn nested_ifs(imm_bits: u8) -> StatefulAluSpec {
        // Holes: pred1 = 0..4, pred2 = 4..8, pred3 = 8..12, then four
        // (mode, const) leaf pairs at 12..20, then the output pair.
        let mut holes = std_pred_holes_named("pred", imm_bits); // 0..4  (outer)
        holes.extend(std_pred_holes_named("pred_t", imm_bits)); // 4..8  (inner, then-side)
        holes.extend(std_pred_holes_named("pred_e", imm_bits)); // 8..12 (inner, else-side)
        for k in 0..4 {
            holes.push((format!("upd{k}_mode"), 4));
            holes.push((format!("upd{k}_const"), imm_bits));
        }
        holes.push(("outa_mode".into(), 2)); // 20
        holes.push(("outa_const".into(), imm_bits)); // 21
        holes.push(("outb_mode".into(), 2)); // 22
        holes.push(("outb_const".into(), imm_bits)); // 23
        let leaf = |mode: usize| AluExpr::MuxHole {
            hole: mode,
            arms: sub2_arms(mode + 1),
        };
        StatefulAluSpec {
            name: "nested_ifs".into(),
            holes,
            num_pkt_operands: 2,
            update: AluExpr::IfElse {
                cond: Box::new(std_pred(0, imm_bits)),
                then_: Box::new(AluExpr::IfElse {
                    cond: Box::new(std_pred(4, imm_bits)),
                    then_: Box::new(leaf(12)),
                    else_: Box::new(leaf(14)),
                }),
                else_: Box::new(AluExpr::IfElse {
                    cond: Box::new(std_pred(8, imm_bits)),
                    then_: Box::new(leaf(16)),
                    else_: Box::new(leaf(18)),
                }),
            },
            // Output branches on the outer predicate.
            output: AluExpr::IfElse {
                cond: Box::new(std_pred(0, imm_bits)),
                then_: Box::new(AluExpr::MuxHole {
                    hole: 20,
                    arms: out_arms(21),
                }),
                else_: Box::new(AluExpr::MuxHole {
                    hole: 22,
                    arms: out_arms(23),
                }),
            },
        }
    }

    /// All library templates, for enumeration in tests and docs.
    pub fn all(imm_bits: u8) -> Vec<StatefulAluSpec> {
        vec![
            raw(imm_bits),
            pred_raw(imm_bits),
            if_else_raw(imm_bits),
            sub(imm_bits),
            nested_ifs(imm_bits),
        ]
    }

    /// Look a library template up by its canonical name, as used on the
    /// CLI (`--template`) and the serve wire protocol. Every front end
    /// should resolve template names through this single table so the
    /// accepted set cannot diverge between entry points.
    pub fn by_name(name: &str, imm_bits: u8) -> Option<StatefulAluSpec> {
        match name {
            "raw" => Some(raw(imm_bits)),
            "pred_raw" => Some(pred_raw(imm_bits)),
            "if_else_raw" => Some(if_else_raw(imm_bits)),
            "sub" => Some(sub(imm_bits)),
            "nested_ifs" => Some(nested_ifs(imm_bits)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_bv::InputId;

    #[test]
    fn library_templates_validate() {
        for t in library::all(2) {
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", t.name));
        }
    }

    #[test]
    fn hole_bit_counts_are_reasonable() {
        assert_eq!(library::raw(2).total_hole_bits(), 9);
        assert!(library::pred_raw(2).total_hole_bits() <= 26);
        assert!(library::nested_ifs(2).total_hole_bits() <= 80);
    }

    /// For every template, concrete eval and symbolic eval must agree on
    /// random hole assignments and inputs.
    #[test]
    fn concrete_matches_symbolic() {
        let width = 4u8;
        let mask = 15u64;
        for t in library::all(2) {
            let mut c = Circuit::new(width);
            let state = c.input("state");
            let pkts: Vec<TermId> = (0..t.num_pkt_operands)
                .map(|i| c.input(&format!("pkt{i}")))
                .collect();
            let holes: Vec<TermId> = t
                .holes
                .iter()
                .map(|(n, _)| c.input(&format!("hole_{n}")))
                .collect();
            let (ns, out) = t.symbolic(&mut c, &holes, state, &pkts);
            // Deterministic pseudo-random sweep.
            let mut seed = 0x1234_5678_9abc_def0u64;
            for _ in 0..200 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let mut vals = Vec::new();
                let mut s = seed;
                let state_v = s & mask;
                vals.push(state_v);
                let mut pkt_vals = Vec::new();
                for _ in 0..t.num_pkt_operands {
                    s >>= 4;
                    pkt_vals.push(s & mask);
                    vals.push(s & mask);
                }
                let mut hole_vals = Vec::new();
                for (_, bits) in &t.holes {
                    s = s.wrapping_mul(2654435761).wrapping_add(99);
                    let hv = s & ((1u64 << bits) - 1);
                    hole_vals.push(hv);
                    vals.push(hv);
                }
                let (want_ns, want_out) = t.eval(&hole_vals, state_v, &pkt_vals, mask);
                let vals2 = vals.clone();
                let lookup = move |i: InputId| vals2[i.index()];
                let got = c.eval_many(&[ns, out], &lookup);
                assert_eq!(got, vec![want_ns, want_out], "template {}", t.name);
            }
        }
    }

    #[test]
    fn raw_template_behaviours() {
        let t = library::raw(2);
        let mask = 15;
        // Holes: [upd_mode, upd_const, out_mode, out_const].
        // upd mode 0: state + pkt0; out mode 0: old state.
        assert_eq!(t.eval(&[0, 0, 0, 0], 5, &[3], mask), (8, 5));
        // upd mode 1: write pkt0.
        assert_eq!(t.eval(&[1, 0, 0, 0], 5, &[3], mask), (3, 5));
        // upd mode 2: state + const.
        assert_eq!(t.eval(&[2, 2, 0, 0], 5, &[3], mask), (7, 5));
        // upd mode 3: write const.
        assert_eq!(t.eval(&[3, 2, 0, 0], 5, &[3], mask), (2, 5));
        // out mode 1: new state; out mode 2: pkt0; out mode 3: const.
        assert_eq!(t.eval(&[0, 0, 1, 0], 5, &[3], mask), (8, 8));
        assert_eq!(t.eval(&[0, 0, 2, 0], 5, &[3], mask), (8, 3));
        assert_eq!(t.eval(&[0, 0, 3, 2], 5, &[3], mask), (8, 2));
    }

    #[test]
    fn if_else_raw_expresses_sampling_update() {
        // sampling: if (count == 9) count = 0 else count = count + 1
        // pred: rel=Eq(0), a_mux=state(0), b_mux=const(1), pred_const=9 —
        // but 9 needs 4 immediate bits.
        let t = library::if_else_raw(4);
        let holes = [
            0u64, // pred_rel = Eq
            0,    // pred_a = state
            1,    // pred_b = const
            9,    // pred_const
            5,    // upd1 = const
            0,    // upd1_const = 0
            4,    // upd2 = state + const
            1,    // upd2_const = 1
            3,    // outa = const
            1,    // outa_const = 1  (pkt.sample on the wrap)
            3,    // outb = const
            0,    // outb_const = 0
        ];
        let mask = 15;
        let mut count = 0u64;
        let mut sampled = Vec::new();
        for _ in 0..12 {
            let (ns, out) = t.eval(&holes, count, &[0, 0], mask);
            sampled.push(out);
            count = ns;
        }
        assert_eq!(count, 2); // 12 packets: wraps at the 10th
                              // pkt.sample fires exactly on the 10th packet — one atom, one stage.
        assert_eq!(sampled, [0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0]);
    }

    #[test]
    fn validate_rejects_bad_holes() {
        let t = StatefulAluSpec {
            name: "bad".into(),
            holes: vec![("m".into(), 1)],
            num_pkt_operands: 1,
            update: AluExpr::MuxHole {
                hole: 0,
                arms: vec![AluExpr::State, AluExpr::Pkt(0), AluExpr::Lit(1)],
            },
            output: AluExpr::State,
        };
        let err = t.validate().unwrap_err();
        assert!(err.contains("needs"), "{err}");

        let t2 = StatefulAluSpec {
            name: "bad2".into(),
            holes: vec![],
            num_pkt_operands: 1,
            update: AluExpr::Pkt(1),
            output: AluExpr::State,
        };
        assert!(t2.validate().is_err());

        // NewState may not appear in the update expression.
        let t3 = StatefulAluSpec {
            name: "bad3".into(),
            holes: vec![],
            num_pkt_operands: 1,
            update: AluExpr::NewState,
            output: AluExpr::State,
        };
        assert!(t3.validate().unwrap_err().contains("output"));
    }

    #[test]
    fn output_expression_variants() {
        let mk = |output| StatefulAluSpec {
            name: "t".into(),
            holes: vec![("sel".into(), 1)],
            num_pkt_operands: 1,
            update: AluExpr::add(AluExpr::State, AluExpr::Lit(1)),
            output,
        };
        let mask = 15;
        assert_eq!(mk(AluExpr::State).eval(&[0], 5, &[0], mask), (6, 5));
        assert_eq!(mk(AluExpr::NewState).eval(&[0], 5, &[0], mask), (6, 6));
        let hole_sel = AluExpr::MuxHole {
            hole: 0,
            arms: vec![AluExpr::State, AluExpr::NewState],
        };
        assert_eq!(mk(hole_sel.clone()).eval(&[0], 5, &[0], mask), (6, 5));
        assert_eq!(mk(hole_sel).eval(&[1], 5, &[0], mask), (6, 6));
    }
}
