//! # chipmunk-pisa
//!
//! A simulator for the Protocol Independent Switch Architecture (PISA) in
//! the simplified form used by the paper: all switch computation is
//! abstracted into a **2-D grid of ALUs** (Figure 2). The x axis is the
//! pipeline stage; the y axis holds, per stage, one *stateless* ALU and one
//! *stateful* ALU per PHV container. Packets enter from the left, exit to
//! the right, one packet per clock.
//!
//! * PHV containers carry packet fields between stages.
//! * **Stateless ALUs** ([`stateless`]) combine two mux-selected container
//!   values (or an immediate) with a configurable opcode; the result is the
//!   "destination" value of the ALU's own container.
//! * **Stateful ALUs** ([`stateful`]) own a register that persists across
//!   packets; their behaviour is described by a small *template* expression
//!   language with holes, so different switch hardware can be simulated by
//!   supplying different templates (§2.2 of the paper). A library of
//!   Banzai-style templates (`raw`, `pred_raw`, `if_else_raw`, `sub`,
//!   `nested_ifs`) is included.
//! * **Muxes** route container values into ALUs and ALU outputs back into
//!   containers.
//!
//! The hardware configuration record ([`PipelineConfig`]) mirrors Table 1
//! of the paper: ALU opcodes, input-mux controls, output-mux controls,
//! packet-field allocation, state-variable allocation, and immediate
//! operands. A configured [`Pipeline`] executes concretely (one packet per
//! [`Pipeline::exec`]); the same semantics can be emitted symbolically into
//! a `chipmunk-bv` circuit for synthesis and verification (see the
//! `symbolic_*` functions in [`stateless`] and [`stateful`]).

#![warn(missing_docs)]

pub mod grid;
pub mod stateful;
pub mod stateless;
pub(crate) mod symutil;

pub use grid::{
    GridSpec, OutMuxSel, Pipeline, PipelineConfig, ResourceUsage, StageConfig, StatefulConfig,
    StatelessConfig,
};
pub use stateful::{AluExpr, AluPred, RelOp, StatefulAluSpec};
pub use stateless::{StatelessAluSpec, StatelessOp};
