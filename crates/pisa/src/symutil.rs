//! Shared helpers for symbolic (circuit) construction.

use chipmunk_bv::{BvOp, Circuit, TermId};

/// Select among `options` by the value of `sel` (a value-width term):
/// returns `options[sel]`, defaulting to the **last** option when `sel`
/// exceeds the range. This is the circuit analogue of a hardware mux whose
/// control lines have more codes than inputs.
pub(crate) fn select_chain(c: &mut Circuit, sel: TermId, options: &[TermId]) -> TermId {
    assert!(!options.is_empty());
    let mut acc = options[options.len() - 1];
    for (i, &opt) in options.iter().enumerate().rev().skip(1) {
        let idx = c.constant(i as u64);
        let is_i = c.binop(BvOp::Eq, sel, idx);
        acc = c.mux(is_i, opt, acc);
    }
    acc
}

/// Concrete analogue of [`select_chain`].
pub(crate) fn select_concrete<T: Copy>(sel: u64, options: &[T]) -> T {
    let i = (sel as usize).min(options.len() - 1);
    options[i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_bv::InputId;

    #[test]
    fn select_chain_matches_concrete() {
        let mut c = Circuit::new(4);
        let sel = c.input("sel");
        let opts: Vec<TermId> = (0..3).map(|i| c.constant(10 + i)).collect();
        let out = select_chain(&mut c, sel, &opts);
        for s in 0..16u64 {
            let got = c.eval(out, &move |_: InputId| s);
            let want = 10 + select_concrete(s, &[0u64, 1, 2]);
            assert_eq!(got, want, "sel={s}");
        }
    }

    #[test]
    fn single_option_is_constant() {
        let mut c = Circuit::new(4);
        let sel = c.input("sel");
        let only = c.constant(7);
        let out = select_chain(&mut c, sel, &[only]);
        assert_eq!(out, only);
    }
}
