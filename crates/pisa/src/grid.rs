//! The 2-D ALU grid: specification, configuration, and concrete execution.
//!
//! A [`GridSpec`] fixes the hardware shape (stages × slots, ALU types); a
//! [`PipelineConfig`] fills in every hole of Table 1 of the paper; a
//! [`Pipeline`] executes the configured grid one packet at a time at a
//! chosen bit width.

use crate::stateful::StatefulAluSpec;
use crate::stateless::{eval_alu, StatelessAluSpec};

/// Shape and ALU types of a simulated switch.
#[derive(Clone, PartialEq, Debug)]
pub struct GridSpec {
    /// Number of pipeline stages (the x axis of the grid).
    pub stages: usize,
    /// Slots per stage: the number of PHV containers, which is also the
    /// number of stateless ALUs and of stateful ALUs per stage (the y
    /// axis). The paper's Figure 2 shows a 2-by-2 grid.
    pub slots: usize,
    /// The stateless ALU hardware.
    pub stateless: StatelessAluSpec,
    /// The stateful ALU hardware (one template for the whole, homogeneous
    /// grid).
    pub stateful: StatefulAluSpec,
}

impl GridSpec {
    /// A grid with the paper's default ALUs (full Banzai stateless ALU).
    pub fn new(stages: usize, slots: usize, stateful: StatefulAluSpec, imm_bits: u8) -> Self {
        GridSpec {
            stages,
            slots,
            stateless: StatelessAluSpec::banzai(imm_bits),
            stateful,
        }
    }
}

/// Configuration of one stateless ALU instance (Table 1: opcode, input mux
/// controls, immediate operand).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatelessConfig {
    /// Opcode, encoded as an index into [`StatelessAluSpec::ops`]
    /// (out-of-range clamps to the last opcode, like the hardware mux).
    pub opcode: u64,
    /// Immediate operand.
    pub imm: u64,
    /// First input mux: which container feeds operand `a`.
    pub mux_a: usize,
    /// Second input mux: which container feeds operand `b`.
    pub mux_b: usize,
}

/// Configuration of one stateful ALU instance (Table 1: state-variable
/// allocation, input mux controls, template holes).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatefulConfig {
    /// Which program state variable this ALU holds, if any. In canonical
    /// allocation, slot `i` may only hold state variable `i` (Figure 4 of
    /// the paper); the executor does not require canonicity.
    pub state_var: Option<usize>,
    /// Input mux per packet operand: which container feeds it.
    pub pkt_muxes: Vec<usize>,
    /// Values of the template's holes, in template order.
    pub holes: Vec<u64>,
}

/// Output-mux selection for one container (Table 1: where a container's
/// next value comes from).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OutMuxSel {
    /// The container's own stateless ALU output ("destination").
    Stateless,
    /// The output of stateful ALU `j` of this stage.
    Stateful(usize),
}

/// Configuration of one pipeline stage.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StageConfig {
    /// One stateless ALU per slot.
    pub stateless: Vec<StatelessConfig>,
    /// One stateful ALU per slot.
    pub stateful: Vec<StatefulConfig>,
    /// One output mux per container.
    pub out_mux: Vec<OutMuxSel>,
}

/// A complete hardware configuration for a [`GridSpec`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PipelineConfig {
    /// Per-stage configuration, length = `GridSpec::stages`.
    pub stages: Vec<StageConfig>,
}

impl PipelineConfig {
    /// Validate shape and mux ranges against a grid and a number of program
    /// state variables. Returns the first problem found.
    pub fn validate(&self, spec: &GridSpec, num_states: usize) -> Result<(), String> {
        if self.stages.len() != spec.stages {
            return Err(format!(
                "config has {} stages, grid has {}",
                self.stages.len(),
                spec.stages
            ));
        }
        let mut seen_state = vec![false; num_states];
        for (si, st) in self.stages.iter().enumerate() {
            if st.stateless.len() != spec.slots
                || st.stateful.len() != spec.slots
                || st.out_mux.len() != spec.slots
            {
                return Err(format!("stage {si} has wrong slot count"));
            }
            for (j, sl) in st.stateless.iter().enumerate() {
                if sl.mux_a >= spec.slots || sl.mux_b >= spec.slots {
                    return Err(format!("stage {si} stateless {j}: mux out of range"));
                }
            }
            for (j, sf) in st.stateful.iter().enumerate() {
                if sf.pkt_muxes.len() != spec.stateful.num_pkt_operands {
                    return Err(format!(
                        "stage {si} stateful {j}: expected {} pkt muxes",
                        spec.stateful.num_pkt_operands
                    ));
                }
                if sf.pkt_muxes.iter().any(|&m| m >= spec.slots) {
                    return Err(format!("stage {si} stateful {j}: pkt mux out of range"));
                }
                if sf.holes.len() != spec.stateful.holes.len() {
                    return Err(format!(
                        "stage {si} stateful {j}: expected {} holes",
                        spec.stateful.holes.len()
                    ));
                }
                if let Some(v) = sf.state_var {
                    if v >= num_states {
                        return Err(format!(
                            "stage {si} stateful {j}: state var {v} out of range"
                        ));
                    }
                    if seen_state[v] {
                        return Err(format!("state var {v} allocated twice"));
                    }
                    seen_state[v] = true;
                }
            }
            for (j, om) in st.out_mux.iter().enumerate() {
                if let OutMuxSel::Stateful(k) = om {
                    if *k >= spec.slots {
                        return Err(format!("stage {si} out mux {j} out of range"));
                    }
                }
            }
        }
        for (v, seen) in seen_state.iter().enumerate() {
            if !seen {
                return Err(format!("state var {v} is not allocated to any ALU"));
            }
        }
        Ok(())
    }
}

/// Resource usage extracted from a configuration, the metric of the paper's
/// Figure 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResourceUsage {
    /// Number of pipeline stages that perform useful work.
    pub stages_used: usize,
    /// Maximum number of *used* ALUs in any single stage.
    pub max_alus_per_stage: usize,
    /// Total used ALUs across the pipeline.
    pub total_alus: usize,
}

/// A configured pipeline ready to process packets.
#[derive(Clone, Debug)]
pub struct Pipeline {
    spec: GridSpec,
    config: PipelineConfig,
    /// Live state registers: one per program state variable.
    states: Vec<u64>,
    width: u8,
}

impl Pipeline {
    /// Build a pipeline. `num_states` is the number of program state
    /// variables; registers start at zero (use [`Pipeline::set_state`] to
    /// seed them).
    ///
    /// # Errors
    /// If `width` is outside `1..=64` (it reaches here straight from
    /// untrusted CLI/request input) or the configuration does not
    /// validate against the grid.
    pub fn new(
        spec: GridSpec,
        config: PipelineConfig,
        num_states: usize,
        width: u8,
    ) -> Result<Pipeline, String> {
        if !(1..=64).contains(&width) {
            return Err(format!("word width {width} out of range 1..=64"));
        }
        config.validate(&spec, num_states)?;
        Ok(Pipeline {
            spec,
            config,
            states: vec![0; num_states],
            width,
        })
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Current value of a state register.
    pub fn state(&self, v: usize) -> u64 {
        self.states[v]
    }

    /// Overwrite a state register.
    pub fn set_state(&mut self, v: usize, value: u64) {
        self.states[v] = value & self.mask();
    }

    /// The grid specification.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The hardware configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Process one packet: `phv_in` are the container values entering stage
    /// 0 (length = slots); returns the container values exiting the last
    /// stage. State registers update in place (visible to the next packet —
    /// the grid runs at one packet per clock).
    pub fn exec(&mut self, phv_in: &[u64]) -> Vec<u64> {
        assert_eq!(phv_in.len(), self.spec.slots, "PHV width mismatch");
        let m = self.mask();
        let mut cur: Vec<u64> = phv_in.iter().map(|v| v & m).collect();
        for st in &self.config.stages {
            // Stateless ALUs ("destinations").
            let dest: Vec<u64> = st
                .stateless
                .iter()
                .map(|sl| {
                    eval_alu(
                        &self.spec.stateless,
                        sl.opcode,
                        cur[sl.mux_a],
                        cur[sl.mux_b],
                        sl.imm,
                        m,
                    )
                })
                .collect();
            // Stateful ALUs.
            let mut salu_out = vec![0u64; self.spec.slots];
            for (j, sf) in st.stateful.iter().enumerate() {
                if let Some(v) = sf.state_var {
                    let pkts: Vec<u64> = sf.pkt_muxes.iter().map(|&x| cur[x]).collect();
                    let (ns, out) = self.spec.stateful.eval(&sf.holes, self.states[v], &pkts, m);
                    self.states[v] = ns;
                    salu_out[j] = out;
                }
            }
            // Output muxes.
            cur = st
                .out_mux
                .iter()
                .enumerate()
                .map(|(j, om)| match om {
                    OutMuxSel::Stateless => dest[j],
                    OutMuxSel::Stateful(k) => salu_out[*k],
                })
                .collect();
        }
        cur
    }

    /// Resource usage of this configuration (Figure 5 metrics).
    ///
    /// A stateful ALU is *used* when it holds a state variable. A stateless
    /// ALU is *used* when its container's output mux selects it **and** it
    /// is not a pure pass-through of its own container (`PassA` with
    /// `mux_a` pointing at itself), which is how an untouched field rides
    /// through a stage.
    pub fn resources(&self) -> ResourceUsage {
        resources_of(&self.spec, &self.config)
    }
}

/// See [`Pipeline::resources`].
pub fn resources_of(spec: &GridSpec, config: &PipelineConfig) -> ResourceUsage {
    let mut stages_used = 0;
    let mut max_alus = 0;
    let mut total = 0;
    for (si, st) in config.stages.iter().enumerate() {
        let mut used_here = 0;
        for sf in &st.stateful {
            if sf.state_var.is_some() {
                used_here += 1;
            }
        }
        for (j, om) in st.out_mux.iter().enumerate() {
            if *om == OutMuxSel::Stateless {
                let sl = &st.stateless[j];
                let op = crate::symutil::select_concrete(sl.opcode, &spec.stateless.ops);
                let identity = op == crate::stateless::StatelessOp::PassA && sl.mux_a == j;
                if !identity {
                    used_here += 1;
                }
            }
        }
        if used_here > 0 {
            stages_used = si + 1;
            max_alus = max_alus.max(used_here);
            total += used_here;
        }
    }
    ResourceUsage {
        stages_used,
        max_alus_per_stage: max_alus,
        total_alus: total,
    }
}

// ---------------------------------------------------------------------------
// JSON (de)serialization. Hand-rolled on chipmunk_trace::json; the wire
// format matches what serde used to emit so existing result files parse.
// ---------------------------------------------------------------------------

use chipmunk_trace::json::Json;

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, String> {
    Ok(get_u64(v, key)? as usize)
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    v.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array field `{key}`"))
}

impl StatelessConfig {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("opcode", Json::from(self.opcode)),
            ("imm", Json::from(self.imm)),
            ("mux_a", Json::from(self.mux_a)),
            ("mux_b", Json::from(self.mux_b)),
        ])
    }

    /// Deserialize from JSON.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(StatelessConfig {
            opcode: get_u64(v, "opcode")?,
            imm: get_u64(v, "imm")?,
            mux_a: get_usize(v, "mux_a")?,
            mux_b: get_usize(v, "mux_b")?,
        })
    }
}

impl StatefulConfig {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "state_var",
                match self.state_var {
                    Some(v) => Json::from(v),
                    None => Json::Null,
                },
            ),
            (
                "pkt_muxes",
                Json::Arr(self.pkt_muxes.iter().map(|&m| Json::from(m)).collect()),
            ),
            (
                "holes",
                Json::Arr(self.holes.iter().map(|&h| Json::from(h)).collect()),
            ),
        ])
    }

    /// Deserialize from JSON.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let state_var = match v.get("state_var") {
            None | Some(Json::Null) => None,
            Some(sv) => Some(
                sv.as_u64()
                    .ok_or_else(|| "non-integer `state_var`".to_string())? as usize,
            ),
        };
        let pkt_muxes = get_arr(v, "pkt_muxes")?
            .iter()
            .map(|m| m.as_u64().map(|x| x as usize))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| "non-integer pkt mux".to_string())?;
        let holes = get_arr(v, "holes")?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| "non-integer hole".to_string())?;
        Ok(StatefulConfig {
            state_var,
            pkt_muxes,
            holes,
        })
    }
}

impl OutMuxSel {
    /// Serialize to JSON (externally tagged, like serde's enum encoding).
    pub fn to_json(&self) -> Json {
        match self {
            OutMuxSel::Stateless => Json::from("Stateless"),
            OutMuxSel::Stateful(k) => Json::obj([("Stateful", Json::from(*k))]),
        }
    }

    /// Deserialize from JSON.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        if v.as_str() == Some("Stateless") {
            return Ok(OutMuxSel::Stateless);
        }
        if let Some(k) = v.get("Stateful").and_then(Json::as_u64) {
            return Ok(OutMuxSel::Stateful(k as usize));
        }
        Err(format!("invalid out-mux selection: {v}"))
    }
}

impl StageConfig {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "stateless",
                Json::Arr(self.stateless.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "stateful",
                Json::Arr(self.stateful.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "out_mux",
                Json::Arr(self.out_mux.iter().map(|s| s.to_json()).collect()),
            ),
        ])
    }

    /// Deserialize from JSON.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(StageConfig {
            stateless: get_arr(v, "stateless")?
                .iter()
                .map(StatelessConfig::from_json)
                .collect::<Result<_, _>>()?,
            stateful: get_arr(v, "stateful")?
                .iter()
                .map(StatefulConfig::from_json)
                .collect::<Result<_, _>>()?,
            out_mux: get_arr(v, "out_mux")?
                .iter()
                .map(OutMuxSel::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl PipelineConfig {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "stages",
            Json::Arr(self.stages.iter().map(|s| s.to_json()).collect()),
        )])
    }

    /// Deserialize from JSON.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(PipelineConfig {
            stages: get_arr(v, "stages")?
                .iter()
                .map(StageConfig::from_json)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parse a configuration from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&v)
    }
}

impl ResourceUsage {
    /// Serialize to JSON.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("stages_used", Json::from(self.stages_used)),
            ("max_alus_per_stage", Json::from(self.max_alus_per_stage)),
            ("total_alus", Json::from(self.total_alus)),
        ])
    }

    /// Deserialize from JSON.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        Ok(ResourceUsage {
            stages_used: get_usize(v, "stages_used")?,
            max_alus_per_stage: get_usize(v, "max_alus_per_stage")?,
            total_alus: get_usize(v, "total_alus")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stateful::library;
    use crate::stateless::StatelessOp;

    fn passthrough_stage(slots: usize, spec: &GridSpec) -> StageConfig {
        let pass_code = spec
            .stateless
            .ops
            .iter()
            .position(|&o| o == StatelessOp::PassA)
            .expect("PassA available") as u64;
        StageConfig {
            stateless: (0..slots)
                .map(|j| StatelessConfig {
                    opcode: pass_code,
                    imm: 0,
                    mux_a: j,
                    mux_b: j,
                })
                .collect(),
            stateful: (0..slots)
                .map(|_| StatefulConfig {
                    state_var: None,
                    pkt_muxes: vec![0; spec.stateful.num_pkt_operands],
                    holes: vec![0; spec.stateful.holes.len()],
                })
                .collect(),
            out_mux: vec![OutMuxSel::Stateless; slots],
        }
    }

    fn grid(stages: usize, slots: usize) -> GridSpec {
        GridSpec::new(stages, slots, library::raw(2), 2)
    }

    #[test]
    fn out_of_range_width_is_a_typed_error_not_a_panic() {
        // `width` arrives straight from `chipmunkc run --width N`; a bad
        // value must surface as Err, never an assert.
        for bad in [0u8, 65, 255] {
            let spec = grid(1, 1);
            let config = PipelineConfig {
                stages: vec![passthrough_stage(1, &spec)],
            };
            let err = Pipeline::new(spec, config, 0, bad).unwrap_err();
            assert!(err.contains("out of range"), "width {bad}: {err}");
        }
    }

    #[test]
    fn passthrough_pipeline_is_identity() {
        let spec = grid(3, 2);
        let config = PipelineConfig {
            stages: (0..3).map(|_| passthrough_stage(2, &spec)).collect(),
        };
        let mut p = Pipeline::new(spec, config, 0, 8).unwrap();
        assert_eq!(p.exec(&[42, 7]), vec![42, 7]);
        assert_eq!(
            p.resources(),
            ResourceUsage {
                stages_used: 0,
                max_alus_per_stage: 0,
                total_alus: 0
            }
        );
    }

    #[test]
    fn stateless_add_then_pass() {
        let spec = grid(2, 2);
        let add_code = spec
            .stateless
            .ops
            .iter()
            .position(|&o| o == StatelessOp::Add)
            .unwrap() as u64;
        let mut stage0 = passthrough_stage(2, &spec);
        // Container 0 of stage 0 computes c0 + c1.
        stage0.stateless[0] = StatelessConfig {
            opcode: add_code,
            imm: 0,
            mux_a: 0,
            mux_b: 1,
        };
        let stage1 = passthrough_stage(2, &spec);
        let config = PipelineConfig {
            stages: vec![stage0, stage1],
        };
        let mut p = Pipeline::new(spec, config, 0, 8).unwrap();
        assert_eq!(p.exec(&[3, 4]), vec![7, 4]);
        let r = p.resources();
        assert_eq!(r.stages_used, 1);
        assert_eq!(r.max_alus_per_stage, 1);
        assert_eq!(r.total_alus, 1);
    }

    #[test]
    fn stateful_counter_accumulates_across_packets() {
        let spec = grid(1, 2);
        let mut stage0 = passthrough_stage(2, &spec);
        // Stateful ALU 0 holds state var 0; raw template mode 0 =
        // state + pkt0; pkt mux selects container 1. Output (old state)
        // routed to container 0.
        stage0.stateful[0] = StatefulConfig {
            state_var: Some(0),
            pkt_muxes: vec![1],
            holes: vec![0, 0, 0, 0], // upd: state+pkt; out: old state
        };
        stage0.out_mux[0] = OutMuxSel::Stateful(0);
        let config = PipelineConfig {
            stages: vec![stage0],
        };
        let mut p = Pipeline::new(spec, config, 1, 8).unwrap();
        assert_eq!(p.exec(&[0, 5]), vec![0, 5]); // emits old state 0
        assert_eq!(p.state(0), 5);
        assert_eq!(p.exec(&[0, 3]), vec![5, 3]); // emits old state 5
        assert_eq!(p.state(0), 8);
        let r = p.resources();
        assert_eq!(r.stages_used, 1);
        // stateful ALU + the pass-through on container 1 is identity (not
        // counted); container 0's omux selects the stateful ALU.
        assert_eq!(r.max_alus_per_stage, 1);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let spec = grid(1, 2);
        let good = PipelineConfig {
            stages: vec![passthrough_stage(2, &spec)],
        };
        assert!(good.validate(&spec, 0).is_ok());

        let mut wrong_stages = good.clone();
        wrong_stages.stages.push(passthrough_stage(2, &spec));
        assert!(wrong_stages.validate(&spec, 0).is_err());

        let mut bad_mux = good.clone();
        bad_mux.stages[0].stateless[0].mux_a = 9;
        assert!(bad_mux.validate(&spec, 0).is_err());

        // State var never allocated.
        assert!(good.validate(&spec, 1).is_err());

        let mut dup = good.clone();
        dup.stages[0].stateful[0].state_var = Some(0);
        dup.stages[0].stateful[1].state_var = Some(0);
        assert!(dup.validate(&spec, 1).is_err());

        let mut bad_holes = good;
        bad_holes.stages[0].stateful[0].state_var = Some(0);
        bad_holes.stages[0].stateful[0].holes = vec![0];
        assert!(bad_holes.validate(&spec, 1).is_err());
    }

    #[test]
    fn width_masks_values() {
        let spec = grid(1, 1);
        let config = PipelineConfig {
            stages: vec![passthrough_stage(1, &spec)],
        };
        let mut p = Pipeline::new(spec, config, 0, 4).unwrap();
        assert_eq!(p.exec(&[0xff]), vec![0xf]);
    }

    #[test]
    fn out_mux_can_broadcast_stateful_output() {
        let spec = grid(1, 2);
        let mut stage0 = passthrough_stage(2, &spec);
        stage0.stateful[1] = StatefulConfig {
            state_var: Some(0),
            pkt_muxes: vec![0],
            holes: vec![1, 0, 0, 0], // upd mode 1: state = pkt0; out: old
        };
        stage0.out_mux[0] = OutMuxSel::Stateful(1);
        stage0.out_mux[1] = OutMuxSel::Stateful(1);
        let config = PipelineConfig {
            stages: vec![stage0],
        };
        let mut p = Pipeline::new(spec, config, 1, 8).unwrap();
        p.set_state(0, 99);
        assert_eq!(p.exec(&[55, 0]), vec![99, 99]);
        assert_eq!(p.state(0), 55);
    }
}
