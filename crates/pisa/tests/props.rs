//! Randomized tests for the PISA simulator: configurations survive JSON
//! round-trips, execution is deterministic and width-masked, and resource
//! accounting stays within physical bounds. Seeded, so every run checks
//! the same 128-configuration corpus.

use chipmunk_pisa::stateful::library;
use chipmunk_pisa::{
    GridSpec, OutMuxSel, Pipeline, PipelineConfig, StageConfig, StatefulConfig, StatelessConfig,
};
use chipmunk_trace::rng::Xoshiro256;

const STAGES: usize = 2;
const SLOTS: usize = 2;

fn grid() -> GridSpec {
    GridSpec::new(STAGES, SLOTS, library::if_else_raw(3), 3)
}

fn random_stateless(rng: &mut Xoshiro256) -> StatelessConfig {
    StatelessConfig {
        opcode: rng.gen_u64_below(32),
        imm: rng.gen_u64_below(8),
        mux_a: rng.gen_usize(SLOTS),
        mux_b: rng.gen_usize(SLOTS),
    }
}

fn random_config(rng: &mut Xoshiro256, num_states: usize) -> PipelineConfig {
    let nh = library::if_else_raw(3).holes.len();
    // Which stage hosts each state variable (canonical rows).
    let stage_of: Vec<usize> = (0..num_states).map(|_| rng.gen_usize(STAGES)).collect();
    let stages = (0..STAGES)
        .map(|s| StageConfig {
            stateless: (0..SLOTS).map(|_| random_stateless(rng)).collect(),
            stateful: (0..SLOTS)
                .map(|j| StatefulConfig {
                    state_var: (j < stage_of.len() && stage_of[j] == s).then_some(j),
                    pkt_muxes: (0..2).map(|_| rng.gen_usize(SLOTS)).collect(),
                    holes: (0..nh).map(|_| rng.gen_u64_below(16)).collect(),
                })
                .collect(),
            out_mux: (0..SLOTS)
                .map(|_| {
                    let v = rng.gen_usize(SLOTS + 2);
                    if v < SLOTS {
                        OutMuxSel::Stateful(v)
                    } else {
                        OutMuxSel::Stateless
                    }
                })
                .collect(),
        })
        .collect();
    PipelineConfig { stages }
}

/// The JSON round-trip is the identity on configurations.
#[test]
fn config_roundtrips_through_json() {
    let mut rng = Xoshiro256::seed_from_u64(0x9154_0001);
    for case in 0..128 {
        let cfg = random_config(&mut rng, 2);
        let json = cfg.to_json().to_compact();
        let back = PipelineConfig::from_json_str(&json).expect("parses");
        assert_eq!(cfg, back, "case {case}: {json}");
    }
}

/// Execution is deterministic, masked to the width, and state updates are
/// reproducible from the same seed state.
#[test]
fn execution_is_deterministic_and_masked() {
    let mut rng = Xoshiro256::seed_from_u64(0x9154_0002);
    for case in 0..128 {
        let cfg = random_config(&mut rng, 2);
        let phv: Vec<u64> = (0..SLOTS).map(|_| rng.gen_u64_below(1024)).collect();
        let s0 = rng.gen_u64_below(1024);
        let s1 = rng.gen_u64_below(1024);
        let width = 6u8;
        let mask = (1u64 << width) - 1;
        let run = || {
            let mut p = Pipeline::new(grid(), cfg.clone(), 2, width).expect("validates");
            p.set_state(0, s0);
            p.set_state(1, s1);
            let out = p.exec(&phv);
            (out, p.state(0), p.state(1))
        };
        let (o1, a1, b1) = run();
        let (o2, a2, b2) = run();
        assert_eq!(&o1, &o2, "case {case}");
        assert_eq!((a1, b1), (a2, b2), "case {case}");
        for v in o1 {
            assert!(v <= mask, "case {case}: unmasked output {v}");
        }
        assert!(a1 <= mask && b1 <= mask, "case {case}: unmasked state");
    }
}

/// Resource accounting never exceeds the physical grid.
#[test]
fn resources_within_bounds() {
    let mut rng = Xoshiro256::seed_from_u64(0x9154_0003);
    for case in 0..128 {
        let cfg = random_config(&mut rng, 2);
        let g = grid();
        let r = chipmunk_pisa::grid::resources_of(&g, &cfg);
        assert!(r.stages_used <= g.stages, "case {case}");
        assert!(r.max_alus_per_stage <= 2 * g.slots, "case {case}");
        assert!(r.total_alus <= 2 * g.slots * g.stages, "case {case}");
    }
}
