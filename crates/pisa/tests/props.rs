//! Property tests for the PISA simulator: configurations survive JSON
//! round-trips, execution is deterministic and width-masked, and resource
//! accounting stays within physical bounds.

use chipmunk_pisa::stateful::library;
use chipmunk_pisa::{
    GridSpec, OutMuxSel, Pipeline, PipelineConfig, StageConfig, StatefulConfig, StatelessConfig,
};
use proptest::prelude::*;

const STAGES: usize = 2;
const SLOTS: usize = 2;

fn grid() -> GridSpec {
    GridSpec::new(STAGES, SLOTS, library::if_else_raw(3), 3)
}

prop_compose! {
    fn arb_stateless()(opcode in 0u64..32, imm in 0u64..8, mux_a in 0..SLOTS, mux_b in 0..SLOTS)
        -> StatelessConfig
    {
        StatelessConfig { opcode, imm, mux_a, mux_b }
    }
}

fn arb_config(num_states: usize) -> impl Strategy<Value = PipelineConfig> {
    let nh = library::if_else_raw(3).holes.len();
    // Which stage hosts each state variable (canonical rows).
    let stage_of: Vec<_> = (0..num_states).map(|_| 0..STAGES).collect();
    (
        stage_of,
        prop::collection::vec(arb_stateless(), STAGES * SLOTS),
        prop::collection::vec(0u64..16, STAGES * SLOTS * nh),
        prop::collection::vec(0usize..SLOTS + 2, STAGES * SLOTS),
        prop::collection::vec(0usize..SLOTS, STAGES * SLOTS * 2),
    )
        .prop_map(move |(stage_of, stateless, holes, omux, pkt_muxes)| {
            let stages = (0..STAGES)
                .map(|s| StageConfig {
                    stateless: stateless[s * SLOTS..(s + 1) * SLOTS].to_vec(),
                    stateful: (0..SLOTS)
                        .map(|j| StatefulConfig {
                            state_var: (j < stage_of.len() && stage_of[j] == s).then_some(j),
                            pkt_muxes: (0..2).map(|k| pkt_muxes[(s * SLOTS + j) * 2 + k]).collect(),
                            holes: (0..nh).map(|k| holes[(s * SLOTS + j) * nh + k]).collect(),
                        })
                        .collect(),
                    out_mux: (0..SLOTS)
                        .map(|j| {
                            let v = omux[s * SLOTS + j];
                            if v < SLOTS {
                                OutMuxSel::Stateful(v)
                            } else {
                                OutMuxSel::Stateless
                            }
                        })
                        .collect(),
                })
                .collect();
            PipelineConfig { stages }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Serde JSON round-trip is the identity on configurations.
    #[test]
    fn config_roundtrips_through_json(cfg in arb_config(2)) {
        let json = serde_json::to_string(&cfg).expect("serializes");
        let back: PipelineConfig = serde_json::from_str(&json).expect("parses");
        prop_assert_eq!(cfg, back);
    }

    /// Execution is deterministic, masked to the width, and state updates
    /// are reproducible from the same seed state.
    #[test]
    fn execution_is_deterministic_and_masked(
        cfg in arb_config(2),
        phv in prop::collection::vec(0u64..1024, SLOTS),
        s0 in 0u64..1024,
        s1 in 0u64..1024,
    ) {
        let width = 6u8;
        let mask = (1u64 << width) - 1;
        let run = || {
            let mut p = Pipeline::new(grid(), cfg.clone(), 2, width).expect("validates");
            p.set_state(0, s0);
            p.set_state(1, s1);
            let out = p.exec(&phv);
            (out, p.state(0), p.state(1))
        };
        let (o1, a1, b1) = run();
        let (o2, a2, b2) = run();
        prop_assert_eq!(&o1, &o2);
        prop_assert_eq!((a1, b1), (a2, b2));
        for v in o1 {
            prop_assert!(v <= mask);
        }
        prop_assert!(a1 <= mask && b1 <= mask);
    }

    /// Resource accounting never exceeds the physical grid.
    #[test]
    fn resources_within_bounds(cfg in arb_config(2)) {
        let g = grid();
        let r = chipmunk_pisa::grid::resources_of(&g, &cfg);
        prop_assert!(r.stages_used <= g.stages);
        prop_assert!(r.max_alus_per_stage <= 2 * g.slots);
        prop_assert!(r.total_alus <= 2 * g.slots * g.stages);
    }
}
