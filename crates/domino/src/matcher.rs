//! Syntactic matching of stateful codelets against ALU templates.
//!
//! The matcher unifies a codelet's update expression (and, when the
//! pipeline needs a value out of the atom, its output expression) with the
//! stateful ALU template, binding holes along the way:
//!
//! * a [`chipmunk_pisa::AluExpr::ConstHole`] binds to an integer literal
//!   (which must fit the hole's bit width — Domino shares the hardware's
//!   limited immediate range),
//! * a `MuxHole` / `RelHole` binds to the index of the matching
//!   alternative, with **backtracking** over alternatives,
//! * a `Pkt(i)` slot binds to one *atomic* external operand (a field,
//!   constant, or stateless temporary computed in an earlier stage).
//!
//! Matching is deliberately **rigid**: operands are compared in written
//! order (no commutativity), no re-association, no algebraic reasoning.
//! The only two normalizations are ones Domino's own predication pass
//! performs: a constant-condition select collapses (`1 ? a : a → a`), and
//! a boolean-valued expression `B` may stand for `B ? 1 : 0` / `B != 0`.
//! Everything else is a mismatch — the "too expressive" rejection the
//! paper's Table 2 counts.

use chipmunk_lang::{BinOp, UnOp};
use chipmunk_pisa::{AluExpr, AluPred, RelOp, StatefulAluSpec};

use crate::codelet::Codelets;
use crate::tac::{Atom, Tac, TacKind};

/// A codelet expression: the inlined computation of an atom, with members
/// expanded and everything external left as atomic operands.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MExpr {
    /// The codelet's own state variable, pre-update.
    StateOld,
    /// The codelet's own state variable, post-update (output targets only).
    NewState,
    /// An external atomic operand.
    Ext(Atom),
    /// Unary operation.
    Un(UnOp, Box<MExpr>),
    /// Binary operation.
    Bin(BinOp, Box<MExpr>, Box<MExpr>),
    /// `cond != 0 ? then : else`.
    Ternary(Box<MExpr>, Box<MExpr>, Box<MExpr>),
}

/// Inline the computation of `atom` for state `s`: member temporaries are
/// expanded recursively; external values stay atomic.
pub fn build_mexpr(tac: &Tac, codelets: &Codelets, s: usize, atom: Atom) -> MExpr {
    match atom {
        Atom::StateOld(v) if v == s => MExpr::StateOld,
        Atom::Tmp(t) if codelets.member_of[t] == Some(s) => {
            let e = match &tac.ops[t] {
                TacKind::Un(op, a) => MExpr::Un(*op, Box::new(build_mexpr(tac, codelets, s, *a))),
                TacKind::Bin(op, a, b) => MExpr::Bin(
                    *op,
                    Box::new(build_mexpr(tac, codelets, s, *a)),
                    Box::new(build_mexpr(tac, codelets, s, *b)),
                ),
                TacKind::Ternary(c, a, b) => MExpr::Ternary(
                    Box::new(build_mexpr(tac, codelets, s, *c)),
                    Box::new(build_mexpr(tac, codelets, s, *a)),
                    Box::new(build_mexpr(tac, codelets, s, *b)),
                ),
            };
            normalize(e)
        }
        other => MExpr::Ext(other),
    }
}

/// Constant-condition select collapse (`1 ? a : b → a`, `0 ? a : b → b`).
fn normalize(e: MExpr) -> MExpr {
    if let MExpr::Ternary(c, t, f) = &e {
        if let MExpr::Ext(Atom::Const(v)) = **c {
            return if v != 0 { (**t).clone() } else { (**f).clone() };
        }
    }
    e
}

/// Redundant-select collapse: inside the arms of `c ? … : …`, any nested
/// select on the *same* condition resolves to the corresponding arm
/// (`c ? (c ? x : y) : z → c ? x : z`). Branch removal produces exactly
/// this pattern when one branch predicate guards several assignments; the
/// simplification is the dominator-based select folding any predicating
/// compiler performs.
pub fn simplify_selects(e: &MExpr) -> MExpr {
    fn go(e: &MExpr, assume: &mut Vec<(MExpr, bool)>) -> MExpr {
        match e {
            MExpr::Ternary(c, t, f) => {
                let c2 = go(c, assume);
                if let Some(&(_, val)) = assume.iter().find(|(a, _)| *a == c2) {
                    return if val { go(t, assume) } else { go(f, assume) };
                }
                assume.push((c2.clone(), true));
                let t2 = go(t, assume);
                assume.pop();
                assume.push((c2.clone(), false));
                let f2 = go(f, assume);
                assume.pop();
                if t2 == f2 {
                    t2
                } else {
                    MExpr::Ternary(Box::new(c2), Box::new(t2), Box::new(f2))
                }
            }
            MExpr::Un(op, x) => MExpr::Un(*op, Box::new(go(x, assume))),
            MExpr::Bin(op, a, b) => {
                MExpr::Bin(*op, Box::new(go(a, assume)), Box::new(go(b, assume)))
            }
            other => other.clone(),
        }
    }
    go(e, &mut Vec::new())
}

/// Hole and operand bindings accumulated during a match.
#[derive(Clone, Debug)]
pub struct MatchBindings {
    /// Per template hole: the bound value (selector index or immediate).
    pub hole_values: Vec<Option<u64>>,
    /// Per packet-operand slot: the bound external atom.
    pub pkt_operands: Vec<Option<Atom>>,
}

impl MatchBindings {
    fn new(spec: &StatefulAluSpec) -> Self {
        MatchBindings {
            hole_values: vec![None; spec.holes.len()],
            pkt_operands: vec![None; spec.num_pkt_operands],
        }
    }

    /// Bound hole values with unbound holes defaulting to zero.
    pub fn holes_or_zero(&self) -> Vec<u64> {
        self.hole_values.iter().map(|h| h.unwrap_or(0)).collect()
    }
}

/// Match a codelet against a template.
///
/// `update` is the inlined new-state expression; `output`, when present, is
/// the single value the rest of the pipeline reads out of this atom.
/// Returns the bindings on success.
pub fn match_codelet(
    spec: &StatefulAluSpec,
    update: &MExpr,
    output: Option<&MExpr>,
) -> Option<MatchBindings> {
    let mut b = MatchBindings::new(spec);
    if !match_expr(spec, &spec.update, update, &mut b) {
        return None;
    }
    if let Some(out) = output {
        if !match_expr(spec, &spec.output, out, &mut b) {
            return None;
        }
    }
    Some(b)
}

fn bind_hole(spec: &StatefulAluSpec, h: usize, v: u64, b: &mut MatchBindings) -> bool {
    let bits = spec.holes[h].1;
    if bits < 64 && v >= (1u64 << bits) {
        return false; // immediate does not fit the hardware's constant range
    }
    match b.hole_values[h] {
        Some(existing) => existing == v,
        None => {
            b.hole_values[h] = Some(v);
            true
        }
    }
}

fn bind_pkt(i: usize, a: Atom, b: &mut MatchBindings) -> bool {
    match b.pkt_operands[i] {
        Some(existing) => existing == a,
        None => {
            b.pkt_operands[i] = Some(a);
            true
        }
    }
}

fn match_expr(
    spec: &StatefulAluSpec,
    tpl: &AluExpr,
    target: &MExpr,
    b: &mut MatchBindings,
) -> bool {
    match tpl {
        AluExpr::State => *target == MExpr::StateOld,
        AluExpr::NewState => *target == MExpr::NewState,
        AluExpr::Lit(v) => *target == MExpr::Ext(Atom::Const(*v)),
        AluExpr::ConstHole(h) => match target {
            MExpr::Ext(Atom::Const(v)) => bind_hole(spec, *h, *v, b),
            _ => false,
        },
        AluExpr::Pkt(i) => match target {
            MExpr::Ext(a) if !matches!(a, Atom::Const(_)) => bind_pkt(*i, *a, b),
            _ => false,
        },
        AluExpr::Add(x, y) => match target {
            MExpr::Bin(BinOp::Add, tx, ty) => {
                let saved = b.clone();
                if match_expr(spec, x, tx, b) && match_expr(spec, y, ty, b) {
                    true
                } else {
                    *b = saved;
                    false
                }
            }
            _ => false,
        },
        AluExpr::Sub(x, y) => match target {
            MExpr::Bin(BinOp::Sub, tx, ty) => {
                let saved = b.clone();
                if match_expr(spec, x, tx, b) && match_expr(spec, y, ty, b) {
                    true
                } else {
                    *b = saved;
                    false
                }
            }
            _ => false,
        },
        AluExpr::MuxHole { hole, arms } => {
            if let Some(v) = b.hole_values[*hole] {
                let idx = (v as usize).min(arms.len() - 1);
                return match_expr(spec, &arms[idx], target, b);
            }
            for (i, arm) in arms.iter().enumerate() {
                let saved = b.clone();
                b.hole_values[*hole] = Some(i as u64);
                if match_expr(spec, arm, target, b) {
                    return true;
                }
                *b = saved;
            }
            false
        }
        AluExpr::IfElse { cond, then_, else_ } => {
            // Boolean-producing targets may stand for `B ? 1 : 0`.
            let normalized;
            let parts: Option<(&MExpr, &MExpr, &MExpr)> = match target {
                MExpr::Ternary(c, t, f) => Some((c, t, f)),
                MExpr::Bin(op, _, _) if op.is_predicate() => {
                    normalized = (
                        target.clone(),
                        MExpr::Ext(Atom::Const(1)),
                        MExpr::Ext(Atom::Const(0)),
                    );
                    Some((&normalized.0, &normalized.1, &normalized.2))
                }
                MExpr::Un(UnOp::Not, _) => {
                    normalized = (
                        target.clone(),
                        MExpr::Ext(Atom::Const(1)),
                        MExpr::Ext(Atom::Const(0)),
                    );
                    Some((&normalized.0, &normalized.1, &normalized.2))
                }
                _ => None,
            };
            if let Some((tc, tt, tf)) = parts {
                let saved = b.clone();
                if match_pred(spec, cond, tc, b)
                    && match_expr(spec, then_, tt, b)
                    && match_expr(spec, else_, tf, b)
                {
                    return true;
                }
                *b = saved;
            }
            // Unconditional fallback: if *both* branches can produce the
            // target under shared bindings, the value is independent of the
            // predicate and the predicate holes stay free.
            let saved = b.clone();
            if match_expr(spec, then_, target, b) && match_expr(spec, else_, target, b) {
                true
            } else {
                *b = saved;
                false
            }
        }
    }
}

fn rel_of(op: BinOp) -> Option<RelOp> {
    Some(match op {
        BinOp::Eq => RelOp::Eq,
        BinOp::Ne => RelOp::Ne,
        BinOp::Lt => RelOp::Lt,
        BinOp::Le => RelOp::Le,
        BinOp::Gt => RelOp::Gt,
        BinOp::Ge => RelOp::Ge,
        _ => return None,
    })
}

fn match_pred(
    spec: &StatefulAluSpec,
    tpl: &AluPred,
    target: &MExpr,
    b: &mut MatchBindings,
) -> bool {
    match tpl {
        AluPred::True => matches!(target, MExpr::Ext(Atom::Const(v)) if *v != 0),
        AluPred::FlagHole(h) => match target {
            MExpr::Ext(Atom::Const(v)) => bind_hole(spec, *h, (*v != 0) as u64, b),
            _ => false,
        },
        AluPred::Not(inner) => match target {
            MExpr::Un(UnOp::Not, x) => match_pred(spec, inner, x, b),
            _ => false,
        },
        AluPred::And(p, q) => match target {
            MExpr::Bin(BinOp::And, x, y) => {
                let saved = b.clone();
                if match_pred(spec, p, x, b) && match_pred(spec, q, y, b) {
                    true
                } else {
                    *b = saved;
                    false
                }
            }
            _ => false,
        },
        AluPred::Or(p, q) => match target {
            MExpr::Bin(BinOp::Or, x, y) => {
                let saved = b.clone();
                if match_pred(spec, p, x, b) && match_pred(spec, q, y, b) {
                    true
                } else {
                    *b = saved;
                    false
                }
            }
            _ => false,
        },
        AluPred::Rel { op, a, b: tb } => match target {
            MExpr::Bin(bop, x, y) if rel_of(*bop) == Some(*op) => {
                let saved = b.clone();
                if match_expr(spec, a, x, b) && match_expr(spec, tb, y, b) {
                    true
                } else {
                    *b = saved;
                    false
                }
            }
            _ => false,
        },
        AluPred::RelHole {
            hole,
            ops,
            a,
            b: tb,
        } => {
            // A bare boolean operand `B` stands for `B != 0`.
            let normalized;
            let (bop, tx, ty): (RelOp, &MExpr, &MExpr) = match target {
                MExpr::Bin(op2, x, y) => match rel_of(*op2) {
                    Some(r) => (r, x.as_ref(), y.as_ref()),
                    None => return false,
                },
                MExpr::Ext(a2) if !matches!(a2, Atom::Const(_)) => {
                    normalized = (target.clone(), MExpr::Ext(Atom::Const(0)));
                    (RelOp::Ne, &normalized.0, &normalized.1)
                }
                _ => return false,
            };
            let idx = match ops.iter().position(|&o| o == bop) {
                Some(i) => i,
                None => return false,
            };
            let saved = b.clone();
            if bind_hole(spec, *hole, idx as u64, b)
                && match_expr(spec, a, tx, b)
                && match_expr(spec, tb, ty, b)
            {
                true
            } else {
                *b = saved;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_pisa::stateful::library;

    fn ext_tmp(t: usize) -> MExpr {
        MExpr::Ext(Atom::Tmp(t))
    }

    fn cnst(v: u64) -> MExpr {
        MExpr::Ext(Atom::Const(v))
    }

    #[test]
    fn raw_matches_counter_increment() {
        // s = s + 2 matches raw's "state + const" arm.
        let spec = library::raw(3);
        let update = MExpr::Bin(BinOp::Add, Box::new(MExpr::StateOld), Box::new(cnst(2)));
        let b = match_codelet(&spec, &update, None).expect("matches");
        assert_eq!(b.hole_values[0], Some(2)); // upd_mode = state+const
        assert_eq!(b.hole_values[1], Some(2)); // upd_const = 2
    }

    #[test]
    fn raw_matches_write_packet() {
        let spec = library::raw(3);
        let update = ext_tmp(7);
        let b = match_codelet(&spec, &update, None).expect("matches");
        assert_eq!(b.hole_values[0], Some(1)); // pkt arm
        assert_eq!(b.pkt_operands[0], Some(Atom::Tmp(7)));
    }

    #[test]
    fn raw_rejects_commuted_add() {
        // 2 + s is semantically s + 2 but the matcher is order-rigid:
        // the template arm is Add(State, ConstHole).
        let spec = library::raw(3);
        let update = MExpr::Bin(BinOp::Add, Box::new(cnst(2)), Box::new(MExpr::StateOld));
        assert!(match_codelet(&spec, &update, None).is_none());
    }

    #[test]
    fn constant_beyond_imm_bits_rejected() {
        let spec = library::raw(2); // immediates are 2 bits: 0..=3
        let update = MExpr::Bin(BinOp::Add, Box::new(MExpr::StateOld), Box::new(cnst(9)));
        assert!(match_codelet(&spec, &update, None).is_none());
    }

    #[test]
    fn if_else_raw_matches_sampling() {
        // count = (count == 9) ? 0 : count + 1, output = (count == 9) ? 1 : 0.
        let spec = library::if_else_raw(4);
        let pred = |a: MExpr, b: MExpr| MExpr::Bin(BinOp::Eq, Box::new(a), Box::new(b));
        let update = MExpr::Ternary(
            Box::new(pred(MExpr::StateOld, cnst(9))),
            Box::new(cnst(0)),
            Box::new(MExpr::Bin(
                BinOp::Add,
                Box::new(MExpr::StateOld),
                Box::new(cnst(1)),
            )),
        );
        let output = MExpr::Ternary(
            Box::new(pred(MExpr::StateOld, cnst(9))),
            Box::new(cnst(1)),
            Box::new(cnst(0)),
        );
        let b = match_codelet(&spec, &update, Some(&output)).expect("sampling fits one atom");
        assert_eq!(b.hole_values[0], Some(0)); // rel = Eq
        assert_eq!(b.hole_values[3], Some(9)); // pred_const
        assert_eq!(b.hole_values[4], Some(5)); // upd1 = const arm
        assert_eq!(b.hole_values[5], Some(0)); // upd1_const
    }

    #[test]
    fn shared_pred_must_agree_between_update_and_output() {
        // Output uses a *different* comparison than the update: the shared
        // predicate holes conflict and the match fails.
        let spec = library::if_else_raw(4);
        let update = MExpr::Ternary(
            Box::new(MExpr::Bin(
                BinOp::Eq,
                Box::new(MExpr::StateOld),
                Box::new(cnst(9)),
            )),
            Box::new(cnst(0)),
            Box::new(MExpr::Bin(
                BinOp::Add,
                Box::new(MExpr::StateOld),
                Box::new(cnst(1)),
            )),
        );
        let output = MExpr::Ternary(
            Box::new(MExpr::Bin(
                BinOp::Lt,
                Box::new(MExpr::StateOld),
                Box::new(cnst(3)),
            )),
            Box::new(cnst(1)),
            Box::new(cnst(0)),
        );
        assert!(match_codelet(&spec, &update, Some(&output)).is_none());
    }

    #[test]
    fn bare_boolean_operand_normalizes_to_ne_zero() {
        // if (t7) s = pkt-op  — an externally computed condition.
        let spec = library::pred_raw(3);
        let update = MExpr::Ternary(
            Box::new(ext_tmp(7)),
            Box::new(ext_tmp(9)),
            Box::new(MExpr::StateOld),
        );
        let b = match_codelet(&spec, &update, None).expect("matches pred_raw");
        // rel hole = Ne (index 1 in [Eq, Ne, Lt, Ge]).
        assert_eq!(b.hole_values[0], Some(1));
        // pred_a mux chose the Pkt arm, pkt0 bound to t7.
        assert_eq!(b.pkt_operands[0], Some(Atom::Tmp(7)));
        assert_eq!(b.pkt_operands[1], Some(Atom::Tmp(9)));
    }

    #[test]
    fn boolean_update_normalizes_to_select() {
        // seen = 1 forever-style: s = (s == 0) ? 1 : 1? Use a predicate
        // directly as the stored value: s = (pkt0 > s)… can't (no Gt arm
        // producing value). Instead check the `B → B ? 1 : 0` path via
        // if_else_raw: s = (s == 3).
        let spec = library::if_else_raw(3);
        let update = MExpr::Bin(BinOp::Eq, Box::new(MExpr::StateOld), Box::new(cnst(3)));
        let b = match_codelet(&spec, &update, None).expect("normalizes");
        assert_eq!(b.hole_values[4], Some(5)); // then: const arm
        assert_eq!(b.hole_values[5], Some(1)); // const = 1
        assert_eq!(b.hole_values[6], Some(5)); // else: const arm
        assert_eq!(b.hole_values[7], Some(0)); // const = 0
    }

    #[test]
    fn new_state_output_matches() {
        // s = s + 1 with downstream reading the *new* value.
        let spec = library::raw(3);
        let update = MExpr::Bin(BinOp::Add, Box::new(MExpr::StateOld), Box::new(cnst(1)));
        let b = match_codelet(&spec, &update, Some(&MExpr::NewState)).expect("matches");
        assert_eq!(b.hole_values[2], Some(1)); // out_mode = NewState arm
    }

    #[test]
    fn nested_ifs_matches_two_level_updates() {
        // tokens: if A { if B { +3 } else { unchanged } }
        //         else { if C { -1 } else { unchanged } }
        let spec = library::nested_ifs(4);
        let pred = |op: BinOp, a: MExpr, b: MExpr| MExpr::Bin(op, Box::new(a), Box::new(b));
        let tern =
            |c: MExpr, t: MExpr, f: MExpr| MExpr::Ternary(Box::new(c), Box::new(t), Box::new(f));
        let update = tern(
            pred(BinOp::Eq, ext_tmp(1), cnst(1)),
            tern(
                pred(BinOp::Lt, MExpr::StateOld, cnst(12)),
                MExpr::Bin(BinOp::Add, Box::new(MExpr::StateOld), Box::new(cnst(3))),
                MExpr::StateOld,
            ),
            tern(
                pred(BinOp::Gt, MExpr::StateOld, cnst(0)),
                MExpr::Bin(BinOp::Sub, Box::new(MExpr::StateOld), Box::new(cnst(1))),
                MExpr::StateOld,
            ),
        );
        let b = match_codelet(&spec, &update, None).expect("two-level shape fits");
        // Three *independent* predicate groups were bound.
        assert_eq!(b.hole_values[0], Some(0)); // outer: Eq
        assert_eq!(b.hole_values[4], Some(2)); // inner-then: Lt
        assert_eq!(b.hole_values[8], Some(4)); // inner-else: Gt
    }

    #[test]
    fn nested_ifs_rejects_three_level_updates() {
        let spec = library::nested_ifs(4);
        let tern =
            |c: MExpr, t: MExpr, f: MExpr| MExpr::Ternary(Box::new(c), Box::new(t), Box::new(f));
        let p = |t: usize| MExpr::Bin(BinOp::Eq, Box::new(ext_tmp(t)), Box::new(cnst(1)));
        // Third nesting level inside the then-then leaf: the leaf mux has
        // no conditional arm.
        let update = tern(
            p(1),
            tern(p(2), tern(p(3), cnst(1), cnst(2)), MExpr::StateOld),
            MExpr::StateOld,
        );
        assert!(match_codelet(&spec, &update, None).is_none());
    }

    #[test]
    fn simplify_selects_collapses_repeated_conditions() {
        let c = MExpr::Bin(BinOp::Eq, Box::new(MExpr::StateOld), Box::new(cnst(9)));
        let inner = MExpr::Ternary(Box::new(c.clone()), Box::new(cnst(1)), Box::new(cnst(0)));
        let outer = MExpr::Ternary(Box::new(c.clone()), Box::new(inner), Box::new(cnst(7)));
        let simplified = simplify_selects(&outer);
        assert_eq!(
            simplified,
            MExpr::Ternary(Box::new(c), Box::new(cnst(1)), Box::new(cnst(7)))
        );
    }

    #[test]
    fn simplify_selects_merges_equal_arms() {
        let c = MExpr::Ext(Atom::Tmp(3));
        let t = MExpr::Ternary(Box::new(c), Box::new(cnst(5)), Box::new(cnst(5)));
        assert_eq!(simplify_selects(&t), cnst(5));
    }

    #[test]
    fn pkt_slots_are_limited() {
        // raw has one packet operand; an update needing two externals fails.
        let spec = library::raw(3);
        let update = MExpr::Bin(BinOp::Add, Box::new(ext_tmp(1)), Box::new(ext_tmp(2)));
        assert!(match_codelet(&spec, &update, None).is_none());
    }
}
