//! Branch removal and flattening to three-address code.
//!
//! After this pass the program is a list of SSA temporaries, each computed
//! by exactly one operation over atomic operands. Control flow is gone:
//! assignments that were conditional have become `guard ? value : old`
//! select operations (if-conversion, Domino's "branch removal" pass).
//!
//! State variables are *not* SSA-renamed. A read before any write yields
//! the atom [`Atom::StateOld`]; writes are recorded per state variable in
//! program order, and reads after a write see the written temporary.

use chipmunk_lang::{BinOp, Expr, LValue, Program, Stmt, UnOp};

/// An atomic operand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// Incoming packet field `i`.
    Field(usize),
    /// The value of state variable `s` before this packet's update.
    StateOld(usize),
    /// SSA temporary `t`.
    Tmp(usize),
    /// Integer constant.
    Const(u64),
}

/// One three-address operation; its destination is the temporary with the
/// operation's index in [`Tac::ops`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TacKind {
    /// Unary operation.
    Un(UnOp, Atom),
    /// Binary operation.
    Bin(BinOp, Atom, Atom),
    /// `cond != 0 ? then : else`.
    Ternary(Atom, Atom, Atom),
}

impl TacKind {
    /// The operands read by this operation.
    pub fn operands(&self) -> Vec<Atom> {
        match self {
            TacKind::Un(_, a) => vec![*a],
            TacKind::Bin(_, a, b) => vec![*a, *b],
            TacKind::Ternary(c, t, f) => vec![*c, *t, *f],
        }
    }
}

/// The flattened program.
#[derive(Clone, Debug)]
pub struct Tac {
    /// Operations; `ops[t]` computes temporary `t`.
    pub ops: Vec<TacKind>,
    /// Final value of each packet field.
    pub field_out: Vec<Atom>,
    /// Temporaries written to each state variable, in program order
    /// (empty = never written).
    pub state_writes: Vec<Vec<usize>>,
    /// Number of packet fields.
    pub num_fields: usize,
    /// Number of state variables.
    pub num_states: usize,
}

impl Tac {
    /// The final value of state variable `s`: the last written temporary,
    /// or its old value if never written.
    pub fn state_out(&self, s: usize) -> Atom {
        match self.state_writes[s].last() {
            Some(&t) => Atom::Tmp(t),
            None => Atom::StateOld(s),
        }
    }
}

/// Lower a (hash-free) program to TAC with branch removal.
///
/// # Errors
/// If the program still contains `hash(...)` calls — run
/// [`chipmunk_lang::passes::eliminate_hashes`] first. Rejected up front
/// as a typed error because loaded files reach this entry point directly.
pub fn lower(prog: &Program) -> Result<Tac, String> {
    if prog.stmts().iter().any(|s| s.contains_hash()) {
        return Err(
            "program contains hash(...); run eliminate_hashes before Domino lowering".to_string(),
        );
    }
    let mut lw = Lowerer {
        ops: Vec::new(),
        fields: (0..prog.field_names().len()).map(Atom::Field).collect(),
        states: (0..prog.state_names().len()).map(Atom::StateOld).collect(),
        locals: vec![Atom::Const(0); prog.local_names().len()],
        state_writes: vec![Vec::new(); prog.state_names().len()],
    };
    lw.stmts(prog.stmts(), &[]);
    Ok(Tac {
        ops: lw.ops,
        field_out: lw.fields,
        state_writes: lw.state_writes,
        num_fields: prog.field_names().len(),
        num_states: prog.state_names().len(),
    })
}

struct Lowerer {
    ops: Vec<TacKind>,
    fields: Vec<Atom>,
    states: Vec<Atom>,
    locals: Vec<Atom>,
    state_writes: Vec<Vec<usize>>,
}

impl Lowerer {
    fn emit(&mut self, kind: TacKind) -> Atom {
        // Local value numbering: reuse an identical existing op. This keeps
        // shared subexpressions (like a branch condition used by several
        // guarded assignments) as one temporary.
        if let Some(i) = self.ops.iter().position(|k| *k == kind) {
            return Atom::Tmp(i);
        }
        self.ops.push(kind);
        Atom::Tmp(self.ops.len() - 1)
    }

    fn read(&self, lv: chipmunk_lang::ast::VarRef) -> Atom {
        use chipmunk_lang::ast::VarRef;
        match lv {
            VarRef::Field(i) => self.fields[i],
            VarRef::State(i) => self.states[i],
            VarRef::Local(i) => self.locals[i],
        }
    }

    fn write(&mut self, lv: LValue, a: Atom) {
        match lv {
            LValue::Field(i) => self.fields[i] = a,
            LValue::Local(i) => self.locals[i] = a,
            LValue::State(i) => {
                let t = match a {
                    Atom::Tmp(t) => t,
                    // A write of a bare field/constant still needs an op to
                    // anchor the codelet on; `1 ? a : a` is a pass-through
                    // the matcher's constant-select normalization removes.
                    other => {
                        let k = TacKind::Ternary(Atom::Const(1), other, other);
                        match self.emit(k) {
                            Atom::Tmp(t) => t,
                            _ => unreachable!(),
                        }
                    }
                };
                self.state_writes[i].push(t);
                self.states[i] = Atom::Tmp(t);
            }
        }
    }

    fn stmts(&mut self, stmts: &[Stmt], guards: &[(Atom, bool)]) {
        for s in stmts {
            match s {
                Stmt::Assign(lv, e) => {
                    let mut v = self.expr(e);
                    // Innermost guard first: each level wraps the value in a
                    // polarity-directed select against the *pre-assignment*
                    // version. No negations or conjunctions are ever
                    // materialized, so nested control flow lowers to nested
                    // selects — the shape atom templates expect.
                    let old = self.read(lv.as_ref());
                    for &(g, pol) in guards.iter().rev() {
                        v = if pol {
                            self.emit(TacKind::Ternary(g, v, old))
                        } else {
                            self.emit(TacKind::Ternary(g, old, v))
                        };
                    }
                    self.write(*lv, v);
                }
                Stmt::If(c, t, f) => {
                    let cv = self.expr(c);
                    let mut gt = guards.to_vec();
                    gt.push((cv, true));
                    self.stmts(t, &gt);
                    let mut gf = guards.to_vec();
                    gf.push((cv, false));
                    self.stmts(f, &gf);
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Atom {
        match e {
            Expr::Int(v) => Atom::Const(*v),
            Expr::Var(r) => self.read(*r),
            // `lower` rejects hash-bearing programs up front with a typed
            // error, so this arm is invariant-unreachable.
            Expr::Hash(_) => unreachable!("lower() rejects hash-bearing programs before this"),
            Expr::Unary(op, x) => {
                let xa = self.expr(x);
                self.emit(TacKind::Un(*op, xa))
            }
            Expr::Binary(op, a, b) => {
                let aa = self.expr(a);
                let ba = self.expr(b);
                self.emit(TacKind::Bin(*op, aa, ba))
            }
            Expr::Ternary(c, t, f) => {
                let ca = self.expr(c);
                let ta = self.expr(t);
                let fa = self.expr(f);
                self.emit(TacKind::Ternary(ca, ta, fa))
            }
        }
    }
}

/// Reference evaluation of a full TAC program (used by tests and by the
/// executor to cross-check member inlining).
pub fn eval_tac(tac: &Tac, fields: &[u64], states: &[u64], mask: u64) -> (Vec<u64>, Vec<u64>) {
    let mut tmp = vec![0u64; tac.ops.len()];
    let atom = |a: Atom, tmp: &[u64]| -> u64 {
        match a {
            Atom::Field(i) => fields[i] & mask,
            Atom::StateOld(s) => states[s] & mask,
            Atom::Tmp(t) => tmp[t],
            Atom::Const(v) => v & mask,
        }
    };
    for (i, op) in tac.ops.iter().enumerate() {
        tmp[i] = match op {
            TacKind::Un(UnOp::Not, a) => (atom(*a, &tmp) == 0) as u64,
            TacKind::Un(UnOp::Neg, a) => atom(*a, &tmp).wrapping_neg() & mask,
            TacKind::Bin(op, a, b) => {
                chipmunk_lang::eval_binop(*op, atom(*a, &tmp), atom(*b, &tmp), mask)
            }
            TacKind::Ternary(c, t, f) => {
                if atom(*c, &tmp) != 0 {
                    atom(*t, &tmp)
                } else {
                    atom(*f, &tmp)
                }
            }
        };
    }
    let fouts = tac.field_out.iter().map(|&a| atom(a, &tmp)).collect();
    let souts = (0..tac.num_states)
        .map(|s| atom(tac.state_out(s), &tmp))
        .collect();
    (fouts, souts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_lang::{parse, Interpreter, PacketState};

    #[test]
    fn hash_bearing_program_is_a_typed_error_not_a_panic() {
        // A hash-bearing file fed straight to `lower` (without the
        // eliminate_hashes preprocessing `compile` does) must come back
        // as Err, never unwind.
        let prog = parse("pkt.x = hash(pkt.a, pkt.b);").unwrap();
        let err = lower(&prog).unwrap_err();
        assert!(err.contains("eliminate_hashes"), "err: {err}");
        // The sanctioned path still works: eliminating hashes first makes
        // the same program lowerable.
        let mut prog = parse("pkt.x = hash(pkt.a, pkt.b);").unwrap();
        chipmunk_lang::passes::eliminate_hashes(&mut prog);
        assert!(lower(&prog).is_ok());
    }

    fn check_semantics(src: &str, width: u8) {
        let prog = parse(src).unwrap();
        let tac = lower(&prog).unwrap();
        let interp = Interpreter::new(&prog, width);
        let mask = (1u64 << width) - 1;
        let nf = prog.field_names().len();
        let ns = prog.state_names().len();
        let mut seed = 7u64;
        for _ in 0..300 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let fields: Vec<u64> = (0..nf).map(|k| (seed >> (5 * k)) & mask).collect();
            let states: Vec<u64> = (0..ns).map(|k| (seed >> (7 * k + 3)) & mask).collect();
            let want = interp.exec(&PacketState {
                fields: fields.clone(),
                states: states.clone(),
            });
            let (fo, so) = eval_tac(&tac, &fields, &states, mask);
            assert_eq!(fo, want.fields, "fields for {src}");
            assert_eq!(so, want.states, "states for {src}");
        }
    }

    #[test]
    fn straightline_flattens() {
        let prog = parse("pkt.y = pkt.x + 1;").unwrap();
        let tac = lower(&prog).unwrap();
        assert_eq!(tac.ops.len(), 1);
        assert_eq!(
            tac.ops[0],
            TacKind::Bin(BinOp::Add, Atom::Field(1), Atom::Const(1))
        );
        assert_eq!(tac.field_out[0], Atom::Tmp(0)); // y
        assert_eq!(tac.field_out[1], Atom::Field(1)); // x untouched
    }

    #[test]
    fn branch_removal_guards_assignments() {
        check_semantics(
            "state s; if (pkt.a > 2) { s = s + 1; pkt.b = 1; } else { pkt.b = 0; }",
            5,
        );
    }

    #[test]
    fn nested_ifs_conjoin_guards() {
        check_semantics(
            "state s;
             if (pkt.a) { if (pkt.b) { s = 1; } else { s = 2; } } else { s = 3; }",
            4,
        );
    }

    #[test]
    fn sequential_field_updates() {
        check_semantics(
            "pkt.x = pkt.x + 1; pkt.y = pkt.x * 1; pkt.x = pkt.y + pkt.x;",
            5,
        );
    }

    #[test]
    fn state_read_after_write_sees_new_value() {
        check_semantics("state s; s = s + 1; pkt.out = s;", 5);
    }

    #[test]
    fn multiple_state_writes_keep_order() {
        check_semantics(
            "state s; s = s + 1; if (pkt.a == 3) { s = 0; } pkt.out = s;",
            4,
        );
    }

    #[test]
    fn value_numbering_shares_condition() {
        let prog =
            parse("state s; if (s == 3) { pkt.a = 1; pkt.b = 2; } else { pkt.a = 0; pkt.b = 0; }")
                .unwrap();
        let tac = lower(&prog).unwrap();
        // The comparison s == 3 must appear exactly once.
        let eqs = tac
            .ops
            .iter()
            .filter(|k| matches!(k, TacKind::Bin(BinOp::Eq, _, _)))
            .count();
        assert_eq!(eqs, 1);
    }

    #[test]
    fn ternary_and_logic_semantics() {
        check_semantics(
            "pkt.m = pkt.a > pkt.b ? pkt.a : pkt.b; pkt.f = pkt.a == 1 && pkt.b != 2;",
            4,
        );
    }

    #[test]
    fn state_write_of_plain_field_gets_anchor_op() {
        let prog = parse("state s; s = pkt.x;").unwrap();
        let tac = lower(&prog).unwrap();
        assert_eq!(tac.state_writes[0].len(), 1);
        check_semantics("state s; s = pkt.x;", 4);
    }
}
