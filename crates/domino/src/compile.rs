//! The Domino compilation driver.
//!
//! Orchestrates the classical pipeline — preprocess, lower, partition,
//! match, map, schedule — and produces either a scheduled, executable
//! pipeline ([`DominoOutput`]) or an all-or-nothing rejection
//! ([`DominoError`]), mirroring the behaviour the paper measures.

use std::collections::HashMap;

use chipmunk_lang::{passes, BinOp, PacketState, Program, UnOp};
use chipmunk_pisa::{ResourceUsage, StatefulAluSpec, StatelessAluSpec, StatelessOp};

use crate::codelet::{partition, Codelets};
use crate::matcher::{build_mexpr, match_codelet, simplify_selects, MExpr, MatchBindings};
use crate::tac::{lower, Atom, Tac, TacKind};

/// Options for the baseline compiler. Both compilers target the *same*
/// hardware description, so the comparison in the paper's evaluation is
/// apples to apples.
#[derive(Clone, Debug)]
pub struct DominoOptions {
    /// Semantic bit width (constants are folded at this width).
    pub width: u8,
    /// Stateless ALU description.
    pub stateless: StatelessAluSpec,
    /// Stateful ALU template.
    pub stateful: StatefulAluSpec,
}

impl DominoOptions {
    /// Paper-like defaults for a given stateful template.
    pub fn new(stateful: StatefulAluSpec) -> Self {
        DominoOptions {
            width: 10,
            stateless: StatelessAluSpec::banzai(4),
            stateful,
        }
    }
}

/// Why the baseline rejected a program (all-or-nothing compilation, §1 of
/// the paper).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DominoError {
    /// A stateful codelet does not match the atom template syntactically —
    /// the compiler concludes the program is "too expressive" for the
    /// hardware (the dominant rejection in Table 2).
    TooExpressive(String),
    /// A stateless operation has no encoding on the stateless ALU.
    UnsupportedOp(String),
    /// A constant exceeds the immediate-operand range.
    ConstantTooLarge(u64),
    /// The pipeline needs more than one distinct value out of one atom.
    MultipleAtomOutputs(String),
    /// Two state variables update each other cyclically.
    CoupledStates(String),
}

impl std::fmt::Display for DominoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DominoError::TooExpressive(m) => write!(f, "too expressive for the atom: {m}"),
            DominoError::UnsupportedOp(m) => write!(f, "unsupported stateless operation: {m}"),
            DominoError::ConstantTooLarge(v) => write!(f, "constant {v} exceeds immediate range"),
            DominoError::MultipleAtomOutputs(m) => write!(f, "atom needs multiple outputs: {m}"),
            DominoError::CoupledStates(m) => write!(f, "coupled state variables: {m}"),
        }
    }
}

impl std::error::Error for DominoError {}

/// One scheduled node of the pipeline DAG.
#[derive(Clone, Debug)]
enum Node {
    /// External (stateless) TAC operation.
    Op(usize),
    /// The atom of state variable `s`.
    Atom(usize),
}

/// A compiled, scheduled, executable Domino pipeline.
#[derive(Clone, Debug)]
pub struct DominoOutput {
    tac: Tac,
    codelets: Codelets,
    bindings: Vec<Option<MatchBindings>>,
    /// alias[t] = the atom a trivial op resolves to (copy elimination).
    alias: Vec<Option<Atom>>,
    nodes: Vec<Node>,
    /// start stage and depth per node (same indexing as `nodes`).
    schedule: Vec<(usize, usize)>,
    /// ALU count per node (exposed through [`DominoOutput::alu_histogram`]).
    alus: Vec<usize>,
    stateful_spec: StatefulAluSpec,
    width: u8,
    /// Resource usage (the paper's Figure 5 metrics).
    pub resources: ResourceUsage,
}

/// Compile a packet transaction with the classical Domino pipeline.
pub fn compile(prog: &Program, opts: &DominoOptions) -> Result<DominoOutput, DominoError> {
    let mut sp = chipmunk_trace::span!("domino.compile", atom = opts.stateful.name.as_str());
    // Preprocess: hashes become metadata fields, constants fold at width.
    let mut prog = prog.clone();
    if prog.stmts().iter().any(|s| s.contains_hash()) {
        passes::eliminate_hashes(&mut prog);
    }
    passes::const_fold(&mut prog, opts.width);

    let tac = lower(&prog).map_err(DominoError::UnsupportedOp)?;
    chipmunk_trace::event!("domino.lower", ops = tac.ops.len());
    let mut codelets = partition(&tac).map_err(DominoError::CoupledStates)?;
    chipmunk_trace::event!("domino.partition", states = tac.num_states);

    // --- Copy elimination: trivial selects alias to their operand.
    let mut alias: Vec<Option<Atom>> = vec![None; tac.ops.len()];
    for (t, op) in tac.ops.iter().enumerate() {
        if codelets.member_of[t].is_some() {
            continue;
        }
        if let TacKind::Ternary(c, a, b) = op {
            let chosen = match c {
                Atom::Const(v) if *v != 0 => Some(*a),
                Atom::Const(_) => Some(*b),
                _ if a == b => Some(*a),
                _ => None,
            };
            alias[t] = chosen;
        }
    }
    let alias_snapshot = alias.clone();
    let resolve = move |mut a: Atom| -> Atom {
        while let Atom::Tmp(t) = a {
            match alias_snapshot[t] {
                Some(next) => a = next,
                None => break,
            }
        }
        a
    };

    // --- Usage analysis with absorption: when an atom would need to
    // expose more than one value, pull the reading operations *into* the
    // atom and recompute; if no progress is possible the program needs a
    // multi-output atom and is rejected.
    let num_states = tac.num_states;
    let mut exposures: Vec<Vec<MExpr>>;
    loop {
        exposures = compute_exposures(&tac, &codelets, &alias, &resolve);
        let multi: Vec<usize> = (0..num_states)
            .filter(|&s| exposures[s].len() > 1)
            .collect();
        if multi.is_empty() {
            break;
        }
        let mut changed = false;
        for (t, op) in tac.ops.iter().enumerate() {
            if codelets.member_of[t].is_some() || alias[t].is_some() {
                continue;
            }
            let read_states: Vec<usize> = op
                .operands()
                .into_iter()
                .map(&resolve)
                .filter_map(|a| match a {
                    Atom::StateOld(s) => Some(s),
                    Atom::Tmp(x) => codelets.member_of[x],
                    _ => None,
                })
                .collect();
            let targets: Vec<usize> = read_states
                .iter()
                .copied()
                .filter(|s| multi.contains(s))
                .collect();
            // Absorb only when the op touches exactly one atom's values.
            if let [s] = targets.as_slice() {
                let s = *s;
                if read_states.iter().all(|&x| x == s) {
                    codelets.member_of[t] = Some(s);
                    codelets.members[s].push(t);
                    changed = true;
                }
            }
        }
        if !changed {
            let s = *(0..num_states)
                .find(|&s| exposures[s].len() > 1)
                .get_or_insert(0);
            return Err(DominoError::MultipleAtomOutputs(format!(
                "state {s} must expose {} distinct values; the atom has one output wire",
                exposures[s].len()
            )));
        }
    }

    chipmunk_trace::event!(
        "domino.absorb",
        absorbed = codelets.member_of.iter().filter(|m| m.is_some()).count(),
    );
    // --- Improvement phase: Banzai atoms compute packet outputs inside
    // their branches (e.g. sampling's `pkt.sample` assignment lives in the
    // same atom as the counter update). Greedily absorb each atom's
    // readers; keep the enlarged codelet only if it still matches the
    // template with a single exposure, otherwise revert — the reader then
    // consumes the atom's output through a stateless ALU instead.
    for s in 0..num_states {
        if tac.state_writes[s].is_empty() && exposures[s].is_empty() {
            continue;
        }
        let saved = codelets.clone();
        loop {
            let mut changed = false;
            for (t, op) in tac.ops.iter().enumerate() {
                if codelets.member_of[t].is_some() || alias[t].is_some() {
                    continue;
                }
                let mut reads_s = false;
                let mut reads_other = false;
                for a in op.operands().into_iter().map(&resolve) {
                    match a {
                        Atom::StateOld(v) => {
                            if v == s {
                                reads_s = true;
                            } else {
                                reads_other = true;
                            }
                        }
                        Atom::Tmp(x) => match codelets.member_of[x] {
                            Some(v) if v == s => reads_s = true,
                            Some(_) => reads_other = true,
                            None => {}
                        },
                        _ => {}
                    }
                }
                if reads_s && !reads_other {
                    codelets.member_of[t] = Some(s);
                    codelets.members[s].push(t);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let exp = compute_exposures(&tac, &codelets, &alias, &resolve);
        let fits = exp[s].len() <= 1 && {
            let update = resolve_exts(
                &simplify_selects(&build_mexpr(&tac, &codelets, s, tac.state_out(s))),
                &resolve,
            );
            let out = exp[s].first().map(|e| resolve_exts(e, &resolve));
            match_codelet(&opts.stateful, &update, out.as_ref()).is_some()
        };
        if fits {
            exposures = exp;
        } else {
            codelets = saved;
        }
    }

    // --- Match each written/read state against the atom template.
    let mut bindings: Vec<Option<MatchBindings>> = vec![None; num_states];
    for s in 0..num_states {
        let written = !tac.state_writes[s].is_empty();
        let read = !exposures[s].is_empty();
        if !written && !read {
            continue;
        }
        debug_assert!(exposures[s].len() <= 1);
        let update = resolve_exts(
            &simplify_selects(&build_mexpr(&tac, &codelets, s, tac.state_out(s))),
            &resolve,
        );
        let output = exposures[s].first().map(|e| resolve_exts(e, &resolve));
        let output = output.as_ref();
        match match_codelet(&opts.stateful, &update, output) {
            Some(b) => bindings[s] = Some(b),
            None => {
                return Err(DominoError::TooExpressive(format!(
                    "state {s}: codelet does not fit the `{}` atom",
                    opts.stateful.name
                )))
            }
        }
    }

    // --- Dead-code elimination: only operations the outputs (or the
    // atoms) transitively need occupy hardware.
    let mut live = vec![false; tac.ops.len()];
    let mut work: Vec<Atom> = tac.field_out.iter().map(|&a| resolve(a)).collect();
    for s in 0..num_states {
        for &m in &codelets.members[s] {
            work.extend(tac.ops[m].operands().into_iter().map(&resolve));
        }
        // The value the atom writes may be computed externally even when
        // the codelet has members (e.g. `expected = pkt.seq + 1` next to an
        // absorbed output computation).
        if let Some(&last) = tac.state_writes[s].last() {
            work.push(resolve(Atom::Tmp(last)));
        }
    }
    while let Some(a) = work.pop() {
        if let Atom::Tmp(t) = a {
            if codelets.member_of[t].is_none() && !live[t] {
                live[t] = true;
                work.extend(tac.ops[t].operands().into_iter().map(&resolve));
            }
        }
    }

    chipmunk_trace::event!("domino.dce", live = live.iter().filter(|&&l| l).count());
    // --- Map external stateless operations onto the stateless ALU.
    let mut nodes = Vec::new();
    let mut alus = Vec::new();
    let mut depths = Vec::new();
    let mut node_of_tmp: HashMap<usize, usize> = HashMap::new();
    let mut node_of_atom: HashMap<usize, usize> = HashMap::new();
    for (t, op) in tac.ops.iter().enumerate() {
        if codelets.member_of[t].is_some() || alias[t].is_some() || !live[t] {
            continue;
        }
        let mapped = map_stateless(&opts.stateless, op)?;
        node_of_tmp.insert(t, nodes.len());
        nodes.push(Node::Op(t));
        alus.push(mapped.0);
        depths.push(mapped.1);
    }
    for (s, b) in bindings.iter().enumerate() {
        if b.is_some() {
            node_of_atom.insert(s, nodes.len());
            nodes.push(Node::Atom(s));
            alus.push(1);
            depths.push(1);
        }
    }

    // --- Dependency edges and longest-path scheduling.
    let dep_of_atom_read = |a: Atom| -> Option<usize> {
        match a {
            Atom::Tmp(t) => match codelets.member_of[t] {
                Some(s) => node_of_atom.get(&s).copied(),
                None => node_of_tmp.get(&t).copied(),
            },
            Atom::StateOld(s) => node_of_atom.get(&s).copied(),
            _ => None,
        }
    };
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        match n {
            Node::Op(t) => {
                for a in tac.ops[*t].operands() {
                    if let Some(d) = dep_of_atom_read(resolve(a)) {
                        if d != i {
                            deps[i].push(d);
                        }
                    }
                }
            }
            Node::Atom(s) => {
                for &m in &codelets.members[*s] {
                    for a in tac.ops[m].operands() {
                        let a = resolve(a);
                        // Skip intra-codelet references.
                        let internal = matches!(a, Atom::StateOld(v) if v == *s)
                            || matches!(a, Atom::Tmp(t) if codelets.member_of[t] == Some(*s));
                        if internal {
                            continue;
                        }
                        if let Some(d) = dep_of_atom_read(a) {
                            if d != i {
                                deps[i].push(d);
                            }
                        }
                    }
                }
                // The atom also depends on the producer of its written
                // value when that value is computed outside the codelet.
                if let Some(&last) = tac.state_writes[*s].last() {
                    if let Some(d) = dep_of_atom_read(resolve(Atom::Tmp(last))) {
                        if d != i {
                            deps[i].push(d);
                        }
                    }
                }
            }
        }
    }
    for d in deps.iter_mut() {
        d.sort_unstable();
        d.dedup();
    }

    // Longest path (the DAG is acyclic by construction of codelets).
    let order = topo_order(&deps);
    let mut start = vec![0usize; nodes.len()];
    for &i in &order {
        for &d in &deps[i] {
            start[i] = start[i].max(start[d] + depths[d]);
        }
    }
    let schedule: Vec<(usize, usize)> = (0..nodes.len()).map(|i| (start[i], depths[i])).collect();

    // Resource usage.
    let total_stages = schedule.iter().map(|&(s, d)| s + d).max().unwrap_or(0);
    let mut usage = vec![0usize; total_stages];
    for (i, &(s, d)) in schedule.iter().enumerate() {
        let base = alus[i] / d.max(1);
        let rem = alus[i] % d.max(1);
        for k in 0..d {
            usage[s + k] += base + usize::from(k < rem);
        }
    }
    let resources = ResourceUsage {
        stages_used: total_stages,
        max_alus_per_stage: usage.iter().copied().max().unwrap_or(0),
        total_alus: alus.iter().sum(),
    };

    if chipmunk_trace::enabled() {
        sp.record("stages", resources.stages_used as u64);
        sp.record("alus", resources.total_alus as u64);
    }
    Ok(DominoOutput {
        tac,
        codelets,
        bindings,
        alias,
        nodes,
        schedule,
        alus,
        stateful_spec: opts.stateful.clone(),
        width: opts.width,
        resources,
    })
}

/// Replace external atoms by their alias-resolved form (so a pass-through
/// temporary matches as the constant or field it forwards).
fn resolve_exts(e: &MExpr, resolve: &dyn Fn(Atom) -> Atom) -> MExpr {
    match e {
        MExpr::Ext(a) => MExpr::Ext(resolve(*a)),
        MExpr::Un(op, x) => MExpr::Un(*op, Box::new(resolve_exts(x, resolve))),
        MExpr::Bin(op, a, b) => MExpr::Bin(
            *op,
            Box::new(resolve_exts(a, resolve)),
            Box::new(resolve_exts(b, resolve)),
        ),
        MExpr::Ternary(c, t, f) => MExpr::Ternary(
            Box::new(resolve_exts(c, resolve)),
            Box::new(resolve_exts(t, resolve)),
            Box::new(resolve_exts(f, resolve)),
        ),
        other => other.clone(),
    }
}

/// Compute, per state variable, the distinct values the rest of the
/// pipeline reads out of its atom.
fn compute_exposures(
    tac: &Tac,
    codelets: &Codelets,
    alias: &[Option<Atom>],
    resolve: &dyn Fn(Atom) -> Atom,
) -> Vec<Vec<MExpr>> {
    let num_states = tac.num_states;
    let mut exposures: Vec<Vec<MExpr>> = vec![Vec::new(); num_states];
    let expose = |exposures: &mut Vec<Vec<MExpr>>, s: usize, e: MExpr| {
        if !exposures[s].contains(&e) {
            exposures[s].push(e);
        }
    };
    let exposure_of = |s: usize, a: Atom| -> MExpr {
        match a {
            Atom::StateOld(_) => MExpr::StateOld,
            Atom::Tmp(t) => {
                if Some(&t) == tac.state_writes[s].last() {
                    MExpr::NewState
                } else {
                    simplify_selects(&build_mexpr(tac, codelets, s, Atom::Tmp(t)))
                }
            }
            _ => unreachable!("only state reads are exposures"),
        }
    };
    let classify = |a: Atom| -> Option<usize> {
        match a {
            Atom::StateOld(s) => Some(s),
            Atom::Tmp(t) => codelets.member_of[t],
            _ => None,
        }
    };
    // Reads by external ops.
    for (t, op) in tac.ops.iter().enumerate() {
        if codelets.member_of[t].is_some() || alias[t].is_some() {
            continue;
        }
        for a in op.operands() {
            let a = resolve(a);
            if let Some(s) = classify(a) {
                expose(&mut exposures, s, exposure_of(s, a));
            }
        }
    }
    // Reads by final field values.
    for &a in &tac.field_out {
        let a = resolve(a);
        if let Some(s) = classify(a) {
            expose(&mut exposures, s, exposure_of(s, a));
        }
    }
    // Reads by *other* atoms (their member ops' external operands).
    for s in 0..num_states {
        for &m in &codelets.members[s] {
            for a in tac.ops[m].operands() {
                let a = resolve(a);
                match a {
                    Atom::Tmp(t)
                        if codelets.member_of[t].is_some() && codelets.member_of[t] != Some(s) =>
                    {
                        let v = codelets.member_of[t].expect("checked");
                        expose(&mut exposures, v, exposure_of(v, a));
                    }
                    Atom::StateOld(v) if v != s => {
                        expose(&mut exposures, v, MExpr::StateOld);
                    }
                    _ => {}
                }
            }
        }
    }
    exposures
}

/// Kahn topological order.
fn topo_order(deps: &[Vec<usize>]) -> Vec<usize> {
    let n = deps.len();
    let mut indeg = vec![0usize; n];
    let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ds) in deps.iter().enumerate() {
        indeg[i] = ds.len();
        for &d in ds {
            rdeps[d].push(i);
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(i);
        for &r in &rdeps[i] {
            indeg[r] -= 1;
            if indeg[r] == 0 {
                queue.push(r);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "codelet DAG must be acyclic");
    order
}

/// Encode one TAC operation as stateless ALU instructions: `(alus, depth)`.
fn map_stateless(spec: &StatelessAluSpec, op: &TacKind) -> Result<(usize, usize), DominoError> {
    let have = |o: StatelessOp| spec.ops.contains(&o);
    let need = |o: StatelessOp| -> Result<(), DominoError> {
        if have(o) {
            Ok(())
        } else {
            Err(DominoError::UnsupportedOp(format!("{o:?} not available")))
        }
    };
    let imm_max = (1u64 << spec.imm_bits) - 1;
    let fits = |v: u64| -> Result<(), DominoError> {
        if v <= imm_max {
            Ok(())
        } else {
            Err(DominoError::ConstantTooLarge(v))
        }
    };
    let is_const = |a: &Atom| matches!(a, Atom::Const(_));
    let const_of = |a: &Atom| match a {
        Atom::Const(v) => *v,
        _ => unreachable!(),
    };

    match op {
        TacKind::Un(UnOp::Not, _) => {
            need(StatelessOp::LNot)?;
            Ok((1, 1))
        }
        TacKind::Un(UnOp::Neg, _) => {
            // 0 - x: materialize the zero, then subtract.
            need(StatelessOp::ConstImm)?;
            need(StatelessOp::Sub)?;
            Ok((2, 2))
        }
        TacKind::Bin(bop, a, b) => {
            use BinOp::*;
            match bop {
                Mul | Div | Rem => Err(DominoError::UnsupportedOp(format!(
                    "{} has no stateless-ALU encoding",
                    bop.symbol()
                ))),
                _ => {
                    // Immediate forms, when one side is constant.
                    let imm_form = |v: u64| -> Option<StatelessOp> {
                        let o = match bop {
                            Add => StatelessOp::AddImm,
                            Sub => StatelessOp::SubImm,
                            Eq => StatelessOp::EqImm,
                            Ne => StatelessOp::NeImm,
                            Lt => StatelessOp::LtImm,
                            Le => StatelessOp::LeImm,
                            Gt => StatelessOp::GtImm,
                            Ge => StatelessOp::GeImm,
                            _ => return None,
                        };
                        let _ = v;
                        have(o).then_some(o)
                    };
                    let plain = match bop {
                        Add => StatelessOp::Add,
                        Sub => StatelessOp::Sub,
                        Eq => StatelessOp::Eq,
                        Ne => StatelessOp::Ne,
                        Lt => StatelessOp::Lt,
                        Le => StatelessOp::Le,
                        Gt => StatelessOp::Gt,
                        Ge => StatelessOp::Ge,
                        And => StatelessOp::LAnd,
                        Or => StatelessOp::LOr,
                        BitAnd => StatelessOp::BitAnd,
                        BitOr => StatelessOp::BitOr,
                        BitXor => StatelessOp::Xor,
                        _ => unreachable!("handled above"),
                    };
                    if is_const(b) {
                        let v = const_of(b);
                        fits(v)?;
                        if let Some(_o) = imm_form(v) {
                            return Ok((1, 1));
                        }
                        // Commutative with a constant left/right the ALU
                        // can't fold: materialize then apply.
                        need(StatelessOp::ConstImm)?;
                        need(plain)?;
                        return Ok((2, 2));
                    }
                    if is_const(a) {
                        let v = const_of(a);
                        fits(v)?;
                        // Constant on the left: commutative imm forms apply
                        // (constant canonicalization is standard constant
                        // folding); ordered operators must materialize.
                        if bop.is_commutative() {
                            if let Some(_o) = imm_form(v) {
                                return Ok((1, 1));
                            }
                        }
                        need(StatelessOp::ConstImm)?;
                        need(plain)?;
                        return Ok((2, 2));
                    }
                    need(plain)?;
                    Ok((1, 1))
                }
            }
        }
        TacKind::Ternary(_, t, f) => {
            match (is_const(t), is_const(f)) {
                (true, true) => {
                    let (vt, vf) = (const_of(t), const_of(f));
                    fits(vt)?;
                    fits(vf)?;
                    if vt == 1 && vf == 0 {
                        need(StatelessOp::NeImm)?;
                        Ok((1, 1))
                    } else if vt == 0 && vf == 1 {
                        need(StatelessOp::EqImm)?;
                        Ok((1, 1))
                    } else {
                        need(StatelessOp::ConstImm)?;
                        need(StatelessOp::CondImm)?;
                        Ok((2, 2))
                    }
                }
                (false, true) => {
                    fits(const_of(f))?;
                    need(StatelessOp::CondImm)?;
                    Ok((1, 1))
                }
                (true, false) => {
                    fits(const_of(t))?;
                    need(StatelessOp::LNot)?;
                    need(StatelessOp::CondImm)?;
                    Ok((2, 2))
                }
                (false, false) => {
                    // r = (c ? t : 0) + (!c ? f : 0) — four units, depth 3.
                    need(StatelessOp::CondImm)?;
                    need(StatelessOp::LNot)?;
                    need(StatelessOp::Add)?;
                    Ok((4, 3))
                }
            }
        }
    }
}

impl DominoOutput {
    /// Per-stage ALU usage histogram (`histogram[k]` = ALUs in stage `k`),
    /// the raw data behind [`ResourceUsage::max_alus_per_stage`].
    pub fn alu_histogram(&self) -> Vec<usize> {
        let mut usage = vec![0usize; self.resources.stages_used];
        for (i, &(s, d)) in self.schedule.iter().enumerate() {
            let d = d.max(1);
            let base = self.alus[i] / d;
            let rem = self.alus[i] % d;
            for k in 0..d {
                if s + k < usage.len() {
                    usage[s + k] += base + usize::from(k < rem);
                }
            }
        }
        usage
    }

    /// Execute one packet through the scheduled pipeline (validating the
    /// matcher's hole bindings against real template semantics).
    pub fn exec(&self, input: &PacketState) -> PacketState {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let mut tmp_val: HashMap<usize, u64> = HashMap::new();
        let mut atom_out: HashMap<usize, u64> = HashMap::new();
        let mut state_new: Vec<u64> = input.states.iter().map(|v| v & mask).collect();

        let resolve = |mut a: Atom| -> Atom {
            while let Atom::Tmp(t) = a {
                match self.alias[t] {
                    Some(next) => a = next,
                    None => break,
                }
            }
            a
        };

        // Topological order by schedule start.
        let mut order: Vec<usize> = (0..self.nodes.len()).collect();
        order.sort_by_key(|&i| self.schedule[i].0);

        // Value of an atom operand, given what has executed so far.
        let value =
            |a: Atom, tmp_val: &HashMap<usize, u64>, atom_out: &HashMap<usize, u64>| -> u64 {
                match a {
                    Atom::Const(v) => v & mask,
                    Atom::Field(f) => input.fields[f] & mask,
                    Atom::StateOld(s) => *atom_out.get(&s).unwrap_or(&(input.states[s] & mask)),
                    Atom::Tmp(t) => match self.codelets.member_of[t] {
                        Some(s) => atom_out[&s],
                        None => tmp_val[&t],
                    },
                }
            };

        for &i in &order {
            match self.nodes[i] {
                Node::Op(t) => {
                    let ops = self.tac.ops[t].operands();
                    let vals: Vec<u64> = ops
                        .iter()
                        .map(|&a| value(resolve(a), &tmp_val, &atom_out))
                        .collect();
                    let v = match &self.tac.ops[t] {
                        TacKind::Un(UnOp::Not, _) => (vals[0] == 0) as u64,
                        TacKind::Un(UnOp::Neg, _) => vals[0].wrapping_neg() & mask,
                        TacKind::Bin(op, _, _) => {
                            chipmunk_lang::eval_binop(*op, vals[0], vals[1], mask)
                        }
                        TacKind::Ternary(..) => {
                            if vals[0] != 0 {
                                vals[1]
                            } else {
                                vals[2]
                            }
                        }
                    };
                    tmp_val.insert(t, v);
                }
                Node::Atom(s) => {
                    let b = self.bindings[s].as_ref().expect("matched atom");
                    let pkts: Vec<u64> = b
                        .pkt_operands
                        .iter()
                        .map(|p| match p {
                            Some(a) => value(resolve(*a), &tmp_val, &atom_out),
                            None => 0,
                        })
                        .collect();
                    let (ns, out) = self.stateful_spec.eval(
                        &b.holes_or_zero(),
                        input.states[s] & mask,
                        &pkts,
                        mask,
                    );
                    state_new[s] = ns;
                    atom_out.insert(s, out);
                }
            }
        }

        let fields = self
            .tac
            .field_out
            .iter()
            .map(|&a| value(resolve(a), &tmp_val, &atom_out))
            .collect();
        PacketState {
            fields,
            states: state_new,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_lang::{parse, Interpreter};
    use chipmunk_pisa::stateful::library;

    fn opts(stateful: StatefulAluSpec) -> DominoOptions {
        DominoOptions {
            width: 8,
            stateless: StatelessAluSpec::banzai(4),
            stateful,
        }
    }

    fn check(src: &str, stateful: StatefulAluSpec) -> DominoOutput {
        let prog = parse(src).unwrap();
        let o = opts(stateful);
        let out = compile(&prog, &o).unwrap_or_else(|e| panic!("rejected: {e}\n{src}"));
        // Differential validation against the interpreter.
        let mut folded = prog.clone();
        passes::const_fold(&mut folded, o.width);
        let interp = Interpreter::new(&folded, o.width);
        let nf = prog.field_names().len();
        let ns = prog.state_names().len();
        let mut seed = 11u64;
        for _ in 0..300 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let inp = PacketState {
                fields: (0..nf).map(|k| (seed >> (3 * k)) & 0xff).collect(),
                states: (0..ns).map(|k| (seed >> (5 * k + 7)) & 0xff).collect(),
            };
            assert_eq!(out.exec(&inp), interp.exec(&inp), "src={src}");
        }
        out
    }

    #[test]
    fn stateless_program_schedules() {
        let out = check("pkt.y = pkt.x + 1; pkt.z = pkt.y - pkt.x;", library::raw(4));
        assert_eq!(out.resources.stages_used, 2); // add, then sub
        assert!(out.resources.max_alus_per_stage >= 1);
    }

    #[test]
    fn counter_compiles_with_raw() {
        let out = check("state s; s = s + 1;", library::raw(4));
        assert_eq!(out.resources.stages_used, 1);
        assert_eq!(out.resources.total_alus, 1);
    }

    #[test]
    fn sampling_compiles_with_if_else_raw() {
        let out = check(
            "state count;
             if (count == 9) { count = 0; pkt.sample = 1; }
             else { count = count + 1; pkt.sample = 0; }",
            library::if_else_raw(4),
        );
        // The whole program folds into one atom (condition and sample
        // output share the predicate).
        assert_eq!(out.resources.stages_used, 1);
    }

    #[test]
    fn commuted_counter_is_rejected_as_too_expressive() {
        // `s = 1 + s` is semantically `s = s + 1`, but the rigid matcher
        // only knows the `state + const` shape.
        let prog = parse("state s; s = 1 + s;").unwrap();
        let err = compile(&prog, &opts(library::raw(4))).unwrap_err();
        assert!(matches!(err, DominoError::TooExpressive(_)), "{err:?}");
    }

    #[test]
    fn multiplication_is_unsupported() {
        let prog = parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let err = compile(&prog, &opts(library::raw(4))).unwrap_err();
        assert!(matches!(err, DominoError::UnsupportedOp(_)), "{err:?}");
    }

    #[test]
    fn oversized_constant_rejected() {
        let prog = parse("pkt.y = pkt.x + 99;").unwrap();
        let err = compile(&prog, &opts(library::raw(4))).unwrap_err();
        assert_eq!(err, DominoError::ConstantTooLarge(99));
    }

    #[test]
    fn state_write_of_field_uses_pkt_arm() {
        let out = check("state s; s = pkt.x;", library::raw(4));
        assert_eq!(out.resources.stages_used, 1);
    }

    #[test]
    fn read_after_write_uses_new_state_output() {
        let out = check("state s; s = s + 1; pkt.out = s;", library::raw(4));
        assert_eq!(out.resources.stages_used, 1);
    }

    #[test]
    fn guarded_update_with_external_condition() {
        let out = check(
            "state s; if (pkt.a > 3) { s = s + pkt.b; }",
            library::pred_raw(4),
        );
        // Condition computed by a stateless ALU, then the atom.
        assert_eq!(out.resources.stages_used, 2);
    }

    #[test]
    fn two_values_out_of_one_atom_rejected() {
        // Downstream needs both the old state and the predicate-updated
        // new state: two distinct output values.
        let prog = parse("state s; pkt.old = s; s = s + 1; pkt.new = s;").unwrap();
        let err = compile(&prog, &opts(library::raw(4))).unwrap_err();
        assert!(
            matches!(err, DominoError::MultipleAtomOutputs(_)),
            "{err:?}"
        );
    }

    #[test]
    fn restricted_stateless_alu_rejects_comparisons() {
        let prog = parse("pkt.y = pkt.a < pkt.b;").unwrap();
        let mut o = opts(library::raw(4));
        o.stateless = StatelessAluSpec::arith_only(4);
        let err = compile(&prog, &o).unwrap_err();
        assert!(matches!(err, DominoError::UnsupportedOp(_)));
    }

    #[test]
    fn two_level_nesting_fits_one_nested_ifs_atom() {
        let out = check(
            "state tokens;
             if (pkt.refill == 1) {
                 if (tokens < 12) { tokens = tokens + 3; }
             } else {
                 if (tokens > 0) { tokens = tokens - 1; }
             }",
            library::nested_ifs(4),
        );
        // The outer condition reads only a packet field, so the SCC rule
        // leaves it stateless: one ALU stage for `refill == 1`, then the
        // atom. (The synthesis compiler folds the same program into a
        // single stage by computing the predicate inside the atom — that
        // asymmetry is Figure 5.)
        assert_eq!(out.resources.stages_used, 2);
        assert_eq!(out.resources.total_alus, 2);
    }

    #[test]
    fn two_level_nesting_rejected_by_single_level_atom() {
        let prog = parse(
            "state tokens;
             if (pkt.refill == 1) {
                 if (tokens < 12) { tokens = tokens + 3; }
             } else {
                 if (tokens > 0) { tokens = tokens - 1; }
             }",
        )
        .unwrap();
        let err = compile(&prog, &opts(library::sub(4))).unwrap_err();
        assert!(matches!(err, DominoError::TooExpressive(_)), "{err:?}");
    }

    #[test]
    fn alu_histogram_matches_resources() {
        let out = check("pkt.y = pkt.x + 1; pkt.z = pkt.y - pkt.x;", library::raw(4));
        let hist = out.alu_histogram();
        assert_eq!(hist.len(), out.resources.stages_used);
        assert_eq!(
            hist.iter().copied().max().unwrap_or(0),
            out.resources.max_alus_per_stage
        );
        assert_eq!(hist.iter().sum::<usize>(), out.resources.total_alus);
    }

    #[test]
    fn ternary_both_computed_takes_four_alus() {
        let out = check("pkt.m = pkt.c ? pkt.a + 1 : pkt.b + 2;", library::raw(4));
        assert!(out.resources.total_alus >= 5);
        assert!(out.resources.stages_used >= 3);
    }
}
