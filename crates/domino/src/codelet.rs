//! Codelet partitioning: which operations must live inside an atom.
//!
//! A state update cannot be split across pipeline stages: the value written
//! for packet *n* must be visible to packet *n+1* one clock later, so any
//! computation on a dependency **cycle** with a state variable has to
//! execute inside the same stateful ALU. Domino finds these groups as the
//! strongly-connected components of the operation dependency graph
//! (SIGCOMM 2016, §5.2); everything else can be spread across stages as
//! stateless operations.

use crate::tac::{Atom, Tac};

/// The partition of a TAC program into stateful codelets.
#[derive(Clone, Debug)]
pub struct Codelets {
    /// For each temporary: the state variable whose codelet it belongs to,
    /// or `None` for stateless operations.
    pub member_of: Vec<Option<usize>>,
    /// For each state variable: its member temporaries (empty when the
    /// state's update has no cyclic computation).
    pub members: Vec<Vec<usize>>,
}

/// Partition `tac`. Fails when two state variables end up on one cycle —
/// our stateful ALUs hold a single register, so a mutually-recursive update
/// of two states cannot be implemented (Banzai's *pair* atoms could; that
/// hardware is out of scope for both compilers here, keeping the comparison
/// fair).
pub fn partition(tac: &Tac) -> Result<Codelets, String> {
    let t = tac.ops.len();
    let s = tac.num_states;
    let n = t + s;

    // Dependency edges: node u -> nodes it depends on.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in tac.ops.iter().enumerate() {
        for a in op.operands() {
            match a {
                Atom::Tmp(x) => deps[i].push(x),
                Atom::StateOld(v) => deps[i].push(t + v),
                Atom::Field(_) | Atom::Const(_) => {}
            }
        }
    }
    for v in 0..s {
        if let Some(&last) = tac.state_writes[v].last() {
            deps[t + v].push(last);
        }
    }

    let sccs = tarjan(&deps);

    let mut member_of = vec![None; t];
    let mut members = vec![Vec::new(); s];
    for scc in &sccs {
        let states: Vec<usize> = scc.iter().filter(|&&x| x >= t).map(|&x| x - t).collect();
        match states.len() {
            0 => {}
            1 => {
                let v = states[0];
                for &x in scc {
                    if x < t {
                        member_of[x] = Some(v);
                        members[v].push(x);
                    }
                }
                members[v].sort_unstable();
            }
            _ => {
                return Err(format!(
                    "state variables {states:?} update each other cyclically; \
                     a single-register atom cannot implement this"
                ))
            }
        }
    }
    Ok(Codelets { member_of, members })
}

/// Iterative Tarjan strongly-connected components.
fn tarjan(deps: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = deps.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    // Explicit DFS stack: (node, child iterator position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < deps[v].len() {
                let w = deps[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tac::lower;
    use chipmunk_lang::parse;

    fn codelets(src: &str) -> (Tac, Codelets) {
        let prog = parse(src).unwrap();
        let tac = lower(&prog).unwrap();
        let c = partition(&tac).unwrap();
        (tac, c)
    }

    #[test]
    fn pure_stateless_program_has_no_members() {
        let (_, c) = codelets("pkt.y = pkt.x + 1; pkt.z = pkt.y * 2;");
        assert!(c.member_of.iter().all(Option::is_none));
    }

    #[test]
    fn counter_update_joins_codelet() {
        // s = s + 1: the add reads s_old and writes s — a cycle.
        let (tac, c) = codelets("state s; s = s + 1;");
        assert_eq!(c.members[0], tac.state_writes[0].clone());
    }

    #[test]
    fn condition_on_own_state_joins_codelet() {
        // The predicate (count == 9) reads count and feeds count's update:
        // it must live inside the atom.
        let (tac, c) = codelets(
            "state count;
             if (count == 9) { count = 0; } else { count = count + 1; }",
        );
        // All ops except none are on the cycle except possibly the `!cond`
        // guard (which also feeds the update through the else arm).
        assert!(!c.members[0].is_empty());
        // The comparison op is a member.
        let cmp = tac
            .ops
            .iter()
            .position(|k| matches!(k, crate::tac::TacKind::Bin(chipmunk_lang::BinOp::Eq, _, _)))
            .unwrap();
        assert_eq!(c.member_of[cmp], Some(0));
    }

    #[test]
    fn write_without_cycle_is_stateless_feed() {
        // s = pkt.x + pkt.y: no read of s, so the add is a plain stateless
        // op; the codelet has only the anchoring write.
        let (tac, c) = codelets("state s; s = pkt.x + pkt.y;");
        let add = 0; // first op
        assert_eq!(c.member_of[add], None);
        // The anchor (if any) is the only member.
        assert!(c.members[0].len() <= 1);
        let _ = tac;
    }

    #[test]
    fn external_condition_stays_outside() {
        // Guard reads only packet fields: the comparison is stateless; the
        // guarded write (ternary reading s_old) is the member.
        let (tac, c) = codelets("state s; if (pkt.a > 3) { s = s + 1; }");
        let cmp = tac
            .ops
            .iter()
            .position(|k| matches!(k, crate::tac::TacKind::Bin(chipmunk_lang::BinOp::Gt, _, _)))
            .unwrap();
        assert_eq!(c.member_of[cmp], None);
        assert!(!c.members[0].is_empty());
    }

    #[test]
    fn two_states_coupled_cyclically_rejected() {
        // a and b swap: a = b; b = a(old)… b = a reads the *new* a, and
        // a = b reads old b — actually construct a genuine cycle:
        // a = b + 1 (reads old b), b = a(old) … must use both olds.
        // A real cycle needs each update to read the other's old value
        // *through the atoms*: a = b; b = a; reads old b and NEW a — the
        // new-a read makes b's update depend on a's atom, and a's update
        // depends on old b, i.e. b's atom? No — old values don't create
        // dependencies on atoms… verify the partition simply succeeds here.
        let prog = parse("state a; state b; a = b; b = a;").unwrap();
        let tac = lower(&prog).unwrap();
        assert!(partition(&tac).is_ok());
    }

    #[test]
    fn independent_states_get_independent_codelets() {
        let (_, c) = codelets("state a; state b; a = a + 1; b = b + 2;");
        assert!(!c.members[0].is_empty());
        assert!(!c.members[1].is_empty());
        let inter: Vec<_> = c.members[0]
            .iter()
            .filter(|t| c.members[1].contains(t))
            .collect();
        assert!(inter.is_empty());
    }
}
