//! # chipmunk-domino
//!
//! The baseline code generator: a reimplementation of the **Domino**
//! compiler architecture (Sivaraman et al., SIGCOMM 2016) that the paper
//! compares Chipmunk against. It is built from classical compiler passes —
//! rewrite rules over the program structure — rather than search:
//!
//! 1. **Preprocessing** — hash elimination and width-aware constant
//!    folding (`chipmunk-lang` passes).
//! 2. **Branch removal** (if-conversion) — control flow becomes guarded,
//!    straight-line assignments ([`tac`]).
//! 3. **Flattening to three-address code** with SSA temporaries — each
//!    operation is a candidate for one stateless ALU ([`tac`]).
//! 4. **Codelet partitioning** — strongly-connected components of the
//!    dependency graph that contain a state variable must execute inside a
//!    single *atom* (stateful ALU), because a state update cannot wait for
//!    a later pipeline stage ([`codelet`]).
//! 5. **Template matching** — each stateful codelet is matched
//!    *syntactically* against the stateful ALU template. The matcher is
//!    deliberately rigid (no commutativity, no re-association, no algebraic
//!    rewrites beyond two fixed normalizations): this is the documented
//!    source of Domino's brittleness, where semantics-preserving rewrites
//!    of a compilable program get rejected as "too expressive" — the
//!    behaviour the paper's Table 2 measures ([`matcher`]).
//! 6. **Pipeline scheduling** — longest-path stage assignment over the
//!    codelet DAG, plus mapping of every remaining operation onto the
//!    stateless ALU's opcode set ([`compile`]).
//!
//! The output carries the paper's Figure 5 metrics (pipeline depth, max
//! ALUs per stage) and is executable ([`DominoOutput::exec`]) so the
//! matcher's hole bindings are differentially validated against the
//! reference interpreter.

#![warn(missing_docs)]

pub mod codelet;
mod compile;
pub mod matcher;
pub mod tac;

pub use compile::{compile, DominoError, DominoOptions, DominoOutput};
