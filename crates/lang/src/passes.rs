//! Source-to-source passes over packet transactions.
//!
//! * [`eliminate_hashes`] — replaces every `hash(...)` call with a fresh
//!   read-only packet field. In PISA hardware (RMT/Banzai), hash units sit
//!   *outside* the ALU grid and deliver their results as packet metadata;
//!   modelling the hash value as a free input is exactly what the grid
//!   observes. Both code generators require hash-free programs.
//! * [`const_fold`] — width-aware constant folding and algebraic
//!   simplification. Because arithmetic wraps at the target width, folding
//!   is only sound for a *declared* width; callers pass the width they will
//!   compile at.

use crate::ast::{BinOp, Expr, Program, Stmt, UnOp, VarRef};
use crate::interp::eval_binop;

/// Replace each syntactic `hash(...)` occurrence with a fresh packet field.
///
/// Returns the names of the introduced fields. Each occurrence gets its own
/// field: two textually identical calls could observe different argument
/// values at different program points, so sharing would be unsound. The
/// hash *arguments* are dropped — the hash output is an opaque function of
/// them, and for code-generation equivalence the output is simply a free
/// input (documented substitution; see DESIGN.md).
pub fn eliminate_hashes(p: &mut Program) -> Vec<String> {
    let mut introduced = Vec::new();
    let mut counter = 0usize;
    let mut stmts = std::mem::take(p.stmts_mut());
    for s in &mut stmts {
        rewrite_stmt(s, p, &mut counter, &mut introduced);
    }
    *p.stmts_mut() = stmts;
    introduced
}

fn fresh_hash_field(p: &mut Program, counter: &mut usize, introduced: &mut Vec<String>) -> usize {
    loop {
        let name = format!("hash_{}", *counter);
        *counter += 1;
        if !p.field_names().contains(&name) {
            introduced.push(name.clone());
            return p.add_field(name);
        }
    }
}

fn rewrite_stmt(s: &mut Stmt, p: &mut Program, counter: &mut usize, introduced: &mut Vec<String>) {
    match s {
        Stmt::Assign(_, e) => rewrite_expr(e, p, counter, introduced),
        Stmt::If(c, t, f) => {
            rewrite_expr(c, p, counter, introduced);
            for st in t {
                rewrite_stmt(st, p, counter, introduced);
            }
            for st in f {
                rewrite_stmt(st, p, counter, introduced);
            }
        }
    }
}

fn rewrite_expr(e: &mut Expr, p: &mut Program, counter: &mut usize, introduced: &mut Vec<String>) {
    // `hash(...) % k` is one hash-unit invocation: real PISA hash units
    // produce a value in a configured range, so the modulo never reaches
    // the ALU grid.
    if let Expr::Binary(crate::ast::BinOp::Rem, a, b) = e {
        if matches!(**a, Expr::Hash(_)) && matches!(**b, Expr::Int(_)) {
            let idx = fresh_hash_field(p, counter, introduced);
            *e = Expr::Var(VarRef::Field(idx));
            return;
        }
    }
    match e {
        Expr::Hash(_) => {
            let idx = fresh_hash_field(p, counter, introduced);
            *e = Expr::Var(VarRef::Field(idx));
        }
        Expr::Unary(_, x) => rewrite_expr(x, p, counter, introduced),
        Expr::Binary(_, a, b) => {
            rewrite_expr(a, p, counter, introduced);
            rewrite_expr(b, p, counter, introduced);
        }
        Expr::Ternary(c, t, f) => {
            rewrite_expr(c, p, counter, introduced);
            rewrite_expr(t, p, counter, introduced);
            rewrite_expr(f, p, counter, introduced);
        }
        Expr::Int(_) | Expr::Var(_) => {}
    }
}

/// Remove packet fields that no statement reads or writes, remapping the
/// indices of the remaining fields.
///
/// Hash elimination leaves the hash *arguments* (e.g. `pkt.sport`) unused —
/// in hardware they feed the hash unit, not the ALU grid, so they do not
/// occupy PHV containers. Returns the removed field names.
pub fn prune_unused_fields(p: &mut Program) -> Vec<String> {
    let n = p.field_names().len();
    let mut used = vec![false; n];
    fn scan_expr(e: &Expr, used: &mut [bool]) {
        match e {
            Expr::Var(VarRef::Field(i)) => used[*i] = true,
            Expr::Var(_) | Expr::Int(_) => {}
            Expr::Hash(args) => args.iter().for_each(|a| scan_expr(a, used)),
            Expr::Unary(_, x) => scan_expr(x, used),
            Expr::Binary(_, a, b) => {
                scan_expr(a, used);
                scan_expr(b, used);
            }
            Expr::Ternary(c, t, f) => {
                scan_expr(c, used);
                scan_expr(t, used);
                scan_expr(f, used);
            }
        }
    }
    fn scan_stmts(stmts: &[Stmt], used: &mut [bool]) {
        for s in stmts {
            match s {
                Stmt::Assign(lv, e) => {
                    if let crate::ast::LValue::Field(i) = lv {
                        used[*i] = true;
                    }
                    scan_expr(e, used);
                }
                Stmt::If(c, t, f) => {
                    scan_expr(c, used);
                    scan_stmts(t, used);
                    scan_stmts(f, used);
                }
            }
        }
    }
    scan_stmts(p.stmts(), &mut used);
    if used.iter().all(|&u| u) {
        return Vec::new();
    }
    let mut remap = vec![usize::MAX; n];
    let mut kept = Vec::new();
    let mut removed = Vec::new();
    for (i, name) in p.field_names().to_vec().into_iter().enumerate() {
        if used[i] {
            remap[i] = kept.len();
            kept.push(name);
        } else {
            removed.push(name);
        }
    }
    fn remap_expr(e: &mut Expr, remap: &[usize]) {
        match e {
            Expr::Var(VarRef::Field(i)) => *i = remap[*i],
            Expr::Var(_) | Expr::Int(_) => {}
            Expr::Hash(args) => args.iter_mut().for_each(|a| remap_expr(a, remap)),
            Expr::Unary(_, x) => remap_expr(x, remap),
            Expr::Binary(_, a, b) => {
                remap_expr(a, remap);
                remap_expr(b, remap);
            }
            Expr::Ternary(c, t, f) => {
                remap_expr(c, remap);
                remap_expr(t, remap);
                remap_expr(f, remap);
            }
        }
    }
    fn remap_stmts(stmts: &mut [Stmt], remap: &[usize]) {
        for s in stmts {
            match s {
                Stmt::Assign(lv, e) => {
                    if let crate::ast::LValue::Field(i) = lv {
                        *i = remap[*i];
                    }
                    remap_expr(e, remap);
                }
                Stmt::If(c, t, f) => {
                    remap_expr(c, remap);
                    remap_stmts(t, remap);
                    remap_stmts(f, remap);
                }
            }
        }
    }
    let mut stmts = std::mem::take(p.stmts_mut());
    remap_stmts(&mut stmts, &remap);
    *p.stmts_mut() = stmts;
    p.set_field_names(kept);
    removed
}

/// Constant-fold a program at a declared bit width.
///
/// Folds constant subexpressions, applies safe identities (`x+0`, `x*1`,
/// `x*0`, `x&&1`, …) and prunes `if` statements with constant conditions.
pub fn const_fold(p: &mut Program, width: u8) {
    assert!((1..=64).contains(&width));
    let m = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut stmts = std::mem::take(p.stmts_mut());
    fold_stmts(&mut stmts, m);
    *p.stmts_mut() = stmts;
}

fn fold_stmts(stmts: &mut Vec<Stmt>, m: u64) {
    let mut out = Vec::with_capacity(stmts.len());
    for mut s in stmts.drain(..) {
        match &mut s {
            Stmt::Assign(_, e) => {
                fold_expr(e, m);
                out.push(s);
            }
            Stmt::If(c, t, f) => {
                fold_expr(c, m);
                fold_stmts(t, m);
                fold_stmts(f, m);
                match c {
                    Expr::Int(0) => out.append(f),
                    Expr::Int(_) => out.append(t),
                    _ => out.push(s),
                }
            }
        }
    }
    *stmts = out;
}

fn fold_expr(e: &mut Expr, m: u64) {
    match e {
        Expr::Int(v) => *v &= m,
        Expr::Var(_) => {}
        Expr::Hash(args) => args.iter_mut().for_each(|a| fold_expr(a, m)),
        Expr::Unary(op, x) => {
            fold_expr(x, m);
            if let Expr::Int(v) = **x {
                *e = Expr::Int(match op {
                    UnOp::Not => (v == 0) as u64,
                    UnOp::Neg => v.wrapping_neg() & m,
                });
            }
        }
        Expr::Binary(op, a, b) => {
            fold_expr(a, m);
            fold_expr(b, m);
            if let (Expr::Int(va), Expr::Int(vb)) = (&**a, &**b) {
                *e = Expr::Int(eval_binop(*op, *va, *vb, m));
                return;
            }
            // Identities with a constant on either side.
            let replacement = match (&**a, *op, &**b) {
                (Expr::Int(0), BinOp::Add, _) => Some((**b).clone()),
                (_, BinOp::Add | BinOp::Sub, Expr::Int(0)) => Some((**a).clone()),
                (_, BinOp::Mul, Expr::Int(1)) => Some((**a).clone()),
                (Expr::Int(1), BinOp::Mul, _) => Some((**b).clone()),
                (_, BinOp::Mul, Expr::Int(0)) | (Expr::Int(0), BinOp::Mul, _) => Some(Expr::Int(0)),
                (_, BinOp::BitOr | BinOp::BitXor, Expr::Int(0)) => Some((**a).clone()),
                (Expr::Int(0), BinOp::BitOr | BinOp::BitXor, _) => Some((**b).clone()),
                (_, BinOp::BitAnd, Expr::Int(0)) | (Expr::Int(0), BinOp::BitAnd, _) => {
                    Some(Expr::Int(0))
                }
                _ => None,
            };
            if let Some(r) = replacement {
                *e = r;
            }
        }
        Expr::Ternary(c, t, f) => {
            fold_expr(c, m);
            fold_expr(t, m);
            fold_expr(f, m);
            if let Expr::Int(v) = **c {
                *e = if v != 0 { (**t).clone() } else { (**f).clone() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LValue;
    use crate::interp::{Interpreter, PacketState};
    use crate::parse;

    #[test]
    fn hash_elimination_adds_fields() {
        let mut p = parse("state s; s = hash(pkt.a, pkt.b) % 8;").unwrap();
        let added = eliminate_hashes(&mut p);
        assert_eq!(added, ["hash_0"]);
        assert_eq!(p.field_names(), ["a", "b", "hash_0"]);
        assert!(!p.stmts().iter().any(Stmt::contains_hash));
    }

    #[test]
    fn hash_elimination_is_per_occurrence() {
        let mut p = parse("pkt.x = hash(pkt.a) + hash(pkt.a);").unwrap();
        let added = eliminate_hashes(&mut p);
        assert_eq!(added.len(), 2);
    }

    #[test]
    fn hash_field_names_avoid_collisions() {
        let mut p = parse("pkt.hash_0 = 1; pkt.x = hash(pkt.a);").unwrap();
        let added = eliminate_hashes(&mut p);
        assert_eq!(added, ["hash_1"]);
    }

    #[test]
    fn const_fold_folds_arithmetic_at_width() {
        let mut p = parse("pkt.x = 200 + 100;").unwrap();
        const_fold(&mut p, 8);
        assert_eq!(p.stmts()[0], Stmt::Assign(LValue::Field(0), Expr::Int(44)));
        let mut p = parse("pkt.x = 200 + 100;").unwrap();
        const_fold(&mut p, 10);
        assert_eq!(p.stmts()[0], Stmt::Assign(LValue::Field(0), Expr::Int(300)));
    }

    #[test]
    fn const_fold_applies_identities() {
        let mut p = parse("pkt.x = pkt.a + 0; pkt.y = pkt.b * 1; pkt.z = pkt.c * 0;").unwrap();
        const_fold(&mut p, 8);
        assert_eq!(
            p.stmts()[0],
            Stmt::Assign(LValue::Field(0), Expr::Var(VarRef::Field(1)))
        );
        assert_eq!(
            p.stmts()[1],
            Stmt::Assign(LValue::Field(2), Expr::Var(VarRef::Field(3)))
        );
        assert_eq!(p.stmts()[2], Stmt::Assign(LValue::Field(4), Expr::Int(0)));
    }

    #[test]
    fn const_fold_prunes_constant_branches() {
        let mut p = parse("state s; if (1) { s = 1; } else { s = 2; } if (0) { s = 9; }").unwrap();
        const_fold(&mut p, 8);
        assert_eq!(p.stmts().len(), 1);
        assert_eq!(p.stmts()[0], Stmt::Assign(LValue::State(0), Expr::Int(1)));
    }

    #[test]
    fn const_fold_preserves_semantics() {
        let src = "state s;\n\
                   if (pkt.a * 1 + 0 > 2 + 3) { s = s + (4 - 4) + pkt.b; } else { s = 0 * pkt.b; }\n\
                   pkt.out = s;";
        let original = parse(src).unwrap();
        let mut folded = original.clone();
        const_fold(&mut folded, 6);
        let io = Interpreter::new(&original, 6);
        let if_ = Interpreter::new(&folded, 6);
        for a in 0..64u64 {
            for b in [0u64, 1, 5, 63] {
                let inp = PacketState {
                    fields: vec![a, b, 0],
                    states: vec![7],
                };
                assert_eq!(io.exec(&inp), if_.exec(&inp), "a={a} b={b}");
            }
        }
    }
}
