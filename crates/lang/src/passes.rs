//! Source-to-source passes over packet transactions.
//!
//! * [`eliminate_hashes`] — replaces every `hash(...)` call with a fresh
//!   read-only packet field. In PISA hardware (RMT/Banzai), hash units sit
//!   *outside* the ALU grid and deliver their results as packet metadata;
//!   modelling the hash value as a free input is exactly what the grid
//!   observes. Both code generators require hash-free programs.
//! * [`const_fold`] — width-aware constant folding and algebraic
//!   simplification. Because arithmetic wraps at the target width, folding
//!   is only sound for a *declared* width; callers pass the width they will
//!   compile at.
//! * [`canonicalize`] — a semantics-preserving normal form that maps the
//!   small rewrites of `chipmunk-mutate` back to one representative, so
//!   content-addressed caches (the `chipmunk-serve` result cache) hit on
//!   mutated-but-equivalent programs.

use std::cmp::Ordering;

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, UnOp, VarRef};
use crate::interp::eval_binop;

/// Replace each syntactic `hash(...)` occurrence with a fresh packet field.
///
/// Returns the names of the introduced fields. Each occurrence gets its own
/// field: two textually identical calls could observe different argument
/// values at different program points, so sharing would be unsound. The
/// hash *arguments* are dropped — the hash output is an opaque function of
/// them, and for code-generation equivalence the output is simply a free
/// input (documented substitution; see DESIGN.md).
pub fn eliminate_hashes(p: &mut Program) -> Vec<String> {
    let mut introduced = Vec::new();
    let mut counter = 0usize;
    let mut stmts = std::mem::take(p.stmts_mut());
    for s in &mut stmts {
        rewrite_stmt(s, p, &mut counter, &mut introduced);
    }
    *p.stmts_mut() = stmts;
    introduced
}

fn fresh_hash_field(p: &mut Program, counter: &mut usize, introduced: &mut Vec<String>) -> usize {
    loop {
        let name = format!("hash_{}", *counter);
        *counter += 1;
        if !p.field_names().contains(&name) {
            introduced.push(name.clone());
            return p.add_field(name);
        }
    }
}

fn rewrite_stmt(s: &mut Stmt, p: &mut Program, counter: &mut usize, introduced: &mut Vec<String>) {
    match s {
        Stmt::Assign(_, e) => rewrite_expr(e, p, counter, introduced),
        Stmt::If(c, t, f) => {
            rewrite_expr(c, p, counter, introduced);
            for st in t {
                rewrite_stmt(st, p, counter, introduced);
            }
            for st in f {
                rewrite_stmt(st, p, counter, introduced);
            }
        }
    }
}

fn rewrite_expr(e: &mut Expr, p: &mut Program, counter: &mut usize, introduced: &mut Vec<String>) {
    // `hash(...) % k` is one hash-unit invocation: real PISA hash units
    // produce a value in a configured range, so the modulo never reaches
    // the ALU grid.
    if let Expr::Binary(crate::ast::BinOp::Rem, a, b) = e {
        if matches!(**a, Expr::Hash(_)) && matches!(**b, Expr::Int(_)) {
            let idx = fresh_hash_field(p, counter, introduced);
            *e = Expr::Var(VarRef::Field(idx));
            return;
        }
    }
    match e {
        Expr::Hash(_) => {
            let idx = fresh_hash_field(p, counter, introduced);
            *e = Expr::Var(VarRef::Field(idx));
        }
        Expr::Unary(_, x) => rewrite_expr(x, p, counter, introduced),
        Expr::Binary(_, a, b) => {
            rewrite_expr(a, p, counter, introduced);
            rewrite_expr(b, p, counter, introduced);
        }
        Expr::Ternary(c, t, f) => {
            rewrite_expr(c, p, counter, introduced);
            rewrite_expr(t, p, counter, introduced);
            rewrite_expr(f, p, counter, introduced);
        }
        Expr::Int(_) | Expr::Var(_) => {}
    }
}

/// Remove packet fields that no statement reads or writes, remapping the
/// indices of the remaining fields.
///
/// Hash elimination leaves the hash *arguments* (e.g. `pkt.sport`) unused —
/// in hardware they feed the hash unit, not the ALU grid, so they do not
/// occupy PHV containers. Returns the removed field names.
pub fn prune_unused_fields(p: &mut Program) -> Vec<String> {
    let n = p.field_names().len();
    let mut used = vec![false; n];
    fn scan_expr(e: &Expr, used: &mut [bool]) {
        match e {
            Expr::Var(VarRef::Field(i)) => used[*i] = true,
            Expr::Var(_) | Expr::Int(_) => {}
            Expr::Hash(args) => args.iter().for_each(|a| scan_expr(a, used)),
            Expr::Unary(_, x) => scan_expr(x, used),
            Expr::Binary(_, a, b) => {
                scan_expr(a, used);
                scan_expr(b, used);
            }
            Expr::Ternary(c, t, f) => {
                scan_expr(c, used);
                scan_expr(t, used);
                scan_expr(f, used);
            }
        }
    }
    fn scan_stmts(stmts: &[Stmt], used: &mut [bool]) {
        for s in stmts {
            match s {
                Stmt::Assign(lv, e) => {
                    if let crate::ast::LValue::Field(i) = lv {
                        used[*i] = true;
                    }
                    scan_expr(e, used);
                }
                Stmt::If(c, t, f) => {
                    scan_expr(c, used);
                    scan_stmts(t, used);
                    scan_stmts(f, used);
                }
            }
        }
    }
    scan_stmts(p.stmts(), &mut used);
    if used.iter().all(|&u| u) {
        return Vec::new();
    }
    let mut remap = vec![usize::MAX; n];
    let mut kept = Vec::new();
    let mut removed = Vec::new();
    for (i, name) in p.field_names().to_vec().into_iter().enumerate() {
        if used[i] {
            remap[i] = kept.len();
            kept.push(name);
        } else {
            removed.push(name);
        }
    }
    fn remap_expr(e: &mut Expr, remap: &[usize]) {
        match e {
            Expr::Var(VarRef::Field(i)) => *i = remap[*i],
            Expr::Var(_) | Expr::Int(_) => {}
            Expr::Hash(args) => args.iter_mut().for_each(|a| remap_expr(a, remap)),
            Expr::Unary(_, x) => remap_expr(x, remap),
            Expr::Binary(_, a, b) => {
                remap_expr(a, remap);
                remap_expr(b, remap);
            }
            Expr::Ternary(c, t, f) => {
                remap_expr(c, remap);
                remap_expr(t, remap);
                remap_expr(f, remap);
            }
        }
    }
    fn remap_stmts(stmts: &mut [Stmt], remap: &[usize]) {
        for s in stmts {
            match s {
                Stmt::Assign(lv, e) => {
                    if let crate::ast::LValue::Field(i) = lv {
                        *i = remap[*i];
                    }
                    remap_expr(e, remap);
                }
                Stmt::If(c, t, f) => {
                    remap_expr(c, remap);
                    remap_stmts(t, remap);
                    remap_stmts(f, remap);
                }
            }
        }
    }
    let mut stmts = std::mem::take(p.stmts_mut());
    remap_stmts(&mut stmts, &remap);
    *p.stmts_mut() = stmts;
    p.set_field_names(kept);
    removed
}

/// Constant-fold a program at a declared bit width.
///
/// Folds constant subexpressions, applies safe identities (`x+0`, `x*1`,
/// `x*0`, `x&&1`, …) and prunes `if` statements with constant conditions.
pub fn const_fold(p: &mut Program, width: u8) {
    assert!((1..=64).contains(&width));
    let m = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut stmts = std::mem::take(p.stmts_mut());
    fold_stmts(&mut stmts, m);
    *p.stmts_mut() = stmts;
}

fn fold_stmts(stmts: &mut Vec<Stmt>, m: u64) {
    let mut out = Vec::with_capacity(stmts.len());
    for mut s in stmts.drain(..) {
        match &mut s {
            Stmt::Assign(_, e) => {
                fold_expr(e, m);
                out.push(s);
            }
            Stmt::If(c, t, f) => {
                fold_expr(c, m);
                fold_stmts(t, m);
                fold_stmts(f, m);
                match c {
                    Expr::Int(0) => out.append(f),
                    Expr::Int(_) => out.append(t),
                    _ => out.push(s),
                }
            }
        }
    }
    *stmts = out;
}

fn fold_expr(e: &mut Expr, m: u64) {
    match e {
        Expr::Int(v) => *v &= m,
        Expr::Var(_) => {}
        Expr::Hash(args) => args.iter_mut().for_each(|a| fold_expr(a, m)),
        Expr::Unary(op, x) => {
            fold_expr(x, m);
            if let Expr::Int(v) = **x {
                *e = Expr::Int(match op {
                    UnOp::Not => (v == 0) as u64,
                    UnOp::Neg => v.wrapping_neg() & m,
                });
            }
        }
        Expr::Binary(op, a, b) => {
            fold_expr(a, m);
            fold_expr(b, m);
            if let (Expr::Int(va), Expr::Int(vb)) = (&**a, &**b) {
                *e = Expr::Int(eval_binop(*op, *va, *vb, m));
                return;
            }
            // Identities with a constant on either side.
            let replacement = match (&**a, *op, &**b) {
                (Expr::Int(0), BinOp::Add, _) => Some((**b).clone()),
                (_, BinOp::Add | BinOp::Sub, Expr::Int(0)) => Some((**a).clone()),
                (_, BinOp::Mul, Expr::Int(1)) => Some((**a).clone()),
                (Expr::Int(1), BinOp::Mul, _) => Some((**b).clone()),
                (_, BinOp::Mul, Expr::Int(0)) | (Expr::Int(0), BinOp::Mul, _) => Some(Expr::Int(0)),
                (_, BinOp::BitOr | BinOp::BitXor, Expr::Int(0)) => Some((**a).clone()),
                (Expr::Int(0), BinOp::BitOr | BinOp::BitXor, _) => Some((**b).clone()),
                (_, BinOp::BitAnd, Expr::Int(0)) | (Expr::Int(0), BinOp::BitAnd, _) => {
                    Some(Expr::Int(0))
                }
                _ => None,
            };
            if let Some(r) = replacement {
                *e = r;
            }
        }
        Expr::Ternary(c, t, f) => {
            fold_expr(c, m);
            fold_expr(t, m);
            fold_expr(f, m);
            if let Expr::Int(v) = **c {
                *e = if v != 0 { (**t).clone() } else { (**f).clone() };
            }
        }
    }
}

/// Rewrite a program into a canonical, semantics-preserving normal form at
/// a declared bit width.
///
/// Two programs that differ only by the small syntactic rewrites of
/// `chipmunk-mutate` (commuted operands, mirrored comparisons, negated
/// branches, ternary⇄if conversion, re-association, added identities,
/// decomposed constants, hoisted subexpressions, double negation)
/// canonicalize to the same source text, which is what makes
/// content-addressed compilation caches hit on mutants. Every individual
/// rewrite preserves input–output semantics at the given width, so the
/// canonical program is a sound stand-in for the original in any
/// width-`width` compilation.
///
/// The normal form is a fixpoint of:
///
/// * [`const_fold`] (folds `(k-1)+1`, strips `e+0` / `e*1`, prunes
///   constant branches),
/// * `!!c → c` in `if` and ternary condition position (truthiness),
/// * `if (!c) A else B → if (c) B else A`,
/// * `a > b → b < a`, `a >= b → b <= a` (only `<` / `<=` survive),
/// * operand sorting under commutative operators, with full `+`-chain
///   flattening (modular `+` is associative and commutative at any width),
/// * `if (c) { x = t; } else { x = f; } → x = c ? t : f` for single
///   assignments to the same lvalue, and
/// * inlining of single-use locals defined immediately before their only
///   use (the inverse of subexpression hoisting).
pub fn canonicalize(p: &mut Program, width: u8) {
    // Each round strictly shrinks or reorders toward the normal form; the
    // cap only guards against a rewrite cycle slipping in later.
    for _ in 0..16 {
        let before = p.to_string();
        const_fold(p, width);
        let mut stmts = std::mem::take(p.stmts_mut());
        canon_stmts(p, &mut stmts);
        *p.stmts_mut() = stmts;
        inline_single_use_locals(p);
        if p.to_string() == before {
            break;
        }
    }
}

/// A stable structural total order on expressions, used to pick the
/// canonical operand order under commutative operators.
///
/// Variables order by *name*, not by dense index: two parses of
/// semantically identical sources can number fields differently (indices
/// follow first use), and the canonical form must not depend on that.
fn expr_cmp(p: &Program, a: &Expr, b: &Expr) -> Ordering {
    fn rank(e: &Expr) -> u8 {
        match e {
            Expr::Int(_) => 0,
            Expr::Var(_) => 1,
            Expr::Hash(_) => 2,
            Expr::Unary(..) => 3,
            Expr::Binary(..) => 4,
            Expr::Ternary(..) => 5,
        }
    }
    fn var_key<'a>(p: &'a Program, r: &VarRef) -> (u8, &'a str) {
        match r {
            VarRef::Field(i) => (0, p.field_names()[*i].as_str()),
            VarRef::State(i) => (1, p.state_names()[*i].as_str()),
            VarRef::Local(i) => (2, p.local_names()[*i].as_str()),
        }
    }
    rank(a).cmp(&rank(b)).then_with(|| match (a, b) {
        (Expr::Int(x), Expr::Int(y)) => x.cmp(y),
        (Expr::Var(x), Expr::Var(y)) => var_key(p, x).cmp(&var_key(p, y)),
        (Expr::Hash(x), Expr::Hash(y)) => x.len().cmp(&y.len()).then_with(|| {
            x.iter()
                .zip(y)
                .map(|(u, v)| expr_cmp(p, u, v))
                .fold(Ordering::Equal, Ordering::then)
        }),
        (Expr::Unary(ox, x), Expr::Unary(oy, y)) => (*ox as u8)
            .cmp(&(*oy as u8))
            .then_with(|| expr_cmp(p, x, y)),
        (Expr::Binary(ox, xa, xb), Expr::Binary(oy, ya, yb)) => (*ox as u8)
            .cmp(&(*oy as u8))
            .then_with(|| expr_cmp(p, xa, ya))
            .then_with(|| expr_cmp(p, xb, yb)),
        (Expr::Ternary(xc, xt, xf), Expr::Ternary(yc, yt, yf)) => expr_cmp(p, xc, yc)
            .then_with(|| expr_cmp(p, xt, yt))
            .then_with(|| expr_cmp(p, xf, yf)),
        _ => Ordering::Equal,
    })
}

/// Strip `!!…` prefixes in a truthiness position (if / ternary condition):
/// `!!c` and `c` decide branches identically even though their *values*
/// differ (`!!5 == 1`).
fn strip_double_not(c: &mut Expr) {
    while let Expr::Unary(UnOp::Not, inner) = c {
        if let Expr::Unary(UnOp::Not, inner2) = inner.as_mut() {
            *c = std::mem::replace(inner2.as_mut(), Expr::Int(0));
        } else {
            break;
        }
    }
}

/// Flatten a maximal `+` tree into its leaves (wrapping `+` is associative
/// and commutative at every width, so any re-association/permutation of
/// the leaves is semantics-preserving).
fn flatten_add(e: Expr, leaves: &mut Vec<Expr>) {
    match e {
        Expr::Binary(BinOp::Add, a, b) => {
            flatten_add(*a, leaves);
            flatten_add(*b, leaves);
        }
        other => leaves.push(other),
    }
}

fn canon_expr(p: &Program, e: &mut Expr) {
    // Children first so parent-level decisions see canonical operands.
    match e {
        Expr::Int(_) | Expr::Var(_) => {}
        Expr::Hash(args) => args.iter_mut().for_each(|a| canon_expr(p, a)),
        Expr::Unary(_, x) => canon_expr(p, x),
        Expr::Binary(_, a, b) => {
            canon_expr(p, a);
            canon_expr(p, b);
        }
        Expr::Ternary(c, t, f) => {
            strip_double_not(c);
            canon_expr(p, c);
            canon_expr(p, t);
            canon_expr(p, f);
        }
    }
    if let Expr::Binary(op, a, b) = e {
        // Mirror `>` / `>=` so only `<` / `<=` survive.
        if let Some(m) = match op {
            BinOp::Gt => Some(BinOp::Lt),
            BinOp::Ge => Some(BinOp::Le),
            _ => None,
        } {
            *op = m;
            std::mem::swap(a, b);
        }
    }
    if matches!(e, Expr::Binary(BinOp::Add, _, _)) {
        let mut leaves = Vec::new();
        flatten_add(std::mem::replace(e, Expr::Int(0)), &mut leaves);
        leaves.sort_by(|a, b| expr_cmp(p, a, b));
        let mut it = leaves.into_iter();
        let mut acc = it.next().expect("an Add has at least two leaves");
        for l in it {
            acc = Expr::bin(BinOp::Add, acc, l);
        }
        *e = acc;
    } else if let Expr::Binary(op, a, b) = e {
        if op.is_commutative() && expr_cmp(p, a, b) == Ordering::Greater {
            std::mem::swap(a, b);
        }
    }
}

fn canon_stmts(p: &Program, stmts: &mut [Stmt]) {
    for s in stmts {
        match s {
            Stmt::Assign(_, e) => canon_expr(p, e),
            Stmt::If(c, t, f) => {
                strip_double_not(c);
                // `if (!c) A else B` ≡ `if (c) B else A` (only when an else
                // branch exists — swapping with an empty arm would drop A).
                if matches!(c, Expr::Unary(UnOp::Not, _)) && !f.is_empty() {
                    let cond = std::mem::replace(c, Expr::Int(0));
                    if let Expr::Unary(UnOp::Not, inner) = cond {
                        *c = *inner;
                        std::mem::swap(t, f);
                    }
                }
                canon_expr(p, c);
                canon_stmts(p, t);
                canon_stmts(p, f);
                // `if (c) { x = t; } else { x = f; }` → `x = c ? t : f`.
                let collapsed = match (&t[..], &f[..]) {
                    ([Stmt::Assign(lt, te)], [Stmt::Assign(lf, fe)]) if lt == lf => {
                        Some(Stmt::Assign(
                            *lt,
                            Expr::Ternary(
                                Box::new(c.clone()),
                                Box::new(te.clone()),
                                Box::new(fe.clone()),
                            ),
                        ))
                    }
                    _ => None,
                };
                if let Some(repl) = collapsed {
                    *s = repl;
                }
            }
        }
    }
}

/// Inline a local that is (a) assigned exactly once, by a top-level
/// statement, (b) read exactly once, in the right-hand side of the
/// *immediately following* top-level assignment, and (c) not self-
/// referential. Nothing executes between definition and use and the use
/// statement evaluates its RHS before writing, so substitution is exact —
/// this is precisely the shape `HoistSubexpr` produces.
fn inline_single_use_locals(p: &mut Program) {
    fn count_reads(stmts: &[Stmt], r: VarRef) -> usize {
        fn expr(e: &Expr, r: VarRef) -> usize {
            match e {
                Expr::Int(_) => 0,
                Expr::Var(v) => (*v == r) as usize,
                Expr::Hash(args) => args.iter().map(|a| expr(a, r)).sum(),
                Expr::Unary(_, x) => expr(x, r),
                Expr::Binary(_, a, b) => expr(a, r) + expr(b, r),
                Expr::Ternary(c, t, f) => expr(c, r) + expr(t, r) + expr(f, r),
            }
        }
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign(_, e) => expr(e, r),
                Stmt::If(c, t, f) => expr(c, r) + count_reads(t, r) + count_reads(f, r),
            })
            .sum()
    }
    fn count_writes(stmts: &[Stmt], lv: LValue) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign(l, _) => (*l == lv) as usize,
                Stmt::If(_, t, f) => count_writes(t, lv) + count_writes(f, lv),
            })
            .sum()
    }
    fn substitute(e: &mut Expr, r: VarRef, with: &Expr) {
        match e {
            Expr::Var(v) if *v == r => *e = with.clone(),
            Expr::Int(_) | Expr::Var(_) => {}
            Expr::Hash(args) => args.iter_mut().for_each(|a| substitute(a, r, with)),
            Expr::Unary(_, x) => substitute(x, r, with),
            Expr::Binary(_, a, b) => {
                substitute(a, r, with);
                substitute(b, r, with);
            }
            Expr::Ternary(c, t, f) => {
                substitute(c, r, with);
                substitute(t, r, with);
                substitute(f, r, with);
            }
        }
    }

    let mut stmts = std::mem::take(p.stmts_mut());
    let mut i = 0;
    while i + 1 < stmts.len() {
        let inlinable = match (&stmts[i], &stmts[i + 1]) {
            (Stmt::Assign(LValue::Local(l), def), Stmt::Assign(_, rhs)) => {
                let r = VarRef::Local(*l);
                !def.reads(r)
                    && count_writes(&stmts, LValue::Local(*l)) == 1
                    && count_reads(&stmts, r) == 1
                    && {
                        // The single read must be in the next statement.
                        let mut probe = rhs.clone();
                        substitute(&mut probe, r, &Expr::Int(0));
                        probe != *rhs
                    }
            }
            _ => false,
        };
        if inlinable {
            if let Stmt::Assign(LValue::Local(l), def) = stmts.remove(i) {
                if let Stmt::Assign(_, rhs) = &mut stmts[i] {
                    substitute(rhs, VarRef::Local(l), &def);
                }
            }
            // Re-examine from the same index: chains of hoists collapse.
            i = i.saturating_sub(1);
        } else {
            i += 1;
        }
    }
    *p.stmts_mut() = stmts;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LValue;
    use crate::interp::{Interpreter, PacketState};
    use crate::parse;

    #[test]
    fn hash_elimination_adds_fields() {
        let mut p = parse("state s; s = hash(pkt.a, pkt.b) % 8;").unwrap();
        let added = eliminate_hashes(&mut p);
        assert_eq!(added, ["hash_0"]);
        assert_eq!(p.field_names(), ["a", "b", "hash_0"]);
        assert!(!p.stmts().iter().any(Stmt::contains_hash));
    }

    #[test]
    fn hash_elimination_is_per_occurrence() {
        let mut p = parse("pkt.x = hash(pkt.a) + hash(pkt.a);").unwrap();
        let added = eliminate_hashes(&mut p);
        assert_eq!(added.len(), 2);
    }

    #[test]
    fn hash_field_names_avoid_collisions() {
        let mut p = parse("pkt.hash_0 = 1; pkt.x = hash(pkt.a);").unwrap();
        let added = eliminate_hashes(&mut p);
        assert_eq!(added, ["hash_1"]);
    }

    #[test]
    fn const_fold_folds_arithmetic_at_width() {
        let mut p = parse("pkt.x = 200 + 100;").unwrap();
        const_fold(&mut p, 8);
        assert_eq!(p.stmts()[0], Stmt::Assign(LValue::Field(0), Expr::Int(44)));
        let mut p = parse("pkt.x = 200 + 100;").unwrap();
        const_fold(&mut p, 10);
        assert_eq!(p.stmts()[0], Stmt::Assign(LValue::Field(0), Expr::Int(300)));
    }

    #[test]
    fn const_fold_applies_identities() {
        let mut p = parse("pkt.x = pkt.a + 0; pkt.y = pkt.b * 1; pkt.z = pkt.c * 0;").unwrap();
        const_fold(&mut p, 8);
        assert_eq!(
            p.stmts()[0],
            Stmt::Assign(LValue::Field(0), Expr::Var(VarRef::Field(1)))
        );
        assert_eq!(
            p.stmts()[1],
            Stmt::Assign(LValue::Field(2), Expr::Var(VarRef::Field(3)))
        );
        assert_eq!(p.stmts()[2], Stmt::Assign(LValue::Field(4), Expr::Int(0)));
    }

    #[test]
    fn const_fold_prunes_constant_branches() {
        let mut p = parse("state s; if (1) { s = 1; } else { s = 2; } if (0) { s = 9; }").unwrap();
        const_fold(&mut p, 8);
        assert_eq!(p.stmts().len(), 1);
        assert_eq!(p.stmts()[0], Stmt::Assign(LValue::State(0), Expr::Int(1)));
    }

    /// Canonical text of a source string at width 8.
    fn canon(src: &str) -> String {
        let mut p = parse(src).unwrap();
        canonicalize(&mut p, 8);
        p.to_string()
    }

    #[test]
    fn canonicalize_sorts_commutative_operands_by_name() {
        assert_eq!(
            canon("pkt.x = pkt.b + pkt.a;"),
            canon("pkt.x = pkt.a + pkt.b;")
        );
        assert_eq!(
            canon("pkt.x = pkt.b * pkt.a;"),
            canon("pkt.x = pkt.a * pkt.b;")
        );
        // Name-based, not index-based: first-use order differs between the
        // two sources, the canonical text must not.
        assert_eq!(
            canon("pkt.x = pkt.b | pkt.a; pkt.y = pkt.a;"),
            canon("pkt.x = pkt.a | pkt.b; pkt.y = pkt.a;"),
        );
    }

    #[test]
    fn canonicalize_mirrors_comparisons() {
        assert_eq!(
            canon("state s; if (3 > s) { s = s + 1; }"),
            canon("state s; if (s < 3) { s = s + 1; }"),
        );
        assert_eq!(canon("pkt.x = pkt.a >= 2;"), canon("pkt.x = 2 <= pkt.a;"));
    }

    #[test]
    fn canonicalize_reassociates_and_flattens_add_chains() {
        assert_eq!(
            canon("pkt.x = pkt.a + (pkt.b + pkt.c);"),
            canon("pkt.x = (pkt.c + pkt.a) + pkt.b;"),
        );
    }

    #[test]
    fn canonicalize_strips_identities_and_decomposed_constants() {
        assert_eq!(canon("pkt.x = pkt.a + 0;"), canon("pkt.x = pkt.a;"));
        assert_eq!(canon("pkt.x = pkt.a * 1;"), canon("pkt.x = pkt.a;"));
        assert_eq!(
            canon("state s; s = s + (2 + 1);"),
            canon("state s; s = s + 3;")
        );
    }

    #[test]
    fn canonicalize_normalizes_branch_shape() {
        // Negated branch.
        assert_eq!(
            canon("state s; if (!(pkt.a < 2)) { s = 1; } else { s = 2; }"),
            canon("state s; if (pkt.a < 2) { s = 2; } else { s = 1; }"),
        );
        // Double negation in condition position.
        assert_eq!(
            canon("state s; if (!!(pkt.a < 2)) { s = 1; } else { s = 2; }"),
            canon("state s; if (pkt.a < 2) { s = 1; } else { s = 2; }"),
        );
        // Ternary ⇄ if round-trip collapses to the ternary form.
        assert_eq!(
            canon("state s; if (pkt.a < 2) { s = 1; } else { s = 2; }"),
            canon("state s; s = pkt.a < 2 ? 1 : 2;"),
        );
    }

    #[test]
    fn canonicalize_inlines_hoisted_single_use_locals() {
        assert_eq!(
            canon("int t = pkt.a; pkt.x = t + pkt.b;"),
            canon("pkt.x = pkt.a + pkt.b;"),
        );
        // Chained hoists collapse too.
        assert_eq!(
            canon("int u = pkt.a; int t = u; pkt.x = t + pkt.b;"),
            canon("pkt.x = pkt.a + pkt.b;"),
        );
        // A local used twice stays put (inlining would duplicate work and
        // is not the inverse of any hoist).
        let twice = canon("int t = pkt.a + 1; pkt.x = t; pkt.y = t;");
        assert!(twice.contains("int t"), "{twice}");
    }

    #[test]
    fn canonicalize_preserves_semantics_on_a_rich_program() {
        let src = "state s;\n\
                   int t = pkt.b + pkt.a;\n\
                   pkt.p = t + 0;\n\
                   if (!!(2 + 3 > pkt.a + 1)) { s = 1 + s; pkt.o = s > 1 ? 4 : 5; }\n\
                   else { pkt.o = 0; }";
        let original = parse(src).unwrap();
        let mut canonical = original.clone();
        canonicalize(&mut canonical, 6);
        let io = Interpreter::new(&original, 6);
        let ic = Interpreter::new(&canonical, 6);
        for a in 0..64u64 {
            for b in [0u64, 1, 5, 63] {
                let inp = PacketState {
                    fields: vec![0, b, a, 0],
                    states: vec![7],
                };
                assert_eq!(io.exec(&inp), ic.exec(&inp), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn canonicalize_is_idempotent() {
        for src in [
            "state s; if (3 > s) { s = 1 + s; pkt.o = 1; } else { pkt.o = 0; }",
            "int t = pkt.b + pkt.a; pkt.x = t + 0;",
            "pkt.x = pkt.a ? 1 : 2;",
        ] {
            let mut once = parse(src).unwrap();
            canonicalize(&mut once, 8);
            let text1 = once.to_string();
            canonicalize(&mut once, 8);
            assert_eq!(once.to_string(), text1, "not idempotent on {src}");
        }
    }

    #[test]
    fn const_fold_preserves_semantics() {
        let src = "state s;\n\
                   if (pkt.a * 1 + 0 > 2 + 3) { s = s + (4 - 4) + pkt.b; } else { s = 0 * pkt.b; }\n\
                   pkt.out = s;";
        let original = parse(src).unwrap();
        let mut folded = original.clone();
        const_fold(&mut folded, 6);
        let io = Interpreter::new(&original, 6);
        let if_ = Interpreter::new(&folded, 6);
        for a in 0..64u64 {
            for b in [0u64, 1, 5, 63] {
                let inp = PacketState {
                    fields: vec![a, b, 0],
                    states: vec![7],
                };
                assert_eq!(io.exec(&inp), if_.exec(&inp), "a={a} b={b}");
            }
        }
    }
}
