//! Post-parse semantic checks.
//!
//! Name resolution already happens inside the parser; this module validates
//! whole-program properties that need the complete AST.

use std::fmt;

use crate::ast::{Expr, LValue, Program, Stmt, VarRef};

/// A semantic error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SemaError {
    /// The program contains no statements.
    EmptyProgram,
    /// A local temporary is read but never assigned on any path.
    LocalNeverAssigned(String),
    /// A `hash(...)` call appears in an assignment *target* position — not
    /// representable (enforced structurally, kept for completeness).
    HashArity,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemaError::EmptyProgram => write!(f, "program has no statements"),
            SemaError::LocalNeverAssigned(n) => {
                write!(f, "local `{n}` is read but never assigned")
            }
            SemaError::HashArity => write!(f, "hash() needs at least one argument"),
        }
    }
}

impl std::error::Error for SemaError {}

/// Validate a resolved program.
pub(crate) fn check(p: &Program) -> Result<(), SemaError> {
    if p.stmts().is_empty() {
        return Err(SemaError::EmptyProgram);
    }
    // Every read local must be assigned somewhere.
    let n = p.local_names().len();
    let mut assigned = vec![false; n];
    let mut read = vec![false; n];
    collect(p.stmts(), &mut assigned, &mut read);
    for i in 0..n {
        if read[i] && !assigned[i] {
            return Err(SemaError::LocalNeverAssigned(p.local_names()[i].clone()));
        }
    }
    check_hash_arity(p.stmts())?;
    Ok(())
}

fn collect(stmts: &[Stmt], assigned: &mut [bool], read: &mut [bool]) {
    for s in stmts {
        match s {
            Stmt::Assign(lv, e) => {
                mark_reads(e, read);
                if let LValue::Local(i) = lv {
                    assigned[*i] = true;
                }
            }
            Stmt::If(c, t, f) => {
                mark_reads(c, read);
                collect(t, assigned, read);
                collect(f, assigned, read);
            }
        }
    }
}

fn mark_reads(e: &Expr, read: &mut [bool]) {
    match e {
        Expr::Int(_) => {}
        Expr::Var(VarRef::Local(i)) => read[*i] = true,
        Expr::Var(_) => {}
        Expr::Hash(args) => args.iter().for_each(|a| mark_reads(a, read)),
        Expr::Unary(_, x) => mark_reads(x, read),
        Expr::Binary(_, a, b) => {
            mark_reads(a, read);
            mark_reads(b, read);
        }
        Expr::Ternary(c, t, f) => {
            mark_reads(c, read);
            mark_reads(t, read);
            mark_reads(f, read);
        }
    }
}

fn check_hash_arity(stmts: &[Stmt]) -> Result<(), SemaError> {
    fn expr(e: &Expr) -> Result<(), SemaError> {
        match e {
            Expr::Hash(args) if args.is_empty() => Err(SemaError::HashArity),
            Expr::Hash(args) => args.iter().try_for_each(expr),
            Expr::Unary(_, x) => expr(x),
            Expr::Binary(_, a, b) => expr(a).and_then(|_| expr(b)),
            Expr::Ternary(c, t, f) => expr(c).and_then(|_| expr(t)).and_then(|_| expr(f)),
            Expr::Int(_) | Expr::Var(_) => Ok(()),
        }
    }
    for s in stmts {
        match s {
            Stmt::Assign(_, e) => expr(e)?,
            Stmt::If(c, t, f) => {
                expr(c)?;
                check_hash_arity(t)?;
                check_hash_arity(f)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn empty_program_rejected() {
        let err = parse("   ").unwrap_err();
        assert!(err.message.contains("no statements"));
    }

    #[test]
    fn local_read_implies_assignment_exists() {
        // The parser's def-before-use ordering already guarantees this for
        // straight-line code; the check still guards AST-level constructors.
        let p = Program::from_parts(
            vec!["x".into()],
            vec![],
            vec![],
            vec!["t".into()],
            vec![Stmt::Assign(LValue::Field(0), Expr::Var(VarRef::Local(0)))],
        );
        assert_eq!(check(&p), Err(SemaError::LocalNeverAssigned("t".into())));
    }

    #[test]
    fn assigned_local_is_fine() {
        assert!(parse("int t = 1; pkt.x = t;").is_ok());
    }
}
