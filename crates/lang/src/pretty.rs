//! Pretty-printing back to surface syntax.
//!
//! The printer emits canonical source that re-parses to an equal program
//! (`parse(prog.to_string()) == prog` up to field ordering, which the
//! printer preserves by emitting statements unchanged). Mutated programs
//! are persisted and reported through this printer.

use std::fmt;

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, UnOp, VarRef};

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, init) in self.states.iter().zip(&self.state_inits) {
            if *init == 0 {
                writeln!(f, "state {name};")?;
            } else {
                writeln!(f, "state {name} = {init};")?;
            }
        }
        let mut printer = Printer {
            program: self,
            out: f,
            indent: 0,
            defined_locals: vec![false; self.locals.len()],
        };
        printer.stmts(&self.stmts)
    }
}

struct Printer<'a, 'f1, 'f2> {
    program: &'a Program,
    out: &'f1 mut fmt::Formatter<'f2>,
    indent: usize,
    defined_locals: Vec<bool>,
}

impl Printer<'_, '_, '_> {
    fn pad(&mut self) -> fmt::Result {
        for _ in 0..self.indent {
            write!(self.out, "    ")?;
        }
        Ok(())
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> fmt::Result {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> fmt::Result {
        match s {
            Stmt::Assign(lv, e) => {
                self.pad()?;
                match lv {
                    LValue::Field(i) => write!(self.out, "pkt.{}", self.program.fields[*i])?,
                    LValue::State(i) => write!(self.out, "{}", self.program.states[*i])?,
                    LValue::Local(i) => {
                        if !self.defined_locals[*i] {
                            self.defined_locals[*i] = true;
                            write!(self.out, "int ")?;
                        }
                        write!(self.out, "{}", self.program.locals[*i])?;
                    }
                }
                write!(self.out, " = ")?;
                self.expr(e, 0)?;
                writeln!(self.out, ";")
            }
            Stmt::If(c, t, f) => {
                self.pad()?;
                write!(self.out, "if (")?;
                self.expr(c, 0)?;
                writeln!(self.out, ") {{")?;
                self.indent += 1;
                self.stmts(t)?;
                self.indent -= 1;
                self.pad()?;
                if f.is_empty() {
                    writeln!(self.out, "}}")
                } else {
                    writeln!(self.out, "}} else {{")?;
                    self.indent += 1;
                    self.stmts(f)?;
                    self.indent -= 1;
                    self.pad()?;
                    writeln!(self.out, "}}")
                }
            }
        }
    }

    /// Precedence levels (higher binds tighter), mirroring the parser.
    fn prec(e: &Expr) -> u8 {
        match e {
            Expr::Ternary(..) => 1,
            Expr::Binary(op, ..) => match op {
                BinOp::Or => 2,
                BinOp::And => 3,
                BinOp::BitOr => 4,
                BinOp::BitXor => 5,
                BinOp::BitAnd => 6,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
                BinOp::Add | BinOp::Sub => 8,
                BinOp::Mul | BinOp::Div | BinOp::Rem => 9,
            },
            Expr::Unary(..) => 10,
            Expr::Int(_) | Expr::Var(_) | Expr::Hash(_) => 11,
        }
    }

    fn expr(&mut self, e: &Expr, min_prec: u8) -> fmt::Result {
        let my = Self::prec(e);
        let parens = my < min_prec;
        if parens {
            write!(self.out, "(")?;
        }
        match e {
            Expr::Int(v) => write!(self.out, "{v}")?,
            Expr::Var(r) => match r {
                VarRef::Field(i) => write!(self.out, "pkt.{}", self.program.fields[*i])?,
                VarRef::State(i) => write!(self.out, "{}", self.program.states[*i])?,
                VarRef::Local(i) => write!(self.out, "{}", self.program.locals[*i])?,
            },
            Expr::Hash(args) => {
                write!(self.out, "hash(")?;
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(self.out, ", ")?;
                    }
                    self.expr(a, 0)?;
                }
                write!(self.out, ")")?;
            }
            Expr::Unary(op, x) => {
                write!(
                    self.out,
                    "{}",
                    match op {
                        UnOp::Not => "!",
                        UnOp::Neg => "-",
                    }
                )?;
                self.expr(x, 10)?;
            }
            Expr::Binary(op, a, b) => {
                // Left-associative operators re-parse correctly when the
                // left child is at the same precedence; comparisons are
                // non-associative in the grammar (a single optional
                // comparison per level), so *both* children must be
                // strictly tighter or parenthesized.
                let non_assoc = matches!(
                    op,
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                );
                self.expr(a, if non_assoc { my + 1 } else { my })?;
                write!(self.out, " {} ", op.symbol())?;
                self.expr(b, my + 1)?;
            }
            Expr::Ternary(c, t, f) => {
                self.expr(c, 2)?;
                write!(self.out, " ? ")?;
                self.expr(t, 0)?;
                write!(self.out, " : ")?;
                self.expr(f, 1)?;
            }
        }
        if parens {
            write!(self.out, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parse;

    /// Round-trip: printing then re-parsing yields the same AST.
    fn roundtrip(src: &str) {
        let p1 = parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "printed form:\n{printed}");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("pkt.x = 1 + 2 * 3;");
        roundtrip("pkt.x = (1 + 2) * 3;");
        roundtrip("pkt.x = 1 - 2 - 3;");
        roundtrip("pkt.x = 1 - (2 - 3);");
    }

    #[test]
    fn roundtrip_logic_and_compare() {
        roundtrip("pkt.x = pkt.a < 3 && pkt.b == 4 || !pkt.c;");
        roundtrip("pkt.x = (pkt.a | pkt.b) & pkt.c ^ 3;");
    }

    #[test]
    fn roundtrip_ternary() {
        roundtrip("pkt.x = pkt.a ? 1 : pkt.b ? 2 : 3;");
        roundtrip("pkt.x = (pkt.a ? 1 : 2) + 3;");
    }

    #[test]
    fn roundtrip_if_else_and_states() {
        roundtrip(
            "state count = 0; state p = 3;\n\
             if (count == 9) { count = 0; pkt.sample = 1; }\n\
             else { count = count + 1; pkt.sample = 0; }",
        );
    }

    #[test]
    fn roundtrip_locals_and_hash() {
        roundtrip("int t = hash(pkt.a, pkt.b); pkt.x = t % 4;");
    }

    #[test]
    fn roundtrip_unary_nesting() {
        roundtrip("pkt.x = !(pkt.a + 1); pkt.y = -pkt.b * 2;");
    }

    #[test]
    fn roundtrip_nested_ifs() {
        roundtrip(
            "state s;\n\
             if (pkt.a) { if (pkt.b) { s = 1; } } else { if (pkt.c) { s = 2; } else { s = 3; } }",
        );
    }
}
