//! The transactional reference interpreter.
//!
//! Packet transactions execute atomically: the interpreter consumes the
//! incoming packet fields and the current switch state and produces the
//! outgoing fields and the next state, exactly one packet at a time. Both
//! code generators are judged against this semantics.
//!
//! All arithmetic is unsigned and wraps modulo `2^width`; division follows
//! SMT-LIB (`x/0 = all-ones`, `x%0 = x`), matching `chipmunk-bv` so that
//! interpretation and circuit evaluation agree bit-for-bit.

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, UnOp, VarRef};

/// A packet/state snapshot: the input or output of one transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PacketState {
    /// Packet field values, indexed like [`Program::field_names`].
    pub fields: Vec<u64>,
    /// State variable values, indexed like [`Program::state_names`].
    pub states: Vec<u64>,
}

impl PacketState {
    /// All-zero snapshot shaped for `p`.
    pub fn zeroed(p: &Program) -> PacketState {
        PacketState {
            fields: vec![0; p.field_names().len()],
            states: vec![0; p.state_names().len()],
        }
    }
}

/// Interpreter for a program at a fixed bit width.
pub struct Interpreter<'p> {
    program: &'p Program,
    width: u8,
}

impl<'p> Interpreter<'p> {
    /// Create an interpreter. `width` must be 1..=64.
    pub fn new(program: &'p Program, width: u8) -> Self {
        assert!((1..=64).contains(&width));
        Interpreter { program, width }
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Execute one transaction.
    ///
    /// # Panics
    /// If the snapshot's shape does not match the program.
    pub fn exec(&self, input: &PacketState) -> PacketState {
        assert_eq!(input.fields.len(), self.program.field_names().len());
        assert_eq!(input.states.len(), self.program.state_names().len());
        let m = self.mask();
        let mut env = Env {
            fields: input.fields.iter().map(|v| v & m).collect(),
            states: input.states.iter().map(|v| v & m).collect(),
            locals: vec![0; self.program.local_names().len()],
            mask: m,
        };
        exec_stmts(self.program.stmts(), &mut env);
        PacketState {
            fields: env.fields,
            states: env.states,
        }
    }
}

struct Env {
    fields: Vec<u64>,
    states: Vec<u64>,
    locals: Vec<u64>,
    mask: u64,
}

impl Env {
    fn read(&self, r: VarRef) -> u64 {
        match r {
            VarRef::Field(i) => self.fields[i],
            VarRef::State(i) => self.states[i],
            VarRef::Local(i) => self.locals[i],
        }
    }

    fn write(&mut self, lv: LValue, v: u64) {
        let v = v & self.mask;
        match lv {
            LValue::Field(i) => self.fields[i] = v,
            LValue::State(i) => self.states[i] = v,
            LValue::Local(i) => self.locals[i] = v,
        }
    }
}

fn exec_stmts(stmts: &[Stmt], env: &mut Env) {
    for s in stmts {
        match s {
            Stmt::Assign(lv, e) => {
                let v = eval(e, env);
                env.write(*lv, v);
            }
            Stmt::If(c, t, f) => {
                if eval(c, env) != 0 {
                    exec_stmts(t, env);
                } else {
                    exec_stmts(f, env);
                }
            }
        }
    }
}

fn eval(e: &Expr, env: &Env) -> u64 {
    let m = env.mask;
    match e {
        Expr::Int(v) => v & m,
        Expr::Var(r) => env.read(*r),
        Expr::Hash(args) => {
            let vals: Vec<u64> = args.iter().map(|a| eval(a, env)).collect();
            reference_hash(&vals) & m
        }
        Expr::Unary(UnOp::Not, x) => (eval(x, env) == 0) as u64,
        Expr::Unary(UnOp::Neg, x) => eval(x, env).wrapping_neg() & m,
        Expr::Binary(op, a, b) => {
            let va = eval(a, env);
            let vb = eval(b, env);
            eval_binop(*op, va, vb, m)
        }
        Expr::Ternary(c, t, f) => {
            if eval(c, env) != 0 {
                eval(t, env)
            } else {
                eval(f, env)
            }
        }
    }
}

/// The deterministic hash used when interpreting `hash(...)` directly.
///
/// After [`crate::passes::eliminate_hashes`], programs contain no hash
/// calls and this function is irrelevant to code generation; it exists so
/// un-preprocessed programs still have executable semantics (multiplicative
/// mixing, Knuth's 2654435761).
pub(crate) fn reference_hash(args: &[u64]) -> u64 {
    let mut h: u64 = 0x9e3779b97f4a7c15;
    for &a in args {
        h = h.wrapping_mul(2654435761).wrapping_add(a).rotate_left(13);
    }
    h
}

/// Evaluate one binary operator under the language's semantics (unsigned,
/// wrapping at the mask; SMT-LIB division; logical ops on nonzero-ness).
/// Exposed so downstream compilers (e.g. the Domino baseline's TAC
/// evaluator) share exactly these semantics.
pub fn eval_binop(op: BinOp, a: u64, b: u64, m: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b) & m,
        BinOp::Sub => a.wrapping_sub(b) & m,
        BinOp::Mul => a.wrapping_mul(b) & m,
        BinOp::Div => a.checked_div(b).map_or(m, |v| v & m),
        BinOp::Rem => {
            if b == 0 {
                a
            } else {
                (a % b) & m
            }
        }
        BinOp::Eq => (a == b) as u64,
        BinOp::Ne => (a != b) as u64,
        BinOp::Lt => (a < b) as u64,
        BinOp::Le => (a <= b) as u64,
        BinOp::Gt => (a > b) as u64,
        BinOp::Ge => (a >= b) as u64,
        BinOp::And => (a != 0 && b != 0) as u64,
        BinOp::Or => (a != 0 || b != 0) as u64,
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn run(src: &str, fields: &[u64], states: &[u64], width: u8) -> PacketState {
        let p = parse(src).unwrap();
        let interp = Interpreter::new(&p, width);
        interp.exec(&PacketState {
            fields: fields.to_vec(),
            states: states.to_vec(),
        })
    }

    #[test]
    fn sampling_counts_to_ten() {
        let src = "state count = 0;\n\
                   if (count == 9) { count = 0; pkt.sample = 1; }\n\
                   else { count = count + 1; pkt.sample = 0; }";
        let p = parse(src).unwrap();
        let interp = Interpreter::new(&p, 8);
        let mut st = PacketState {
            fields: vec![0],
            states: vec![0],
        };
        let mut samples = 0;
        for _ in 0..30 {
            st = interp.exec(&st);
            samples += st.fields[0];
        }
        assert_eq!(samples, 3); // every 10th of 30 packets
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        let out = run("pkt.x = pkt.x + 200;", &[100], &[], 8);
        assert_eq!(out.fields[0], (100 + 200) % 256);
        let out = run("pkt.x = pkt.x * 3;", &[200], &[], 8);
        assert_eq!(out.fields[0], (200 * 3) % 256);
        let out = run("pkt.x = 0 - 1;", &[0], &[], 5);
        assert_eq!(out.fields[0], 31);
    }

    #[test]
    fn division_by_zero_is_smtlib() {
        let out = run("pkt.x = 7 / pkt.y; pkt.z = 7 % pkt.y;", &[0, 0, 0], &[], 4);
        assert_eq!(out.fields[0], 15);
        assert_eq!(out.fields[2], 7);
    }

    #[test]
    fn logical_ops_produce_booleans() {
        // First-use order (assignment targets count): a, x, y, b, c.
        let out = run(
            "pkt.a = pkt.x && pkt.y; pkt.b = pkt.x || pkt.y; pkt.c = !pkt.x;",
            &[0, 5, 0, 0, 0],
            &[],
            8,
        );
        assert_eq!(out.fields[0], 0); // 5 && 0
        assert_eq!(out.fields[3], 1); // 5 || 0
        assert_eq!(out.fields[4], 0); // !5
    }

    #[test]
    fn sequential_semantics_within_transaction() {
        // Later statements see earlier writes.
        let out = run("pkt.x = 1; pkt.y = pkt.x + 1;", &[9, 9], &[], 8);
        assert_eq!(out.fields, vec![1, 2]);
    }

    #[test]
    fn state_persists_only_through_returned_snapshot() {
        let src = "state s; s = s + 1; pkt.out = s;";
        let p = parse(src).unwrap();
        let interp = Interpreter::new(&p, 8);
        let s0 = PacketState {
            fields: vec![0],
            states: vec![0],
        };
        let s1 = interp.exec(&s0);
        let s2 = interp.exec(&s1);
        assert_eq!(s1.states, vec![1]);
        assert_eq!(s2.states, vec![2]);
        assert_eq!(s2.fields, vec![2]);
    }

    #[test]
    fn locals_are_zero_initialized_per_packet() {
        let src = "int t = 0; if (pkt.c) { t = 5; } pkt.out = t;";
        let out = run(src, &[1, 0], &[], 8);
        assert_eq!(out.fields[1], 5);
        let out = run(src, &[0, 0], &[], 8);
        assert_eq!(out.fields[1], 0);
    }

    #[test]
    fn ternary_selects() {
        // Field order: y (assignment target), then x.
        let out = run("pkt.y = pkt.x > 3 ? 10 : 20;", &[0, 4], &[], 8);
        assert_eq!(out.fields[0], 10);
        let out = run("pkt.y = pkt.x > 3 ? 10 : 20;", &[0, 2], &[], 8);
        assert_eq!(out.fields[0], 20);
    }

    #[test]
    fn hash_is_deterministic() {
        // Field order: h, a, b.
        let src = "pkt.h = hash(pkt.a, pkt.b);";
        let o1 = run(src, &[0, 3, 4], &[], 16);
        let o2 = run(src, &[0, 3, 4], &[], 16);
        assert_eq!(o1, o2);
        let o3 = run(src, &[0, 4, 3], &[], 16);
        assert_ne!(o1.fields[0], o3.fields[0]); // order-sensitive mixing
    }

    #[test]
    fn inputs_are_masked_on_entry() {
        // Field order: y, x.
        let out = run("pkt.y = pkt.x;", &[0, 0x1ff], &[], 8);
        assert_eq!(out.fields[0], 0xff);
    }
}
