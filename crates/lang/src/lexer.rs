//! Hand-written lexer for the Domino dialect.

use std::fmt;

/// A token with its source position (1-based line and column).
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

/// Token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum TokenKind {
    Int(u64),
    Ident(String),
    KwState,
    KwInt,
    KwIf,
    KwElse,
    KwPkt,
    KwHash,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Dot,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Amp,
    Pipe,
    Caret,
    Bang,
    Question,
    Colon,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(v) => write!(f, "integer `{v}`"),
            Ident(s) => write!(f, "identifier `{s}`"),
            KwState => write!(f, "`state`"),
            KwInt => write!(f, "`int`"),
            KwIf => write!(f, "`if`"),
            KwElse => write!(f, "`else`"),
            KwPkt => write!(f, "`pkt`"),
            KwHash => write!(f, "`hash`"),
            LParen => write!(f, "`(`"),
            RParen => write!(f, "`)`"),
            LBrace => write!(f, "`{{`"),
            RBrace => write!(f, "`}}`"),
            Semi => write!(f, "`;`"),
            Comma => write!(f, "`,`"),
            Dot => write!(f, "`.`"),
            Assign => write!(f, "`=`"),
            Plus => write!(f, "`+`"),
            Minus => write!(f, "`-`"),
            Star => write!(f, "`*`"),
            Slash => write!(f, "`/`"),
            Percent => write!(f, "`%`"),
            EqEq => write!(f, "`==`"),
            NotEq => write!(f, "`!=`"),
            Lt => write!(f, "`<`"),
            Le => write!(f, "`<=`"),
            Gt => write!(f, "`>`"),
            Ge => write!(f, "`>=`"),
            AndAnd => write!(f, "`&&`"),
            OrOr => write!(f, "`||`"),
            Amp => write!(f, "`&`"),
            Pipe => write!(f, "`|`"),
            Caret => write!(f, "`^`"),
            Bang => write!(f, "`!`"),
            Question => write!(f, "`?`"),
            Colon => write!(f, "`:`"),
            Eof => write!(f, "end of input"),
        }
    }
}

/// Lexing error: an unexpected character.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct LexError {
    pub line: u32,
    pub col: u32,
    pub message: String,
}

pub(crate) fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! tok {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let next = if i + 1 < bytes.len() {
            Some(bytes[i + 1] as char)
        } else {
            None
        };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let (sl, sc) = (line, col);
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            line: sl,
                            col: sc,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value: u64 = text.parse().map_err(|_| LexError {
                    line,
                    col,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                    col,
                });
                col += (i - start) as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let kind = match text {
                    "state" => TokenKind::KwState,
                    "int" => TokenKind::KwInt,
                    "if" => TokenKind::KwIf,
                    "else" => TokenKind::KwElse,
                    "pkt" => TokenKind::KwPkt,
                    "hash" => TokenKind::KwHash,
                    _ => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token { kind, line, col });
                col += (i - start) as u32;
            }
            '(' => tok!(TokenKind::LParen, 1),
            ')' => tok!(TokenKind::RParen, 1),
            '{' => tok!(TokenKind::LBrace, 1),
            '}' => tok!(TokenKind::RBrace, 1),
            ';' => tok!(TokenKind::Semi, 1),
            ',' => tok!(TokenKind::Comma, 1),
            '.' => tok!(TokenKind::Dot, 1),
            '?' => tok!(TokenKind::Question, 1),
            ':' => tok!(TokenKind::Colon, 1),
            '+' => tok!(TokenKind::Plus, 1),
            '-' => tok!(TokenKind::Minus, 1),
            '*' => tok!(TokenKind::Star, 1),
            '/' => tok!(TokenKind::Slash, 1),
            '%' => tok!(TokenKind::Percent, 1),
            '^' => tok!(TokenKind::Caret, 1),
            '=' if next == Some('=') => tok!(TokenKind::EqEq, 2),
            '=' => tok!(TokenKind::Assign, 1),
            '!' if next == Some('=') => tok!(TokenKind::NotEq, 2),
            '!' => tok!(TokenKind::Bang, 1),
            '<' if next == Some('=') => tok!(TokenKind::Le, 2),
            '<' => tok!(TokenKind::Lt, 1),
            '>' if next == Some('=') => tok!(TokenKind::Ge, 2),
            '>' => tok!(TokenKind::Gt, 1),
            '&' if next == Some('&') => tok!(TokenKind::AndAnd, 2),
            '&' => tok!(TokenKind::Amp, 1),
            '|' if next == Some('|') => tok!(TokenKind::OrOr, 2),
            '|' => tok!(TokenKind::Pipe, 1),
            other => {
                return Err(LexError {
                    line,
                    col,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        use TokenKind::*;
        assert_eq!(
            kinds("pkt.x = 5;"),
            vec![KwPkt, Dot, Ident("x".into()), Assign, Int(5), Semi, Eof]
        );
    }

    #[test]
    fn distinguishes_compound_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("== = != ! <= < >= > && & || |"),
            vec![EqEq, Assign, NotEq, Bang, Le, Lt, Ge, Gt, AndAnd, Amp, OrOr, Pipe, Eof]
        );
    }

    #[test]
    fn keywords_vs_identifiers() {
        use TokenKind::*;
        assert_eq!(
            kinds("state states if iffy int interval"),
            vec![
                KwState,
                Ident("states".into()),
                KwIf,
                Ident("iffy".into()),
                KwInt,
                Ident("interval".into()),
                Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // comment\n/* multi\nline */ b"),
            vec![Ident("a".into()), Ident("b".into()), Eof]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains('@'));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        let err = lex("/* nope").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_huge_integer() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }
}
