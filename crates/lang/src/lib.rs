//! # chipmunk-lang
//!
//! A Domino-dialect language for *packet transactions*: small imperative
//! programs that run atomically, from start to finish, on every packet
//! (Sivaraman et al., SIGCOMM 2016). This is the input language of both
//! code generators in this workspace — the synthesis-based `chipmunk`
//! compiler and the classical `chipmunk-domino` baseline.
//!
//! The crate provides:
//!
//! * a lexer and recursive-descent parser ([`parse`]),
//! * name resolution and semantic checks ([`Program`] construction),
//! * a transactional interpreter ([`Interpreter`]) defining the reference
//!   semantics `(packet, state) → (packet', state')` at any bit width,
//! * source-to-source passes ([`passes`]): hash elimination (hash results
//!   become read-only metadata fields, mirroring how PISA hash units feed
//!   the ALU grid) and constant folding,
//! * a compiler from programs to `chipmunk-bv` circuits ([`spec`]), used as
//!   the CEGIS specification,
//! * a pretty-printer (the [`std::fmt::Display`] impl of [`Program`]).
//!
//! ## Example
//!
//! ```
//! use chipmunk_lang::parse;
//!
//! let src = r#"
//!     state count = 0;
//!     if (count == 9) {
//!         count = 0;
//!         pkt.sample = 1;
//!     } else {
//!         count = count + 1;
//!         pkt.sample = 0;
//!     }
//! "#;
//! let prog = parse(src).unwrap();
//! assert_eq!(prog.state_names(), ["count"]);
//! assert_eq!(prog.field_names(), ["sample"]);
//! ```

#![warn(missing_docs)]

pub mod ast;
mod interp;
mod lexer;
mod parser;
pub mod passes;
mod pretty;
mod sema;
pub mod spec;

pub use ast::{BinOp, Expr, LValue, Program, Stmt, UnOp, VarRef};
pub use interp::{eval_binop, Interpreter, PacketState};
pub use parser::{parse, ParseError};
pub use sema::SemaError;
