//! Recursive-descent parser with inline name resolution.
//!
//! The grammar (C-subset, no loops or pointers — the restriction that makes
//! packet programs tractable for synthesis, §1 of the paper):
//!
//! ```text
//! program    := item*
//! item       := state_decl | stmt
//! state_decl := "state" IDENT ("=" INT)? ";"
//! stmt       := local_decl | assign | if | block
//! local_decl := "int" IDENT "=" expr ";"
//! assign     := lvalue "=" expr ";"
//! lvalue     := "pkt" "." IDENT | IDENT
//! if         := "if" "(" expr ")" stmt ("else" stmt)?
//! block      := "{" stmt* "}"
//! expr       := or ("?" expr ":" expr)?
//! or         := and ("||" and)*
//! and        := bitor ("&&" bitor)*
//! bitor      := bitxor ("|" bitxor)*
//! bitxor     := bitand ("^" bitand)*
//! bitand     := cmp ("&" cmp)*
//! cmp        := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//! add        := mul (("+"|"-") mul)*
//! mul        := unary (("*"|"/"|"%") unary)*
//! unary      := ("!"|"-") unary | primary
//! primary    := INT | lvalue | "(" expr ")" | "hash" "(" expr ("," expr)* ")"
//! ```
//!
//! Name resolution is single-pass: `state` declarations introduce state
//! variables, `int x = …` introduces locals, and `pkt.f` introduces packet
//! fields on first use (first-use order is the canonical container order).

use std::collections::HashMap;
use std::fmt;

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, UnOp, VarRef};
use crate::lexer::{lex, Token, TokenKind};
use crate::sema;

/// A parse (or resolution, or semantic) error with source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse and resolve a packet transaction.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        line: e.line,
        col: e.col,
        message: e.message,
    })?;
    let mut p = Parser {
        tokens,
        pos: 0,
        fields: Vec::new(),
        field_ids: HashMap::new(),
        states: Vec::new(),
        state_inits: Vec::new(),
        state_ids: HashMap::new(),
        locals: Vec::new(),
        local_ids: HashMap::new(),
    };
    let stmts = p.program()?;
    let prog = Program::from_parts(p.fields, p.states, p.state_inits, p.locals, stmts);
    sema::check(&prog).map_err(|e| ParseError {
        line: 0,
        col: 0,
        message: e.to_string(),
    })?;
    Ok(prog)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    fields: Vec<String>,
    field_ids: HashMap<String, usize>,
    states: Vec<String>,
    state_inits: Vec<u64>,
    state_ids: HashMap<String, usize>,
    locals: Vec<String>,
    local_ids: HashMap<String, usize>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.tokens[self.pos];
        (t.line, t.col)
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn eat(&mut self, kind: TokenKind) -> bool {
        if *self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::Eof {
            if *self.peek() == TokenKind::KwState {
                self.state_decl()?;
            } else {
                stmts.push(self.stmt()?);
            }
        }
        Ok(stmts)
    }

    fn state_decl(&mut self) -> Result<(), ParseError> {
        self.expect(TokenKind::KwState)?;
        let name = self.ident()?;
        if self.state_ids.contains_key(&name) {
            return Err(self.err(format!("state variable `{name}` declared twice")));
        }
        let init = if self.eat(TokenKind::Assign) {
            match self.bump() {
                TokenKind::Int(v) => v,
                other => {
                    return Err(self.err(format!("expected integer initializer, found {other}")))
                }
            }
        } else {
            0
        };
        self.expect(TokenKind::Semi)?;
        self.state_ids.insert(name.clone(), self.states.len());
        self.states.push(name);
        self.state_inits.push(init);
        Ok(())
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::LBrace => {
                // A bare block groups statements; represent as if(1){...}
                // would change semantics of analysis, so instead inline the
                // block contents — a bare block has no binding effect here.
                let stmts = self.block()?;
                // Represent multi-statement blocks via a trivially-true if
                // only when needed; a single statement unwraps.
                match stmts.len() {
                    1 => Ok(stmts.into_iter().next().expect("len checked")),
                    _ => Ok(Stmt::If(Expr::Int(1), stmts, Vec::new())),
                }
            }
            TokenKind::KwInt => {
                self.bump();
                let name = self.ident()?;
                if self.local_ids.contains_key(&name) || self.state_ids.contains_key(&name) {
                    return Err(self.err(format!("`{name}` is already defined")));
                }
                self.expect(TokenKind::Assign)?;
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                let idx = self.locals.len();
                self.local_ids.insert(name.clone(), idx);
                self.locals.push(name);
                Ok(Stmt::Assign(LValue::Local(idx), e))
            }
            TokenKind::KwPkt => {
                let f = self.pkt_field()?;
                self.expect(TokenKind::Assign)?;
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assign(LValue::Field(f), e))
            }
            TokenKind::Ident(name) => {
                self.bump();
                let lv = if let Some(&i) = self.state_ids.get(&name) {
                    LValue::State(i)
                } else if let Some(&i) = self.local_ids.get(&name) {
                    LValue::Local(i)
                } else {
                    return Err(self.err(format!(
                        "`{name}` is not declared; declare it with `state {name};` or `int {name} = …;`"
                    )));
                };
                self.expect(TokenKind::Assign)?;
                let e = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assign(lv, e))
            }
            other => Err(self.err(format!("expected a statement, found {other}"))),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = self.stmt_or_block()?;
        let else_branch = if self.eat(TokenKind::KwElse) {
            self.stmt_or_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If(cond, then_branch, else_branch))
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if *self.peek() == TokenKind::LBrace {
            self.block()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if *self.peek() == TokenKind::Eof {
                return Err(self.err("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn pkt_field(&mut self) -> Result<usize, ParseError> {
        self.expect(TokenKind::KwPkt)?;
        self.expect(TokenKind::Dot)?;
        let name = self.ident()?;
        Ok(*self.field_ids.entry(name.clone()).or_insert_with(|| {
            self.fields.push(name);
            self.fields.len() - 1
        }))
    }

    // ----- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.or_expr()?;
        if self.eat(TokenKind::Question) {
            let t = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let f = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(f)))
        } else {
            Ok(cond)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(TokenKind::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitor_expr()?;
        while self.eat(TokenKind::AndAnd) {
            let rhs = self.bitor_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitxor_expr()?;
        while self.eat(TokenKind::Pipe) {
            let rhs = self.bitxor_expr()?;
            lhs = Expr::bin(BinOp::BitOr, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitand_expr()?;
        while self.eat(TokenKind::Caret) {
            let rhs = self.bitand_expr()?;
            lhs = Expr::bin(BinOp::BitXor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(TokenKind::Amp) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::BitAnd, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::EqEq => Some(BinOp::Eq),
            TokenKind::NotEq => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::bin(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(TokenKind::Bang) {
            let e = self.unary_expr()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(e)))
        } else if self.eat(TokenKind::Minus) {
            let e = self.unary_expr()?;
            Ok(Expr::Unary(UnOp::Neg, Box::new(e)))
        } else {
            self.primary_expr()
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::KwPkt => {
                let f = self.pkt_field()?;
                Ok(Expr::Var(VarRef::Field(f)))
            }
            TokenKind::KwHash => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let mut args = vec![self.expr()?];
                while self.eat(TokenKind::Comma) {
                    args.push(self.expr()?);
                }
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Hash(args))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if let Some(&i) = self.state_ids.get(&name) {
                    Ok(Expr::Var(VarRef::State(i)))
                } else if let Some(&i) = self.local_ids.get(&name) {
                    Ok(Expr::Var(VarRef::Local(i)))
                } else {
                    Err(self.err(format!("`{name}` is not declared")))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LValue;

    #[test]
    fn parses_sampling_program() {
        let p = parse(
            "state count = 0;\n\
             if (count == 9) { count = 0; pkt.sample = 1; }\n\
             else { count = count + 1; pkt.sample = 0; }",
        )
        .unwrap();
        assert_eq!(p.state_names(), ["count"]);
        assert_eq!(p.field_names(), ["sample"]);
        assert_eq!(p.stmts().len(), 1);
        match &p.stmts()[0] {
            Stmt::If(_, t, f) => {
                assert_eq!(t.len(), 2);
                assert_eq!(f.len(), 2);
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn field_order_is_first_use() {
        let p = parse("pkt.b = pkt.a + pkt.c; pkt.a = pkt.b;").unwrap();
        assert_eq!(p.field_names(), ["b", "a", "c"]);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("pkt.x = 1 + 2 * 3;").unwrap();
        // With constant folding not applied, tree should be Add(1, Mul(2,3)).
        match &p.stmts()[0] {
            Stmt::Assign(_, Expr::Binary(BinOp::Add, a, b)) => {
                assert_eq!(**a, Expr::Int(1));
                assert!(matches!(**b, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_below_logic() {
        let p = parse("pkt.x = pkt.a < 3 && pkt.b == 4;").unwrap();
        match &p.stmts()[0] {
            Stmt::Assign(_, Expr::Binary(BinOp::And, a, b)) => {
                assert!(matches!(**a, Expr::Binary(BinOp::Lt, _, _)));
                assert!(matches!(**b, Expr::Binary(BinOp::Eq, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ternary_parses_right_associative() {
        let p = parse("pkt.x = pkt.a ? 1 : pkt.b ? 2 : 3;").unwrap();
        match &p.stmts()[0] {
            Stmt::Assign(_, Expr::Ternary(_, t, f)) => {
                assert_eq!(**t, Expr::Int(1));
                assert!(matches!(**f, Expr::Ternary(_, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn locals_resolve_and_shadowing_is_rejected() {
        let p = parse("int t = 3; pkt.x = t + 1;").unwrap();
        assert_eq!(p.local_names(), ["t"]);
        assert!(matches!(
            p.stmts()[0],
            Stmt::Assign(LValue::Local(0), Expr::Int(3))
        ));
        let err = parse("state t; int t = 1;").unwrap_err();
        assert!(err.message.contains("already defined"));
    }

    #[test]
    fn undeclared_identifier_is_an_error() {
        let err = parse("pkt.x = bogus;").unwrap_err();
        assert!(err.message.contains("not declared"));
        let err2 = parse("bogus = 3;").unwrap_err();
        assert!(err2.message.contains("not declared"));
    }

    #[test]
    fn duplicate_state_is_an_error() {
        let err = parse("state s; state s;").unwrap_err();
        assert!(err.message.contains("declared twice"));
    }

    #[test]
    fn hash_call_parses() {
        let p = parse("state last; last = hash(pkt.sport, pkt.dport) % 8;").unwrap();
        match &p.stmts()[0] {
            Stmt::Assign(LValue::State(0), Expr::Binary(BinOp::Rem, h, _)) => {
                assert!(matches!(**h, Expr::Hash(ref args) if args.len() == 2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse("pkt.x = !!pkt.a; pkt.y = --pkt.b;").unwrap();
        match &p.stmts()[0] {
            Stmt::Assign(_, Expr::Unary(UnOp::Not, inner)) => {
                assert!(matches!(**inner, Expr::Unary(UnOp::Not, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.stmts()[1] {
            Stmt::Assign(_, Expr::Unary(UnOp::Neg, inner)) => {
                assert!(matches!(**inner, Expr::Unary(UnOp::Neg, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_positions_point_at_token() {
        let err = parse("pkt.x = ;").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 9);
    }

    #[test]
    fn if_without_braces() {
        let p = parse("state s; if (pkt.a > 2) s = 1; else s = 0;").unwrap();
        match &p.stmts()[0] {
            Stmt::If(_, t, f) => {
                assert_eq!(t.len(), 1);
                assert_eq!(f.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bare_blocks_inline() {
        let p = parse("{ pkt.x = 1; pkt.y = 2; }").unwrap();
        // Multi-statement bare block becomes if(1){…} to preserve grouping.
        assert_eq!(p.stmts().len(), 1);
        let p2 = parse("{ pkt.x = 1; }").unwrap();
        assert!(matches!(p2.stmts()[0], Stmt::Assign(_, _)));
    }
}
