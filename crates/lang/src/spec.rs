//! Compiling packet transactions into `chipmunk-bv` circuits.
//!
//! The compiled circuit is the *specification* side of the CEGIS
//! equivalence query (Equation 1 of the paper): a function from the
//! incoming packet fields and current state to the outgoing fields and next
//! state. The caller supplies the input terms (so the specification and the
//! sketch share the very same inputs inside one circuit) and receives one
//! output term per field and per state variable.
//!
//! Programs must be hash-free (run
//! [`eliminate_hashes`](crate::passes::eliminate_hashes) first).

use chipmunk_bv::{BvOp, Circuit, TermId};

use crate::ast::{BinOp, Expr, LValue, Program, Stmt, UnOp, VarRef};

/// The output terms of a compiled specification.
#[derive(Clone, Debug)]
pub struct SpecOutputs {
    /// Final value of each packet field, indexed like
    /// [`Program::field_names`].
    pub field_outs: Vec<TermId>,
    /// Final value of each state variable, indexed like
    /// [`Program::state_names`].
    pub state_outs: Vec<TermId>,
}

/// Compile `p` into `circuit`, reading packet fields from `field_ins` and
/// state variables from `state_ins`.
///
/// # Panics
/// * If the program still contains `hash(...)` calls.
/// * If the input slices do not match the program shape.
pub fn compile_spec(
    p: &Program,
    circuit: &mut Circuit,
    field_ins: &[TermId],
    state_ins: &[TermId],
) -> SpecOutputs {
    assert_eq!(field_ins.len(), p.field_names().len(), "field inputs");
    assert_eq!(state_ins.len(), p.state_names().len(), "state inputs");
    let zero = circuit.constant(0);
    let mut env = Env {
        fields: field_ins.to_vec(),
        states: state_ins.to_vec(),
        locals: vec![zero; p.local_names().len()],
    };
    exec_stmts(p.stmts(), circuit, &mut env);
    SpecOutputs {
        field_outs: env.fields,
        state_outs: env.states,
    }
}

#[derive(Clone)]
struct Env {
    fields: Vec<TermId>,
    states: Vec<TermId>,
    locals: Vec<TermId>,
}

impl Env {
    fn read(&self, r: VarRef) -> TermId {
        match r {
            VarRef::Field(i) => self.fields[i],
            VarRef::State(i) => self.states[i],
            VarRef::Local(i) => self.locals[i],
        }
    }

    fn write(&mut self, lv: LValue, t: TermId) {
        match lv {
            LValue::Field(i) => self.fields[i] = t,
            LValue::State(i) => self.states[i] = t,
            LValue::Local(i) => self.locals[i] = t,
        }
    }
}

fn exec_stmts(stmts: &[Stmt], c: &mut Circuit, env: &mut Env) {
    for s in stmts {
        match s {
            Stmt::Assign(lv, e) => {
                let t = compile_val(e, c, env);
                env.write(*lv, t);
            }
            Stmt::If(cond, then_b, else_b) => {
                let cb = compile_bool(cond, c, env);
                let mut then_env = env.clone();
                let mut else_env = env.clone();
                exec_stmts(then_b, c, &mut then_env);
                exec_stmts(else_b, c, &mut else_env);
                // Phi-merge every slot; the circuit's mux simplifier drops
                // merges where both arms are identical.
                for i in 0..env.fields.len() {
                    env.fields[i] = c.mux(cb, then_env.fields[i], else_env.fields[i]);
                }
                for i in 0..env.states.len() {
                    env.states[i] = c.mux(cb, then_env.states[i], else_env.states[i]);
                }
                for i in 0..env.locals.len() {
                    env.locals[i] = c.mux(cb, then_env.locals[i], else_env.locals[i]);
                }
            }
        }
    }
}

/// Compile an expression to a value-width term.
fn compile_val(e: &Expr, c: &mut Circuit, env: &Env) -> TermId {
    match e {
        Expr::Int(v) => c.constant(*v),
        Expr::Var(r) => env.read(*r),
        Expr::Hash(_) => {
            panic!("hash() reached the spec compiler; run passes::eliminate_hashes first")
        }
        Expr::Unary(UnOp::Not, x) => {
            let b = compile_bool(x, c, env);
            let nb = c.not(b);
            c.zext(nb)
        }
        Expr::Unary(UnOp::Neg, x) => {
            let v = compile_val(x, c, env);
            let zero = c.constant(0);
            c.binop(BvOp::Sub, zero, v)
        }
        Expr::Binary(op, a, b) => match bv_of(*op) {
            OpKind::Value(bvop) => {
                let va = compile_val(a, c, env);
                let vb = compile_val(b, c, env);
                c.binop(bvop, va, vb)
            }
            OpKind::Predicate(bvop) => {
                let va = compile_val(a, c, env);
                let vb = compile_val(b, c, env);
                let p = c.binop(bvop, va, vb);
                c.zext(p)
            }
            OpKind::Logical(is_and) => {
                let ba = compile_bool(a, c, env);
                let bb = compile_bool(b, c, env);
                let p = c.binop(if is_and { BvOp::And } else { BvOp::Or }, ba, bb);
                c.zext(p)
            }
        },
        Expr::Ternary(cond, t, f) => {
            let cb = compile_bool(cond, c, env);
            let tv = compile_val(t, c, env);
            let fv = compile_val(f, c, env);
            c.mux(cb, tv, fv)
        }
    }
}

/// Compile an expression to a width-1 boolean (`expr != 0`), fusing
/// predicate shapes to avoid `zext`/`!= 0` round trips.
fn compile_bool(e: &Expr, c: &mut Circuit, env: &Env) -> TermId {
    match e {
        Expr::Int(v) => {
            if *v != 0 {
                c.tru()
            } else {
                c.fals()
            }
        }
        Expr::Unary(UnOp::Not, x) => {
            let b = compile_bool(x, c, env);
            c.not(b)
        }
        Expr::Binary(op, a, b) => match bv_of(*op) {
            OpKind::Predicate(bvop) => {
                let va = compile_val(a, c, env);
                let vb = compile_val(b, c, env);
                c.binop(bvop, va, vb)
            }
            OpKind::Logical(is_and) => {
                let ba = compile_bool(a, c, env);
                let bb = compile_bool(b, c, env);
                c.binop(if is_and { BvOp::And } else { BvOp::Or }, ba, bb)
            }
            OpKind::Value(_) => {
                let v = compile_val(e, c, env);
                let zero = c.constant(0);
                c.binop(BvOp::Ne, v, zero)
            }
        },
        _ => {
            let v = compile_val(e, c, env);
            let zero = c.constant(0);
            c.binop(BvOp::Ne, v, zero)
        }
    }
}

enum OpKind {
    Value(BvOp),
    Predicate(BvOp),
    Logical(bool), // true = and
}

fn bv_of(op: BinOp) -> OpKind {
    match op {
        BinOp::Add => OpKind::Value(BvOp::Add),
        BinOp::Sub => OpKind::Value(BvOp::Sub),
        BinOp::Mul => OpKind::Value(BvOp::Mul),
        BinOp::Div => OpKind::Value(BvOp::UDiv),
        BinOp::Rem => OpKind::Value(BvOp::URem),
        BinOp::BitAnd => OpKind::Value(BvOp::And),
        BinOp::BitOr => OpKind::Value(BvOp::Or),
        BinOp::BitXor => OpKind::Value(BvOp::Xor),
        BinOp::Eq => OpKind::Predicate(BvOp::Eq),
        BinOp::Ne => OpKind::Predicate(BvOp::Ne),
        BinOp::Lt => OpKind::Predicate(BvOp::Ult),
        BinOp::Le => OpKind::Predicate(BvOp::Ule),
        BinOp::Gt => OpKind::Predicate(BvOp::Ugt),
        BinOp::Ge => OpKind::Predicate(BvOp::Uge),
        BinOp::And => OpKind::Logical(true),
        BinOp::Or => OpKind::Logical(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Interpreter, PacketState};
    use crate::parse;
    use chipmunk_bv::InputId;

    /// Compile `src` at `width` and cross-check circuit evaluation against
    /// the interpreter on the given inputs (or exhaustively when the input
    /// space is small enough).
    fn cross_check(src: &str, width: u8) {
        let p = parse(src).unwrap();
        let mut c = Circuit::new(width);
        let field_ins: Vec<TermId> = p
            .field_names()
            .iter()
            .map(|n| c.input(&format!("pkt_{n}")))
            .collect();
        let state_ins: Vec<TermId> = p
            .state_names()
            .iter()
            .map(|n| c.input(&format!("state_{n}")))
            .collect();
        let outs = compile_spec(&p, &mut c, &field_ins, &state_ins);
        let interp = Interpreter::new(&p, width);
        let n_inputs = field_ins.len() + state_ins.len();
        let space = 1u64 << (width as u64 * n_inputs as u64).min(16);
        let samples: Vec<u64> = (0..space).collect();
        let m = c.mask();
        for seed in samples {
            // Derive one value per input from the seed.
            let vals: Vec<u64> = (0..n_inputs)
                .map(|k| (seed >> (k as u64 * width as u64)) & m)
                .collect();
            let inp = PacketState {
                fields: vals[..field_ins.len()].to_vec(),
                states: vals[field_ins.len()..].to_vec(),
            };
            let want = interp.exec(&inp);
            let vals2 = vals.clone();
            let lookup = move |i: InputId| vals2[i.index()];
            let all_outs: Vec<TermId> = outs
                .field_outs
                .iter()
                .chain(outs.state_outs.iter())
                .copied()
                .collect();
            let got = c.eval_many(&all_outs, &lookup);
            let want_flat: Vec<u64> = want
                .fields
                .iter()
                .chain(want.states.iter())
                .copied()
                .collect();
            assert_eq!(got, want_flat, "seed={seed} src=\n{src}");
        }
    }

    #[test]
    fn straightline_arithmetic() {
        cross_check("pkt.y = pkt.x * 3 + 1;", 4);
    }

    #[test]
    fn sampling_program() {
        cross_check(
            "state count;\n\
             if (count == 9) { count = 0; pkt.sample = 1; }\n\
             else { count = count + 1; pkt.sample = 0; }",
            4,
        );
    }

    #[test]
    fn nested_conditionals_and_logic() {
        cross_check(
            "state s;\n\
             if (pkt.a > 2 && s < 3) { s = s + 1; } else { if (!pkt.a) { s = 0; } }",
            3,
        );
    }

    #[test]
    fn ternary_and_locals() {
        cross_check("int t = pkt.a > pkt.b ? pkt.a : pkt.b; pkt.max = t;", 4);
    }

    #[test]
    fn division_and_remainder() {
        cross_check("pkt.q = pkt.a / pkt.b; pkt.r = pkt.a % pkt.b;", 3);
    }

    #[test]
    fn bitwise_ops() {
        cross_check("pkt.x = (pkt.a & pkt.b) | (pkt.a ^ 3);", 4);
    }

    #[test]
    fn negation_and_not() {
        cross_check("pkt.x = -pkt.a; pkt.y = !pkt.a; pkt.z = !!pkt.a;", 4);
    }

    #[test]
    fn read_only_fields_pass_through() {
        // Field order is first-use: y (target), then x.
        let p = parse("pkt.y = pkt.x;").unwrap();
        assert_eq!(p.field_names(), ["y", "x"]);
        let mut c = Circuit::new(8);
        let fy = c.input("y");
        let fx = c.input("x");
        let outs = compile_spec(&p, &mut c, &[fy, fx], &[]);
        assert_eq!(outs.field_outs[0], fx); // y := x
        assert_eq!(outs.field_outs[1], fx); // x never written: passes through
    }

    #[test]
    #[should_panic(expected = "eliminate_hashes")]
    fn hash_panics_without_elimination() {
        let p = parse("pkt.y = hash(pkt.x);").unwrap();
        let mut c = Circuit::new(8);
        let fx = c.input("x");
        let fy = c.input("y");
        compile_spec(&p, &mut c, &[fx, fy], &[]);
    }

    #[test]
    fn if_without_else_merges_with_input() {
        cross_check("state s; if (pkt.a == 1) { s = s + 2; } pkt.out = s;", 3);
    }
}
