//! Abstract syntax for packet transactions.
//!
//! Identifier references are resolved during semantic analysis: an
//! [`Expr::Var`] carries a [`VarRef`] that says whether it names a packet
//! field, a state variable, or a local temporary. The [`Program`] records
//! packet fields and state variables in order of declaration / first use;
//! those orders define the canonical input ordering used by the spec
//! compiler and both code generators.

/// Binary operators, in Domino's C-like surface syntax.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+` (wrapping)
    Add,
    /// `-` (wrapping)
    Sub,
    /// `*` (wrapping)
    Mul,
    /// `/` unsigned division (SMT-LIB semantics on zero divisor)
    Div,
    /// `%` unsigned remainder (SMT-LIB semantics on zero divisor)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (unsigned)
    Lt,
    /// `<=` (unsigned)
    Le,
    /// `>` (unsigned)
    Gt,
    /// `>=` (unsigned)
    Ge,
    /// `&&` (operands interpreted as booleans: nonzero is true)
    And,
    /// `||`
    Or,
    /// `&` bitwise and
    BitAnd,
    /// `|` bitwise or
    BitOr,
    /// `^` bitwise xor
    BitXor,
}

impl BinOp {
    /// Does the operator produce a 0/1 boolean?
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }

    /// Is `a op b == b op a` for all inputs?
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::And
                | BinOp::Or
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
        )
    }

    /// Surface-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// `!` logical not (nonzero becomes 0, zero becomes 1)
    Not,
    /// `-` arithmetic negation (wrapping)
    Neg,
}

/// What an identifier refers to after name resolution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum VarRef {
    /// Packet field with dense index into [`Program::field_names`].
    Field(usize),
    /// State variable with dense index into [`Program::state_names`].
    State(usize),
    /// Local temporary with dense index into [`Program::local_names`].
    Local(usize),
}

/// Expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(u64),
    /// Resolved variable reference.
    Var(VarRef),
    /// `hash(e₁, …, eₙ)`: an opaque hash over the arguments. Eliminated by
    /// [`crate::passes::eliminate_hashes`] before code generation, exactly
    /// as PISA hash units run outside the ALU grid.
    Hash(Vec<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `cond ? then : else`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Number of AST nodes (used by mutation weighting and tests).
    pub fn size(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Var(_) => 1,
            Expr::Hash(args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Unary(_, e) => 1 + e.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
            Expr::Ternary(c, t, f) => 1 + c.size() + t.size() + f.size(),
        }
    }

    /// Does the expression (transitively) read the given reference?
    pub fn reads(&self, r: VarRef) -> bool {
        match self {
            Expr::Int(_) => false,
            Expr::Var(v) => *v == r,
            Expr::Hash(args) => args.iter().any(|a| a.reads(r)),
            Expr::Unary(_, e) => e.reads(r),
            Expr::Binary(_, a, b) => a.reads(r) || b.reads(r),
            Expr::Ternary(c, t, f) => c.reads(r) || t.reads(r) || f.reads(r),
        }
    }

    /// Does the expression contain a `hash(...)` call?
    pub fn contains_hash(&self) -> bool {
        match self {
            Expr::Int(_) | Expr::Var(_) => false,
            Expr::Hash(_) => true,
            Expr::Unary(_, e) => e.contains_hash(),
            Expr::Binary(_, a, b) => a.contains_hash() || b.contains_hash(),
            Expr::Ternary(c, t, f) => c.contains_hash() || t.contains_hash() || f.contains_hash(),
        }
    }
}

/// Assignment targets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LValue {
    /// `pkt.<field>`
    Field(usize),
    /// state variable
    State(usize),
    /// local temporary
    Local(usize),
}

impl LValue {
    /// The matching read-side reference.
    pub fn as_ref(self) -> VarRef {
        match self {
            LValue::Field(i) => VarRef::Field(i),
            LValue::State(i) => VarRef::State(i),
            LValue::Local(i) => VarRef::Local(i),
        }
    }
}

/// Statements.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// `lv = e;` — also used for `int tmp = e;` local definitions (the
    /// definition point is recorded in [`Program::local_names`]).
    Assign(LValue, Expr),
    /// `if (c) { … } else { … }` (else branch may be empty).
    If(Expr, Vec<Stmt>, Vec<Stmt>),
}

impl Stmt {
    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Stmt::Assign(_, e) => 1 + e.size(),
            Stmt::If(c, t, f) => {
                1 + c.size()
                    + t.iter().map(Stmt::size).sum::<usize>()
                    + f.iter().map(Stmt::size).sum::<usize>()
            }
        }
    }

    /// Does the statement (transitively) contain a `hash(...)` call?
    pub fn contains_hash(&self) -> bool {
        match self {
            Stmt::Assign(_, e) => e.contains_hash(),
            Stmt::If(c, t, f) => {
                c.contains_hash()
                    || t.iter().any(Stmt::contains_hash)
                    || f.iter().any(Stmt::contains_hash)
            }
        }
    }
}

/// A packet transaction: declarations plus a statement list executed
/// atomically per packet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    pub(crate) fields: Vec<String>,
    pub(crate) states: Vec<String>,
    pub(crate) state_inits: Vec<u64>,
    pub(crate) locals: Vec<String>,
    pub(crate) stmts: Vec<Stmt>,
    /// A human-readable name (set by the benchmark corpus; empty otherwise).
    pub name: String,
}

impl Program {
    /// Construct a program directly from resolved parts (used by passes and
    /// the mutation engine; most callers should use [`crate::parse`]).
    pub fn from_parts(
        fields: Vec<String>,
        states: Vec<String>,
        state_inits: Vec<u64>,
        locals: Vec<String>,
        stmts: Vec<Stmt>,
    ) -> Program {
        assert_eq!(states.len(), state_inits.len());
        Program {
            fields,
            states,
            state_inits,
            locals,
            stmts,
            name: String::new(),
        }
    }

    /// Packet field names, in first-use order. This order is the canonical
    /// PHV-container assignment used by the synthesizer (§3 of the paper).
    pub fn field_names(&self) -> &[String] {
        &self.fields
    }

    /// State variable names in declaration order (canonical stateful-ALU
    /// row assignment).
    pub fn state_names(&self) -> &[String] {
        &self.states
    }

    /// Declared initial values of state variables (informational; the
    /// equivalence check quantifies over all initial states).
    pub fn state_inits(&self) -> &[u64] {
        &self.state_inits
    }

    /// Local temporary names.
    pub fn local_names(&self) -> &[String] {
        &self.locals
    }

    /// The statement list.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Mutable access for passes.
    pub fn stmts_mut(&mut self) -> &mut Vec<Stmt> {
        &mut self.stmts
    }

    /// Replace the field-name table (used by dead-field pruning; the
    /// caller is responsible for having remapped every field index).
    pub fn set_field_names(&mut self, names: Vec<String>) {
        self.fields = names;
    }

    /// Add a fresh read-only packet field (used by hash elimination),
    /// returning its index.
    pub fn add_field(&mut self, name: impl Into<String>) -> usize {
        self.fields.push(name.into());
        self.fields.len() - 1
    }

    /// Add a fresh local temporary, returning its index.
    pub fn add_local(&mut self, name: impl Into<String>) -> usize {
        self.locals.push(name.into());
        self.locals.len() - 1
    }

    /// Total AST size.
    pub fn size(&self) -> usize {
        self.stmts.iter().map(Stmt::size).sum()
    }

    /// The set of packet fields written anywhere in the program.
    pub fn written_fields(&self) -> Vec<usize> {
        let mut out = Vec::new();
        fn walk(stmts: &[Stmt], out: &mut Vec<usize>) {
            for s in stmts {
                match s {
                    Stmt::Assign(LValue::Field(i), _) => {
                        if !out.contains(i) {
                            out.push(*i);
                        }
                    }
                    Stmt::Assign(_, _) => {}
                    Stmt::If(_, t, f) => {
                        walk(t, out);
                        walk(f, out);
                    }
                }
            }
        }
        walk(&self.stmts, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_size_counts_nodes() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::Int(1),
            Expr::bin(BinOp::Mul, Expr::Var(VarRef::Field(0)), Expr::Int(2)),
        );
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn reads_detects_reference() {
        let e = Expr::Ternary(
            Box::new(Expr::Var(VarRef::State(0))),
            Box::new(Expr::Int(1)),
            Box::new(Expr::Var(VarRef::Field(2))),
        );
        assert!(e.reads(VarRef::State(0)));
        assert!(e.reads(VarRef::Field(2)));
        assert!(!e.reads(VarRef::Field(0)));
    }

    #[test]
    fn written_fields_dedupes_and_recurses() {
        let p = Program::from_parts(
            vec!["a".into(), "b".into()],
            vec![],
            vec![],
            vec![],
            vec![
                Stmt::Assign(LValue::Field(1), Expr::Int(0)),
                Stmt::If(
                    Expr::Int(1),
                    vec![Stmt::Assign(LValue::Field(1), Expr::Int(2))],
                    vec![Stmt::Assign(LValue::Field(0), Expr::Int(3))],
                ),
            ],
        );
        assert_eq!(p.written_fields(), vec![1, 0]);
    }

    #[test]
    fn contains_hash_walks_structure() {
        let s = Stmt::If(
            Expr::Int(1),
            vec![Stmt::Assign(
                LValue::Local(0),
                Expr::Hash(vec![Expr::Var(VarRef::Field(0))]),
            )],
            vec![],
        );
        assert!(s.contains_hash());
        let s2 = Stmt::Assign(LValue::Local(0), Expr::Int(1));
        assert!(!s2.contains_hash());
    }
}
