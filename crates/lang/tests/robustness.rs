//! Robustness properties of the frontend: the parser must never panic on
//! arbitrary input, and the pretty-printer must be a parser inverse on
//! every valid program. Seeded random corpora, 256 cases per property.

use chipmunk_lang::{parse, BinOp, Expr, LValue, Program, Stmt, UnOp, VarRef};
use chipmunk_trace::rng::Xoshiro256;

const BINOPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Eq,
    BinOp::Lt,
    BinOp::Ge,
    BinOp::And,
    BinOp::Or,
    BinOp::BitAnd,
    BinOp::BitOr,
    BinOp::BitXor,
];

fn random_expr(rng: &mut Xoshiro256, depth: u32) -> Expr {
    let leaf = depth == 0 || rng.gen_bool(0.4);
    if leaf {
        match rng.gen_usize(3) {
            0 => Expr::Int(rng.gen_u64_below(100)),
            1 => Expr::Var(VarRef::Field(rng.gen_usize(3))),
            _ => Expr::Var(VarRef::State(rng.gen_usize(2))),
        }
    } else {
        match rng.gen_usize(3) {
            0 => Expr::bin(
                *rng.choose(BINOPS),
                random_expr(rng, depth - 1),
                random_expr(rng, depth - 1),
            ),
            1 => Expr::Unary(
                if rng.gen_bool(0.5) {
                    UnOp::Not
                } else {
                    UnOp::Neg
                },
                Box::new(random_expr(rng, depth - 1)),
            ),
            _ => Expr::Ternary(
                Box::new(random_expr(rng, depth - 1)),
                Box::new(random_expr(rng, depth - 1)),
                Box::new(random_expr(rng, depth - 1)),
            ),
        }
    }
}

fn random_lvalue(rng: &mut Xoshiro256) -> LValue {
    if rng.gen_bool(0.6) {
        LValue::Field(rng.gen_usize(3))
    } else {
        LValue::State(rng.gen_usize(2))
    }
}

fn random_stmt(rng: &mut Xoshiro256, depth: u32) -> Stmt {
    if depth == 0 || rng.gen_bool(0.75) {
        Stmt::Assign(random_lvalue(rng), random_expr(rng, 3))
    } else {
        let then_len = rng.gen_range(1, 2);
        let else_len = rng.gen_usize(2);
        Stmt::If(
            random_expr(rng, 3),
            (0..then_len).map(|_| random_stmt(rng, depth - 1)).collect(),
            (0..else_len).map(|_| random_stmt(rng, depth - 1)).collect(),
        )
    }
}

fn random_program(rng: &mut Xoshiro256) -> Program {
    let n = rng.gen_range(1, 4);
    Program::from_parts(
        vec!["a".into(), "b".into(), "c".into()],
        vec!["s0".into(), "s1".into()],
        vec![0, 0],
        vec![],
        (0..n).map(|_| random_stmt(rng, 2)).collect(),
    )
}

/// The parser returns a Result on arbitrary input — it never panics.
#[test]
fn parser_never_panics() {
    // A character pool mixing ASCII structure, digits, and multi-byte
    // UTF-8, to stress the lexer's slicing.
    let pool: Vec<char> = ('\u{20}'..'\u{7f}')
        .chain(['\n', '\t', 'é', 'λ', '→', '😀', '\u{0}'])
        .collect();
    let mut rng = Xoshiro256::seed_from_u64(0x1a46_0001);
    for _ in 0..256 {
        let len = rng.gen_usize(201);
        let src: String = (0..len).map(|_| *rng.choose(&pool)).collect();
        let _ = parse(&src);
    }
}

/// Domino-flavoured garbage (keywords, braces, operators in random order)
/// also parses or errors gracefully.
#[test]
fn parser_never_panics_on_tokeny_garbage() {
    const TOKENS: &[&str] = &[
        "state", "if", "else", "pkt", "int", "hash", "x", ".", "=", "==", "(", ")", "{", "}", ";",
        "+", "?", ":", "7",
    ];
    let mut rng = Xoshiro256::seed_from_u64(0x1a46_0002);
    for _ in 0..256 {
        let n = rng.gen_usize(40);
        let src = (0..n)
            .map(|_| *rng.choose(TOKENS))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = parse(&src);
    }
}

/// Printing reaches a fixpoint after one parse: the parser renumbers
/// packet fields into first-use order (and drops unreferenced names), so
/// `parse ∘ print` normalizes — but printing the normalized program must
/// reproduce itself exactly, and the program shape must survive.
#[test]
fn pretty_printer_roundtrips() {
    let mut rng = Xoshiro256::seed_from_u64(0x1a46_0003);
    for case in 0..256 {
        let prog = random_program(&mut rng);
        let printed = prog.to_string();
        let reparsed = parse(&printed);
        assert!(reparsed.is_ok(), "case {case}: did not reparse:\n{printed}");
        let normalized = reparsed.unwrap();
        assert_eq!(normalized.stmts().len(), prog.stmts().len(), "case {case}");
        let printed2 = normalized.to_string();
        let reparsed2 = parse(&printed2).expect("normalized form reparses");
        assert_eq!(
            &reparsed2, &normalized,
            "case {case}: not a fixpoint:\n{printed2}"
        );
        assert_eq!(printed2, normalized.to_string(), "case {case}");
    }
}
