//! Robustness properties of the frontend: the parser must never panic on
//! arbitrary input, and the pretty-printer must be a parser inverse on
//! every valid program.

use chipmunk_lang::{parse, BinOp, Expr, LValue, Program, Stmt, UnOp, VarRef};
use proptest::prelude::*;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u64..100).prop_map(Expr::Int),
        (0usize..3).prop_map(|i| Expr::Var(VarRef::Field(i))),
        (0usize..2).prop_map(|i| Expr::Var(VarRef::State(i))),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Rem),
                    Just(BinOp::Eq),
                    Just(BinOp::Lt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::BitAnd),
                    Just(BinOp::BitOr),
                    Just(BinOp::BitXor),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Expr::bin(op, a, b)),
            (prop_oneof![Just(UnOp::Not), Just(UnOp::Neg)], inner.clone())
                .prop_map(|(op, x)| Expr::Unary(op, Box::new(x))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| Expr::Ternary(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let lv = prop_oneof![
        (0usize..3).prop_map(LValue::Field),
        (0usize..2).prop_map(LValue::State),
    ];
    if depth == 0 {
        (lv, arb_expr())
            .prop_map(|(l, e)| Stmt::Assign(l, e))
            .boxed()
    } else {
        prop_oneof![
            3 => (lv, arb_expr()).prop_map(|(l, e)| Stmt::Assign(l, e)),
            1 => (
                arb_expr(),
                prop::collection::vec(arb_stmt(depth - 1), 1..3),
                prop::collection::vec(arb_stmt(depth - 1), 0..2),
            )
                .prop_map(|(c, t, f)| Stmt::If(c, t, f)),
        ]
        .boxed()
    }
}

fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(2), 1..5).prop_map(|stmts| {
        Program::from_parts(
            vec!["a".into(), "b".into(), "c".into()],
            vec!["s0".into(), "s1".into()],
            vec![0, 0],
            vec![],
            stmts,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser returns a Result on arbitrary input — it never panics.
    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = parse(&src);
    }

    /// Domino-flavoured garbage (keywords, braces, operators in random
    /// order) also parses or errors gracefully.
    #[test]
    fn parser_never_panics_on_tokeny_garbage(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("state"), Just("if"), Just("else"), Just("pkt"),
                Just("int"), Just("hash"), Just("x"), Just("."), Just("="),
                Just("=="), Just("("), Just(")"), Just("{"), Just("}"),
                Just(";"), Just("+"), Just("?"), Just(":"), Just("7"),
            ],
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        let _ = parse(&src);
    }

    /// Printing reaches a fixpoint after one parse: the parser renumbers
    /// packet fields into first-use order (and drops unreferenced names),
    /// so `parse ∘ print` normalizes — but printing the normalized program
    /// must reproduce itself exactly, and the program shape must survive.
    #[test]
    fn pretty_printer_roundtrips(prog in arb_program()) {
        let printed = prog.to_string();
        let reparsed = parse(&printed);
        prop_assert!(reparsed.is_ok(), "did not reparse:\n{}", printed);
        let normalized = reparsed.unwrap();
        prop_assert_eq!(normalized.stmts().len(), prog.stmts().len());
        let printed2 = normalized.to_string();
        let reparsed2 = parse(&printed2).expect("normalized form reparses");
        prop_assert_eq!(&reparsed2, &normalized, "not a fixpoint:\n{}", printed2);
        prop_assert_eq!(printed2, normalized.to_string());
    }
}
