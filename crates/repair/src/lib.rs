//! # chipmunk-repair
//!
//! Program-repair hints — a working prototype of the paper's §5.3
//! ("Synthesizing Program Repairs"): *"Small, localized rewrites of the
//! program source code can serve as useful hints to fix many issues.
//! Examples include suggesting edits to a program to fit it into a switch
//! pipeline."*
//!
//! Given a program the classical Domino compiler rejects, [`suggest`]
//! searches the space of small, **semantics-preserving** rewrites (the
//! same rewrite classes as `chipmunk-mutate`, enumerated exhaustively per
//! site instead of sampled) breadth-first, and returns the first rewrite
//! chain that compiles. Because every rewrite step preserves semantics by
//! construction — and the result is re-verified with a complete SAT
//! equivalence check — the hint is safe to apply verbatim.
//!
//! The semantic-distance measure the paper asks for falls out naturally:
//! the number of rewrite steps (`RepairHint::steps`) is the edit distance
//! in rewrite space, and [`suggest`] returns a minimal-distance repair.
//!
//! ```
//! use chipmunk_domino::DominoOptions;
//! use chipmunk_lang::parse;
//! use chipmunk_pisa::stateful::library;
//! use chipmunk_repair::{suggest, RepairOptions};
//!
//! // Domino rejects the commuted accumulation `1 + s`…
//! let rejected = parse("state s; s = 1 + s;").unwrap();
//! let opts = RepairOptions::new(DominoOptions::new(library::raw(4)));
//! let hint = suggest(&rejected, &opts).expect("repairable");
//! // …and the hint is the canonical form a developer should write.
//! assert_eq!(hint.steps.len(), 1);
//! assert!(hint.program.to_string().contains("s + 1"));
//! ```

#![warn(missing_docs)]

use std::collections::HashSet;

use chipmunk_domino::{compile as domino_compile, DominoError, DominoOptions};
use chipmunk_lang::Program;
use chipmunk_mutate::{enumerate, equivalent, MutationKind, ALL_KINDS};
use chipmunk_pisa::ResourceUsage;

/// Search configuration.
#[derive(Clone, Debug)]
pub struct RepairOptions {
    /// Target compiler configuration (hardware description).
    pub domino: DominoOptions,
    /// Maximum rewrite-chain length (semantic distance bound). Depth 2
    /// covers a few thousand candidates on benchmark-sized programs.
    pub max_depth: usize,
    /// Cap on candidate programs examined, a safety valve for large
    /// programs.
    pub max_candidates: usize,
}

impl RepairOptions {
    /// Defaults: depth 2, 20 000 candidates.
    pub fn new(domino: DominoOptions) -> Self {
        RepairOptions {
            domino,
            max_depth: 2,
            max_candidates: 20_000,
        }
    }
}

/// A repair suggestion.
#[derive(Clone, Debug)]
pub struct RepairHint {
    /// The rewritten, compiling program — print it to show the developer.
    pub program: Program,
    /// The rewrite classes applied, in order (the "semantic distance" is
    /// `steps.len()`).
    pub steps: Vec<MutationKind>,
    /// Resources the repaired program uses.
    pub resources: ResourceUsage,
}

/// Why no hint was produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// The program already compiles — nothing to repair. Carries its
    /// resource usage.
    AlreadyCompiles(ResourceUsage),
    /// No rewrite chain within the depth/candidate budget compiles. Carries
    /// the original rejection.
    NoRepairFound(DominoError),
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::AlreadyCompiles(_) => write!(f, "program already compiles"),
            RepairError::NoRepairFound(e) => {
                write!(
                    f,
                    "no repair found within the search budget (rejection: {e})"
                )
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// Search for a minimal semantics-preserving rewrite chain that makes
/// `prog` compile under the given Domino configuration.
pub fn suggest(prog: &Program, opts: &RepairOptions) -> Result<RepairHint, RepairError> {
    let mut search_sp = chipmunk_trace::span!(
        "repair.suggest",
        max_depth = opts.max_depth,
        max_candidates = opts.max_candidates,
    );
    let original_error = match domino_compile(prog, &opts.domino) {
        Ok(out) => {
            search_sp.record("result", "already_compiles");
            return Err(RepairError::AlreadyCompiles(out.resources));
        }
        Err(e) => e,
    };

    // Breadth-first over rewrite chains: depth k is fully explored before
    // depth k+1, so the first hit has minimal semantic distance.
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(prog.to_string());
    let mut frontier: Vec<(Program, Vec<MutationKind>)> = vec![(prog.clone(), Vec::new())];
    let mut examined = 0usize;

    for _depth in 0..opts.max_depth {
        let mut next = Vec::new();
        for (base, steps) in &frontier {
            for &kind in ALL_KINDS {
                for cand in enumerate(kind, base) {
                    if !seen.insert(cand.to_string()) {
                        continue;
                    }
                    examined += 1;
                    chipmunk_trace::counter_add!("repair.candidates.examined", 1);
                    if examined > opts.max_candidates {
                        search_sp.record("result", "budget_exhausted");
                        search_sp.record("examined", examined as u64);
                        return Err(RepairError::NoRepairFound(original_error));
                    }
                    let mut chain = steps.clone();
                    chain.push(kind);
                    let mut cand_sp = chipmunk_trace::span!(
                        "repair.candidate",
                        kind = format!("{kind:?}"),
                        depth = chain.len(),
                    );
                    if let Ok(out) = domino_compile(&cand, &opts.domino) {
                        // Belt and braces: the rewrite classes preserve
                        // semantics by construction, but a hint shown to a
                        // developer must be *proven* equivalent.
                        debug_assert!(equivalent(prog, &cand, 5, 200));
                        if equivalent(prog, &cand, 5, 50) {
                            cand_sp.record("result", "accepted");
                            chipmunk_trace::counter_add!("repair.candidates.accepted", 1);
                            search_sp.record("result", "ok");
                            search_sp.record("examined", examined as u64);
                            search_sp.record("distance", chain.len() as u64);
                            return Ok(RepairHint {
                                program: cand,
                                steps: chain,
                                resources: out.resources,
                            });
                        }
                        cand_sp.record("result", "rejected_inequivalent");
                        chipmunk_trace::counter_add!("repair.candidates.rejected", 1);
                        continue;
                    }
                    cand_sp.record("result", "rejected_uncompilable");
                    chipmunk_trace::counter_add!("repair.candidates.rejected", 1);
                    next.push((cand, chain));
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    search_sp.record("result", "no_repair");
    search_sp.record("examined", examined as u64);
    Err(RepairError::NoRepairFound(original_error))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_lang::parse;
    use chipmunk_pisa::stateful::library;

    fn opts(t: chipmunk_pisa::StatefulAluSpec) -> RepairOptions {
        RepairOptions::new(DominoOptions::new(t))
    }

    #[test]
    fn commuted_accumulation_repairs_in_one_step() {
        let prog = parse("state s; s = 1 + s;").unwrap();
        let hint = suggest(&prog, &opts(library::raw(4))).expect("repairable");
        assert_eq!(hint.steps, vec![MutationKind::CommuteOperands]);
        assert!(equivalent(&prog, &hint.program, 6, 300));
    }

    #[test]
    fn mirrored_comparison_repairs() {
        // The predicate reads the atom's own state, so it must match the
        // template syntactically: `3 > s` has the constant on the wrong
        // side and is rejected; the hint mirrors it to `s < 3`.
        let prog = parse("state s; if (3 > s) { s = s + 1; }").unwrap();
        let hint = suggest(&prog, &opts(library::pred_raw(4))).expect("repairable");
        assert!(hint.steps.contains(&MutationKind::MirrorComparison));
        assert!(equivalent(&prog, &hint.program, 6, 300));
        assert!(hint.program.to_string().contains("s < 3"));
    }

    #[test]
    fn already_compiling_program_is_reported() {
        let prog = parse("state s; s = s + 1;").unwrap();
        match suggest(&prog, &opts(library::raw(4))) {
            Err(RepairError::AlreadyCompiles(r)) => assert_eq!(r.stages_used, 1),
            other => panic!("expected AlreadyCompiles, got {other:?}"),
        }
    }

    #[test]
    fn genuinely_inexpressible_programs_report_no_repair() {
        // Multiplication of two packet fields has no encoding on this
        // hardware; no syntactic rewrite can fix that.
        let prog = parse("pkt.z = pkt.x * pkt.y;").unwrap();
        let mut o = opts(library::raw(4));
        o.max_depth = 2;
        o.max_candidates = 2_000;
        match suggest(&prog, &o) {
            Err(RepairError::NoRepairFound(e)) => {
                assert!(matches!(e, DominoError::UnsupportedOp(_)));
            }
            other => panic!("expected NoRepairFound, got {other:?}"),
        }
    }

    #[test]
    fn hints_have_minimal_distance() {
        // A two-problem program needs two steps; a one-problem program
        // must get a one-step hint even though longer chains also work.
        let prog = parse("state s; s = 1 + s;").unwrap();
        let hint = suggest(&prog, &opts(library::raw(4))).expect("repairable");
        assert_eq!(hint.steps.len(), 1);
    }
}
