//! # chipmunk-superopt
//!
//! A superoptimizer for straightline ALU code — a working prototype of the
//! paper's §5.1 ("Synthesizing Fast Processor Code"): *"a superoptimizing
//! compiler searches over the space of instruction sequences to attempt to
//! find an optimal sequence of instructions (according to a stated
//! objective function such as minimum instruction count) implementing the
//! entire input program."*
//!
//! The processor model is the PISA stateless ALU repurposed as a register
//! machine: registers `r0..r_{k-1}` hold the packet-field inputs, each
//! instruction applies one [`StatelessOp`] to two mux-selected registers
//! (plus an immediate) and appends its result as a new register, and the
//! last register is the output. [`superoptimize`] runs **iterative
//! deepening over the program length** with one CEGIS run per length, so
//! the first synthesized program is provably the shortest (minimum
//! instruction count is the objective function, as in the paper's
//! examples [41, 47, 51]).
//!
//! ```
//! use chipmunk_lang::parse;
//! use chipmunk_superopt::{superoptimize, SuperoptOptions};
//!
//! // x*5 on an adder-only machine: the optimum is 3 adds
//! // (t1 = x+x; t2 = t1+t1; out = t2+x), not the 4 of naive unrolling.
//! let spec = parse("pkt.out = pkt.x * 5;").unwrap();
//! let opts = SuperoptOptions::small_for_tests();
//! let out = superoptimize(&spec, &opts).unwrap();
//! assert_eq!(out.instrs.len(), 3);
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

use chipmunk_bv::{mk_true, Binding, Blaster, BvOp, Circuit, TermId};
use chipmunk_lang::spec::compile_spec;
use chipmunk_lang::{Interpreter, PacketState, Program};
use chipmunk_pisa::{stateless, StatelessAluSpec, StatelessOp};
use chipmunk_sat::{Lit, SolveResult, Solver};

/// Options for a superoptimization run.
#[derive(Clone, Debug)]
pub struct SuperoptOptions {
    /// The instruction set (and immediate width).
    pub alu: StatelessAluSpec,
    /// Longest program to try before giving up.
    pub max_len: usize,
    /// Semantic bit width the output must match the spec at.
    pub width: u8,
    /// Initial CEGIS inputs are sampled below `2^synth_input_bits`.
    pub synth_input_bits: u8,
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Seed for initial-input sampling.
    pub seed: u64,
}

impl SuperoptOptions {
    /// Paper-like defaults: full Banzai ALU, 10-bit semantics.
    pub fn new(alu: StatelessAluSpec) -> Self {
        SuperoptOptions {
            alu,
            max_len: 5,
            width: 10,
            synth_input_bits: 5,
            deadline: None,
            seed: 0xdecaf,
        }
    }

    /// Reduced widths for fast unit tests and doctests.
    pub fn small_for_tests() -> Self {
        let mut o = SuperoptOptions::new(StatelessAluSpec::arith_only(3));
        o.width = 7;
        o.synth_input_bits = 4;
        o
    }
}

/// One register-machine instruction: `r_new = op(r[a], r[b], imm)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Instr {
    /// The ALU operation.
    pub op: StatelessOp,
    /// First source register.
    pub a: usize,
    /// Second source register.
    pub b: usize,
    /// Immediate operand.
    pub imm: u64,
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} r{}", self.op, self.a)?;
        if self.op.uses_b() {
            write!(f, ", r{}", self.b)?;
        }
        if self.op.uses_imm() {
            write!(f, ", #{}", self.imm)?;
        }
        Ok(())
    }
}

/// The synthesized program.
#[derive(Clone, Debug)]
pub struct SuperoptResult {
    /// Instructions in execution order; instruction `i` defines register
    /// `num_inputs + i`, and the last one is the output.
    pub instrs: Vec<Instr>,
    /// Input register count (one per packet field of the spec).
    pub num_inputs: usize,
    /// Program lengths that were proven infeasible before this one.
    pub infeasible_below: usize,
    /// Total CEGIS iterations across all lengths.
    pub iterations: usize,
}

impl SuperoptResult {
    /// Execute the program on concrete inputs.
    pub fn exec(&self, inputs: &[u64], width: u8) -> u64 {
        assert_eq!(inputs.len(), self.num_inputs);
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut regs: Vec<u64> = inputs.iter().map(|v| v & mask).collect();
        for i in &self.instrs {
            let v = stateless::eval_op(i.op, regs[i.a], regs[i.b], i.imm, mask);
            regs.push(v);
        }
        *regs.last().expect("nonempty program")
    }

    /// Assembly-style listing.
    pub fn listing(&self) -> String {
        let mut s = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            s.push_str(&format!("r{} = {}\n", self.num_inputs + i, instr));
        }
        s
    }
}

/// Why superoptimization failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SuperoptError {
    /// No program up to `max_len` instructions implements the spec on this
    /// instruction set.
    Infeasible,
    /// Deadline exhausted.
    Timeout,
    /// The spec writes no packet field (nothing to compute).
    NoOutput,
}

impl fmt::Display for SuperoptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperoptError::Infeasible => write!(f, "no program within max_len implements the spec"),
            SuperoptError::Timeout => write!(f, "superoptimization timed out"),
            SuperoptError::NoOutput => write!(f, "spec writes no packet field"),
        }
    }
}

impl std::error::Error for SuperoptError {}

fn bits_for(n: usize) -> u8 {
    let mut b = 1u8;
    while (1usize << b) < n {
        b += 1;
    }
    b
}

/// Find the shortest instruction sequence implementing `spec` (a stateless
/// program; its first written packet field is the output, its packet
/// fields are the input registers).
pub fn superoptimize(
    spec: &Program,
    opts: &SuperoptOptions,
) -> Result<SuperoptResult, SuperoptError> {
    assert!(
        spec.state_names().is_empty(),
        "superoptimization targets stateless code; stateful programs go through `chipmunk`"
    );
    let mut run_sp =
        chipmunk_trace::span!("superopt.run", max_len = opts.max_len, width = opts.width,);
    let out_field = *spec
        .written_fields()
        .first()
        .ok_or(SuperoptError::NoOutput)?;
    let num_inputs = spec.field_names().len();
    let mut iterations = 0usize;

    for len in 1..=opts.max_len {
        if opts.deadline.is_some_and(|d| Instant::now() >= d) {
            run_sp.record("result", "timeout");
            return Err(SuperoptError::Timeout);
        }
        let mut len_sp = chipmunk_trace::span!("superopt.len", len = len);
        let found = cegis_at_len(spec, out_field, num_inputs, len, opts, &mut iterations);
        len_sp.record(
            "result",
            match &found {
                Ok(Some(_)) => "ok",
                Ok(None) => "infeasible",
                Err(_) => "timeout",
            },
        );
        drop(len_sp);
        match found? {
            Some(instrs) => {
                run_sp.record("result", "ok");
                run_sp.record("optimal_len", len as u64);
                run_sp.record("iterations", iterations as u64);
                return Ok(SuperoptResult {
                    instrs,
                    num_inputs,
                    infeasible_below: len - 1,
                    iterations,
                });
            }
            None => continue,
        }
    }
    run_sp.record("result", "infeasible");
    run_sp.record("iterations", iterations as u64);
    Err(SuperoptError::Infeasible)
}

/// One CEGIS run at a fixed program length. `Ok(None)` = proven infeasible.
fn cegis_at_len(
    spec: &Program,
    out_field: usize,
    num_inputs: usize,
    len: usize,
    opts: &SuperoptOptions,
    iterations: &mut usize,
) -> Result<Option<Vec<Instr>>, SuperoptError> {
    let w = opts.width;
    let interp = Interpreter::new(spec, w);

    // --- Symbolic register machine.
    let mut c = Circuit::new(w);
    let mut hole_meta: Vec<(String, u8)> = Vec::new(); // (name, bits)
    for i in 0..len {
        let regs = num_inputs + i;
        hole_meta.push((format!("op{i}"), opts.alu.opcode_bits()));
        hole_meta.push((format!("a{i}"), bits_for(regs)));
        hole_meta.push((format!("b{i}"), bits_for(regs)));
        hole_meta.push((format!("imm{i}"), opts.alu.imm_bits));
    }
    assert!(
        w >= hole_meta.iter().map(|(_, b)| *b).max().unwrap_or(1),
        "width must cover the widest hole"
    );
    let hole_terms: Vec<TermId> = hole_meta.iter().map(|(n, _)| c.input(n)).collect();
    let input_terms: Vec<TermId> = (0..num_inputs)
        .map(|i| c.input(&format!("in{i}")))
        .collect();

    let mut regs: Vec<TermId> = input_terms.clone();
    for i in 0..len {
        let h = |k: usize| hole_terms[4 * i + k];
        let a = select(&mut c, h(1), &regs);
        let b = select(&mut c, h(2), &regs);
        let out = stateless::symbolic_alu(&opts.alu, &mut c, a, b, h(3), h(0));
        regs.push(out);
    }
    let result = *regs.last().expect("len >= 1");

    // --- Incremental CEGIS.
    let mut solver = Solver::new();
    solver.set_deadline(opts.deadline);
    let tru = mk_true(&mut solver);
    let hole_bits: Vec<Vec<Lit>> = {
        let mut b = Blaster::new(&mut solver, tru);
        hole_meta
            .iter()
            .map(|(_, bits)| b.fresh_bits(*bits))
            .collect()
    };

    let add_input = |solver: &mut Solver, vals: &[u64]| {
        let inp = PacketState {
            fields: {
                let mut f = vec![0u64; num_inputs];
                f.copy_from_slice(vals);
                f
            },
            states: vec![],
        };
        let want = interp.exec(&inp).fields[out_field];
        let mut b = Blaster::new(solver, tru);
        for (k, &t) in hole_terms.iter().enumerate() {
            let mut padded = hole_bits[k].clone();
            while padded.len() < w as usize {
                padded.push(!tru);
            }
            b.bind(c.input_id(t), Binding::Bits(padded));
        }
        for (k, &t) in input_terms.iter().enumerate() {
            b.bind(c.input_id(t), Binding::Const(vals[k]));
        }
        let bits = b.blast(&c, result);
        for (bi, &l) in bits.iter().enumerate() {
            b.assert_bit(l, (want >> bi) & 1 == 1);
        }
    };

    // Seed inputs.
    let small = (1u64 << opts.synth_input_bits.min(w)) - 1;
    let mut s = opts.seed;
    add_input(&mut solver, &vec![0; num_inputs]);
    for _ in 0..3 {
        let vals: Vec<u64> = (0..num_inputs)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 23) & small
            })
            .collect();
        add_input(&mut solver, &vals);
    }

    loop {
        *iterations += 1;
        match solver.solve(&[]) {
            SolveResult::Unsat => return Ok(None),
            SolveResult::Unknown => return Err(SuperoptError::Timeout),
            SolveResult::Sat => {}
        }
        let dec = Blaster::new(&mut solver, tru);
        let hv: Vec<u64> = hole_bits
            .iter()
            .map(|bits| dec.decode(bits).expect("total model"))
            .collect();
        let instrs = decode(&hv, num_inputs, len, &opts.alu);
        let mut cand_sp = chipmunk_trace::span!("superopt.candidate", len = len);

        // Verify: candidate vs spec for all inputs at width w.
        let mut vc = Circuit::new(w);
        let vins: Vec<TermId> = (0..num_inputs)
            .map(|i| vc.input(&format!("in{i}")))
            .collect();
        let mut vregs = vins.clone();
        for ins in &instrs {
            let imm = vc.constant(ins.imm);
            let out = stateless::symbolic_op(&mut vc, ins.op, vregs[ins.a], vregs[ins.b], imm);
            vregs.push(out);
        }
        let spec_outs = compile_spec(spec, &mut vc, &vins, &[]);
        let diff = vc.binop(
            BvOp::Ne,
            *vregs.last().expect("nonempty"),
            spec_outs.field_outs[out_field],
        );
        let mut vsolver = Solver::new();
        vsolver.set_deadline(opts.deadline);
        let vtru = mk_true(&mut vsolver);
        let mut vb = Blaster::new(&mut vsolver, vtru);
        vb.assert_term(&vc, diff);
        let in_bits: Vec<Vec<Lit>> = vins.iter().map(|&t| vb.blast(&vc, t)).collect();
        match vsolver.solve(&[]) {
            SolveResult::Unsat => {
                cand_sp.record("result", "accepted");
                chipmunk_trace::counter_add!("superopt.candidates.accepted", 1);
                return Ok(Some(instrs));
            }
            SolveResult::Unknown => return Err(SuperoptError::Timeout),
            SolveResult::Sat => {
                cand_sp.record("result", "rejected_counterexample");
                chipmunk_trace::counter_add!("superopt.candidates.rejected", 1);
                let vdec = Blaster::new(&mut vsolver, vtru);
                let cex: Vec<u64> = in_bits
                    .iter()
                    .map(|bits| vdec.decode(bits).expect("total"))
                    .collect();
                add_input(&mut solver, &cex);
            }
        }
    }
}

fn select(c: &mut Circuit, sel: TermId, options: &[TermId]) -> TermId {
    let mut acc = options[options.len() - 1];
    for (i, &opt) in options.iter().enumerate().rev().skip(1) {
        let idx = c.constant(i as u64);
        let is_i = c.binop(BvOp::Eq, sel, idx);
        acc = c.mux(is_i, opt, acc);
    }
    acc
}

fn decode(hv: &[u64], num_inputs: usize, len: usize, alu: &StatelessAluSpec) -> Vec<Instr> {
    (0..len)
        .map(|i| {
            let regs = num_inputs + i;
            let clamp = |v: u64, n: usize| (v as usize).min(n - 1);
            Instr {
                op: alu.ops[clamp(hv[4 * i], alu.ops.len())],
                a: clamp(hv[4 * i + 1], regs),
                b: clamp(hv[4 * i + 2], regs),
                imm: hv[4 * i + 3],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_lang::parse;

    fn validate(spec: &Program, out: &SuperoptResult, width: u8) {
        let interp = Interpreter::new(spec, width);
        let out_field = spec.written_fields()[0];
        let mask = (1u64 << width) - 1;
        let mut s = 55u64;
        for _ in 0..500 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            let inputs: Vec<u64> = (0..out.num_inputs)
                .map(|k| (s >> (5 * k + 3)) & mask)
                .collect();
            let want = interp
                .exec(&PacketState {
                    fields: inputs.clone(),
                    states: vec![],
                })
                .fields[out_field];
            assert_eq!(out.exec(&inputs, width), want, "inputs {inputs:?}");
        }
    }

    #[test]
    fn times_five_is_three_adds() {
        // The classic: x*5 with adds only = ((x+x)+(x+x))+x → 3 instrs.
        let spec = parse("pkt.out = pkt.x * 5;").unwrap();
        let opts = SuperoptOptions::small_for_tests();
        let out = superoptimize(&spec, &opts).expect("feasible");
        assert_eq!(out.instrs.len(), 3);
        assert_eq!(out.infeasible_below, 2); // lengths 1 and 2 proven impossible
        validate(&spec, &out, opts.width);
    }

    #[test]
    fn single_instruction_when_possible() {
        let spec = parse("pkt.out = pkt.x + pkt.y;").unwrap();
        let opts = SuperoptOptions::small_for_tests();
        let out = superoptimize(&spec, &opts).expect("feasible");
        assert_eq!(out.instrs.len(), 1);
        validate(&spec, &out, opts.width);
    }

    #[test]
    fn common_subexpression_is_discovered() {
        // 2x + 2y: naive is 3 ops (x+x, y+y, add) or (x+y)*2 — either way
        // the optimum is 2: t = x+y; out = t+t.
        let spec = parse("pkt.out = pkt.x + pkt.x + pkt.y + pkt.y;").unwrap();
        let opts = SuperoptOptions::small_for_tests();
        let out = superoptimize(&spec, &opts).expect("feasible");
        assert_eq!(out.instrs.len(), 2);
        validate(&spec, &out, opts.width);
    }

    #[test]
    fn comparison_needs_richer_isa() {
        let spec = parse("pkt.out = pkt.x < 3;").unwrap();
        // Adder-only ISA cannot express a comparison…
        let mut opts = SuperoptOptions::small_for_tests();
        opts.max_len = 2;
        assert_eq!(
            superoptimize(&spec, &opts).unwrap_err(),
            SuperoptError::Infeasible
        );
        // …the full Banzai ALU does it in one instruction.
        opts.alu = StatelessAluSpec::banzai(3);
        let out = superoptimize(&spec, &opts).expect("feasible");
        assert_eq!(out.instrs.len(), 1);
        validate(&spec, &out, opts.width);
    }

    #[test]
    fn listing_is_readable() {
        let spec = parse("pkt.out = pkt.x + 3;").unwrap();
        let out = superoptimize(&spec, &SuperoptOptions::small_for_tests()).expect("feasible");
        // Fields are [out, x] (assignment targets come first in first-use
        // order), so the single instruction defines r2.
        let listing = out.listing();
        assert!(listing.starts_with("r2 = "), "{listing}");
        assert!(listing.contains("AddImm"), "{listing}");
    }

    #[test]
    #[should_panic(expected = "stateless")]
    fn stateful_specs_are_rejected() {
        let spec = parse("state s; s = s + 1; pkt.out = s;").unwrap();
        let _ = superoptimize(&spec, &SuperoptOptions::small_for_tests());
    }
}
