//! End-to-end test of the `--trace` plumbing: `chipmunkc compile` with a
//! trace file must produce parseable, schema-stable JSONL covering the
//! search, CEGIS, and SAT layers, and `chipmunkc trace-report` must read
//! it back.

use std::path::PathBuf;
use std::process::Command;

use chipmunk_trace::json::Json;

fn scratch(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("chipmunkc-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn compile_emits_wellformed_jsonl_and_report_reads_it() {
    let prog = scratch("prog.chip");
    let trace = scratch("out.jsonl");
    std::fs::write(&prog, "state s; s = s + pkt.x;\n").unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_chipmunkc"))
        .args([
            "compile",
            prog.to_str().unwrap(),
            "--width",
            "6",
            "--max-stages",
            "2",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .status()
        .expect("chipmunkc runs");
    assert!(status.success(), "compile failed");

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!text.trim().is_empty(), "trace is empty");

    let mut kinds = std::collections::BTreeSet::new();
    let mut spans = std::collections::BTreeSet::new();
    for (no, line) in text.lines().enumerate() {
        let rec = Json::parse(line)
            .unwrap_or_else(|e| panic!("line {} is not JSON ({e}): {line}", no + 1));
        // Schema-stable core fields.
        let ts = rec.get("ts_us").and_then(Json::as_u64);
        assert!(ts.is_some(), "line {}: missing ts_us: {line}", no + 1);
        let kind = rec
            .get("kind")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("line {}: missing kind: {line}", no + 1));
        assert!(
            matches!(kind, "open" | "close" | "event" | "counter" | "histogram"),
            "line {}: unknown kind {kind}",
            no + 1
        );
        let span = rec
            .get("span")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("line {}: missing span: {line}", no + 1));
        kinds.insert(kind.to_string());
        if kind == "open" || kind == "close" {
            assert!(
                rec.get("id").and_then(Json::as_u64).is_some(),
                "line {}: span record without id",
                no + 1
            );
            spans.insert(span.to_string());
        }
        if kind == "close" {
            assert!(
                rec.get("dur_us").and_then(Json::as_u64).is_some(),
                "line {}: close without dur_us",
                no + 1
            );
        }
    }
    // The compile path must cover every instrumented layer.
    for want in [
        "search.compile",
        "search.grid",
        "cegis.run",
        "cegis.synth",
        "cegis.verify",
        "sat.solve",
    ] {
        assert!(spans.contains(want), "no `{want}` span in trace");
    }
    assert!(kinds.contains("counter"), "flush() emitted no counters");

    // The report subcommand digests the file.
    let out = Command::new(env!("CARGO_BIN_EXE_chipmunkc"))
        .args(["trace-report", trace.to_str().unwrap()])
        .output()
        .expect("chipmunkc runs");
    assert!(out.status.success(), "trace-report failed");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        report.contains("cegis.run"),
        "report missing spans:\n{report}"
    );
    assert!(
        report.contains("sat.solve"),
        "report missing spans:\n{report}"
    );

    let _ = std::fs::remove_file(&prog);
    let _ = std::fs::remove_file(&trace);
}

/// An unopenable CHIPMUNK_TRACE path must degrade to disabled tracing
/// (one warning, successful compile), not crash. Regression test: the
/// env-init error path once recursed through `disable → flush → enabled`
/// until the stack overflowed.
#[test]
fn bad_trace_env_var_degrades_gracefully() {
    let prog = scratch("prog2.chip");
    std::fs::write(&prog, "pkt.x = pkt.x + 1;\n").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_chipmunkc"))
        .env("CHIPMUNK_TRACE", "/nonexistent-dir/trace.jsonl")
        .args(["compile", prog.to_str().unwrap(), "--width", "6"])
        .output()
        .expect("chipmunkc runs");
    assert!(
        out.status.success(),
        "compile must survive a bad CHIPMUNK_TRACE: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot open CHIPMUNK_TRACE"),
        "expected a warning about the bad path:\n{stderr}"
    );
    let _ = std::fs::remove_file(&prog);
}
