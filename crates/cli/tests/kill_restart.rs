//! Crash-durability test for the job journal, against real processes: a
//! `chipmunkc serve` daemon is SIGKILLed mid-job, a second daemon on the
//! same directories replays the journal, and the client collects the
//! recompiled result with the `poll` op. The conservation law
//! (`submitted == completed + failed + drained + panicked`) must hold on
//! the restarted daemon with the replayed job accounted as `recovered`.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chipmunk_serve::Client;
use chipmunk_trace::json::Json;

fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("chipmunkc-kill-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Start `chipmunkc serve` on an ephemeral port and return the child
/// plus the address it announced on stderr.
fn spawn_serve(dir: &Path, faults: Option<&str>) -> (Child, String) {
    spawn_serve_traced(dir, faults, None)
}

/// [`spawn_serve`], optionally writing the daemon's structured trace to
/// `trace` (JSON Lines) via `CHIPMUNK_TRACE`.
fn spawn_serve_traced(dir: &Path, faults: Option<&str>, trace: Option<&Path>) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_chipmunkc"));
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "1",
        "--cache-dir",
        dir.join("cache").to_str().unwrap(),
        "--journal-dir",
        dir.join("journal").to_str().unwrap(),
    ])
    .stderr(Stdio::piped());
    match faults {
        Some(spec) => {
            eprintln!("fault plan (reproduce with CHIPMUNK_FAULTS): {spec}");
            cmd.env("CHIPMUNK_FAULTS", spec);
        }
        None => {
            cmd.env_remove("CHIPMUNK_FAULTS");
        }
    }
    match trace {
        Some(path) => {
            cmd.env("CHIPMUNK_TRACE", path);
        }
        None => {
            cmd.env_remove("CHIPMUNK_TRACE");
        }
    }
    let mut child = cmd.spawn().expect("serve spawns");
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve announces its address")
            .expect("stderr readable");
        eprintln!("serve: {line}");
        if let Some(rest) = line.strip_prefix("chipmunk-serve listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
    (child, addr)
}

fn fast_options() -> Json {
    Json::obj([
        ("imm", Json::from(3u64)),
        ("width", Json::from(6u64)),
        ("screen_width", Json::from(3u64)),
        ("synth_input_bits", Json::from(3u64)),
        ("num_initial_inputs", Json::from(3u64)),
        ("max_iters", Json::from(64u64)),
        ("seed", Json::from(42u64)),
        ("max_stages", Json::from(2u64)),
        ("timeout_ms", Json::from(60_000u64)),
    ])
}

fn u64_field(resp: &Json, key: &str) -> u64 {
    resp.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key:?} in {resp}"))
}

#[test]
fn sigkilled_daemon_replays_journal_and_poll_collects_the_result() {
    let dir = scratch("replay");
    let victim = "state s; s = s + pkt.x; pkt.y = s;";

    // Daemon A: its single worker stalls for two minutes on the first
    // job, so the job is journaled (write-ahead, fsync'd) but guaranteed
    // unanswered when the SIGKILL lands.
    let (mut daemon_a, addr_a) = spawn_serve(&dir, Some("seed=1;stall@0;stall_ms=120000"));
    let mut client = Client::connect(&addr_a).expect("client connects to daemon A");
    client
        .send_compile(Json::from(1u64), victim, fast_options())
        .expect("job submits");
    // The write-ahead record hits the journal before the job enters the
    // queue; wait until it is on disk, then kill without ceremony.
    let journal_file = dir.join("journal").join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let text = std::fs::read_to_string(&journal_file).unwrap_or_default();
        if text.contains("\"rec\":\"accepted\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never journaled");
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon_a.kill().expect("SIGKILL daemon A");
    let _ = daemon_a.wait();
    drop(client);

    // Daemon B on the same directories: the journal replay re-queues the
    // job and the worker pool recompiles it into the cache.
    let (mut daemon_b, addr_b) = spawn_serve(&dir, None);
    let mut client = Client::connect(&addr_b).expect("client connects to daemon B");
    let deadline = Instant::now() + Duration::from_secs(120);
    let polled = loop {
        let resp = client.poll(victim, fast_options()).expect("poll works");
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(true),
            "poll must not error: {resp}"
        );
        if resp.get("found").and_then(Json::as_bool) == Some(true) {
            break resp;
        }
        assert!(
            Instant::now() < deadline,
            "replayed job never completed: {resp}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        polled
            .get("result")
            .and_then(|r| r.get("pipeline"))
            .is_some(),
        "polled result missing pipeline: {polled}"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(u64_field(&stats, "recovered"), 1, "stats: {stats}");
    assert_eq!(u64_field(&stats, "journal_pending"), 0, "stats: {stats}");
    // Conservation on the restarted daemon: the replayed job is the only
    // submission and it completed.
    assert_eq!(
        u64_field(&stats, "submitted"),
        u64_field(&stats, "completed")
            + u64_field(&stats, "failed")
            + u64_field(&stats, "drained")
            + u64_field(&stats, "panicked"),
        "conservation violated: {stats}"
    );
    assert_eq!(u64_field(&stats, "submitted"), 1, "stats: {stats}");

    let ack = client.shutdown(false).expect("shutdown");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    let status = daemon_b.wait().expect("daemon B exits");
    assert!(status.success(), "daemon B exit: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-plan crash resume: a 3-step plan whose first two depths are
/// infeasible journals those step failures as it goes; a SIGKILL during
/// the third attempt must not lose that progress. The restarted daemon
/// re-derives the plan, matches the journaled fingerprint, and resumes at
/// step 2 — skipping the already-refuted depths — under the *same* trace
/// id the client originally attached.
#[test]
fn sigkill_mid_plan_resumes_at_the_journaled_step_with_the_same_trace() {
    let dir = scratch("mid-plan");
    // A 3-long doubling chain: d = 8·a, and each stage can at most sum
    // two already-computed containers (no shifts, and immediates cannot
    // scale a variable), so depths 1 and 2 are UNSAT (fast, journaled)
    // and depth 3 solves — the window the SIGKILL lands in. A `+ 1`
    // chain would not work here: the solver collapses it to immediates
    // and fits it in one stage.
    let victim = "pkt.b = pkt.a + pkt.a; pkt.c = pkt.b + pkt.b; pkt.d = pkt.c + pkt.c;";
    let options = || {
        Json::obj([
            ("imm", Json::from(3u64)),
            ("width", Json::from(8u64)),
            ("screen_width", Json::from(4u64)),
            ("synth_input_bits", Json::from(4u64)),
            ("num_initial_inputs", Json::from(4u64)),
            ("max_iters", Json::from(64u64)),
            ("seed", Json::from(42u64)),
            ("max_stages", Json::from(3u64)),
            ("timeout_ms", Json::from(120_000u64)),
        ])
    };
    let trace_id = "mid-plan-trace";

    let (mut daemon_a, addr_a) = spawn_serve(&dir, None);
    let mut client = Client::connect(&addr_a).expect("client connects to daemon A");
    client
        .send(&Json::obj([
            ("op", Json::from("compile")),
            ("id", Json::from(1u64)),
            ("program", Json::from(victim)),
            ("options", options()),
            ("trace", Json::from(trace_id)),
        ]))
        .expect("job submits");

    // Wait for both failed-step records (indices 0 and 1), then kill
    // while depth 3 is still solving.
    let journal_file = dir.join("journal").join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let text = std::fs::read_to_string(&journal_file).unwrap_or_default();
        if text.contains("\"step\":0") && text.contains("\"step\":1") {
            break;
        }
        assert!(Instant::now() < deadline, "step records never journaled");
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon_a.kill().expect("SIGKILL daemon A");
    let _ = daemon_a.wait();
    drop(client);

    let snapshot = std::fs::read_to_string(&journal_file).expect("journal snapshot");
    assert!(
        snapshot.contains("\"rec\":\"accepted\"") && snapshot.contains("\"plan\":"),
        "accepted record must carry the plan fingerprint: {snapshot}"
    );
    assert!(
        !snapshot.contains("\"rec\":\"completed\""),
        "depth 3 finished before the kill landed; journal: {snapshot}"
    );

    // Daemon B replays the journal and resumes the plan at step 2.
    let trace_out = dir.join("trace-b.jsonl");
    let (mut daemon_b, addr_b) = spawn_serve_traced(&dir, None, Some(&trace_out));
    let mut client = Client::connect(&addr_b).expect("client connects to daemon B");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client.poll(victim, options()).expect("poll works");
        if resp.get("found").and_then(Json::as_bool) == Some(true) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "resumed job never completed: {resp}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let stats = client.stats().expect("stats");
    assert_eq!(u64_field(&stats, "recovered"), 1, "stats: {stats}");

    // Same trace id: daemon B's span tree for the replayed job is
    // reachable under the id the client attached on daemon A.
    let tree = client.trace(trace_id).expect("trace query");
    assert_eq!(
        tree.get("found").and_then(Json::as_bool),
        Some(true),
        "replayed job lost its trace id: {tree}"
    );

    let ack = client.shutdown(false).expect("shutdown");
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));
    let status = daemon_b.wait().expect("daemon B exits");
    assert!(status.success(), "daemon B exit: {status}");

    // The daemon's own trace records the resume offset: step 2, the first
    // unfinished step of the journaled plan.
    let traced = std::fs::read_to_string(&trace_out).expect("daemon B trace file");
    let resume_line = traced
        .lines()
        .find(|l| l.contains("serve.journal.resume"))
        .unwrap_or_else(|| panic!("no resume event in daemon B trace:\n{traced}"));
    assert!(
        resume_line.contains("\"step\":2"),
        "resume offset is not step 2: {resume_line}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: the shutdown ack must be flushed to the socket before the
/// daemon process exits. Connection writer threads are detached, so
/// joining the accept loop and the workers alone proves nothing about
/// queued responses; after a journal replay the scheduling reliably lost
/// that race and the client saw a bare connection reset instead of the
/// ack. Every round restores the pending journal record so every daemon
/// start performs a replay.
#[test]
fn shutdown_ack_survives_journal_replay() {
    let dir = scratch("shutdown-ack");
    let victim = "pkt.p0 = pkt.a;";

    // Produce one pending journal record: the single worker stalls, so
    // the accepted job is journaled but unanswered when the kill lands.
    let (mut daemon_a, addr_a) = spawn_serve(&dir, Some("seed=1;stall@0;stall_ms=120000"));
    let mut client = Client::connect(&addr_a).expect("client connects to daemon A");
    client
        .send_compile(Json::from(1u64), victim, fast_options())
        .expect("job submits");
    let journal_file = dir.join("journal").join("journal.jsonl");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let text = std::fs::read_to_string(&journal_file).unwrap_or_default();
        if text.contains("\"rec\":\"accepted\"") {
            break;
        }
        assert!(Instant::now() < deadline, "job never journaled");
        std::thread::sleep(Duration::from_millis(20));
    }
    daemon_a.kill().expect("SIGKILL daemon A");
    let _ = daemon_a.wait();
    drop(client);
    let pending = std::fs::read_to_string(&journal_file).expect("journal snapshot");

    for round in 0..5 {
        // Restore the pending record (the previous round's replay marked
        // it completed) and drop the cache so the replay does real work.
        std::fs::write(&journal_file, &pending).expect("journal restored");
        let _ = std::fs::remove_dir_all(dir.join("cache"));
        let (mut daemon, addr) = spawn_serve(&dir, None);
        let mut client = Client::connect(&addr).expect("client connects");
        let ack = client
            .shutdown(false)
            .unwrap_or_else(|e| panic!("round {round}: shutdown ack lost: {e}"));
        assert_eq!(
            ack.get("ok").and_then(Json::as_bool),
            Some(true),
            "round {round}: {ack}"
        );
        let status = daemon.wait().expect("daemon exits");
        assert!(status.success(), "round {round}: exit {status}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
