//! Golden-plan tests: `chipmunkc plan --explain` is a stable contract.
//!
//! The explain rendering is what operators read, what the docs quote, and
//! — via the embedded fingerprint — what the serve journal keys resumable
//! progress on. These tests diff the binary's output verbatim against
//! committed goldens in `tests/golden_plans/`; an intentional planner
//! change must update the goldens in the same commit, which makes plan
//! drift (new strategies, reordered steps, budget changes) reviewable
//! instead of silent.

use std::path::PathBuf;
use std::process::Command;

/// Run `chipmunkc plan <source> --explain <extra flags>` and return stdout.
fn explain(name: &str, source: &str, extra: &[&str]) -> String {
    let dir = std::env::temp_dir().join(format!("chipmunk-golden-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join(format!("{name}.dom"));
    std::fs::write(&file, source).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_chipmunkc"))
        .arg("plan")
        .arg(&file)
        .arg("--explain")
        .args(extra)
        .output()
        .expect("chipmunkc runs");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        out.status.success(),
        "plan --explain failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 output")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_plans")
        .join(name)
}

/// Diff `actual` against the committed golden. Set
/// `CHIPMUNK_UPDATE_GOLDENS=1` to rewrite the goldens from the current
/// output (then review the diff like any other source change).
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("CHIPMUNK_UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with CHIPMUNK_UPDATE_GOLDENS=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "plan --explain drifted from {}; if intentional, regenerate with CHIPMUNK_UPDATE_GOLDENS=1 and commit the diff",
        path.display()
    );
}

const SAMPLING: &str = "state count;
if (count == 9) { count = 0; pkt.sample = 1; }
else { count = count + 1; pkt.sample = 0; }
";

#[test]
fn default_plan_matches_golden() {
    assert_golden("sampling-default.txt", &explain("default", SAMPLING, &[]));
}

#[test]
fn portfolio_plan_matches_golden() {
    assert_golden(
        "sampling-portfolio.txt",
        &explain("portfolio", SAMPLING, &["--portfolio", "--max-stages", "2"]),
    );
}

#[test]
fn budgeted_plan_matches_golden() {
    assert_golden(
        "stateless-budget.txt",
        &explain(
            "budget",
            "pkt.x = pkt.a + pkt.b;\n",
            &["--budget-conflicts", "50000", "--max-stages", "2"],
        ),
    );
}
