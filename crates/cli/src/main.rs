//! `chipmunkc` — the command-line front end of the chipmunk-rs workspace.
//!
//! ```text
//! chipmunkc compile  <file> [--template T] [--imm N] [--width W] [--max-stages K] [--timeout S] [--parallel] [--portfolio] [--slots N] [--json] [--check-proofs] [--trace OUT.jsonl]
//! chipmunkc check-proof <file>
//! chipmunkc plan     <file> [same compile flags] [--explain] [--json]
//! chipmunkc domino   <file> [--template T] [--imm N] [--width W]
//! chipmunkc repair   <file> [--template T] [--imm N] [--depth D] [--trace OUT.jsonl]
//! chipmunkc mutate   <file> [--n N] [--seed S]
//! chipmunkc superopt <file> [--imm N] [--width W] [--max-len L] [--full-alu] [--trace OUT.jsonl]
//! chipmunkc run      <file> [--template T] [--packets N] [--width W] [--trace CSV]
//! chipmunkc trace-report <file.jsonl>
//! chipmunkc serve    [--addr H:P] [--workers N] [--queue-cap N] [--cache-dir DIR] [--cache-max-entries N] [--max-conns N] [--idle-timeout S] [--metrics-addr H:P] [--slow-ms N] [--default-deadline-ms N] [--deadline-grace-ms N] [--brownout-p95-ms N] [--shed-below-priority P] [--watchdog-escalate-ms N] [--trace OUT.jsonl]
//! chipmunkc submit   <file> [--addr H:P] [--template T] [--imm N] [--width W] [--max-stages K] [--timeout S] [--deadline-ms N] [--parallel] [--portfolio] [--priority P] [--trace ID] [--json]
//! chipmunkc submit   --batch <file>... [--addr H:P] [shared compile flags] [--progress] [--json]
//! chipmunkc submit   --status | --stats | --shutdown | --shutdown-now [--addr H:P]
//! chipmunkc cache    [--stats | --compact | --clear] [--addr H:P]
//! chipmunkc trace    --job <trace-id> [--addr H:P] [--json]
//! chipmunkc top      [--addr H:P] [--watch SECS] [--json]
//! ```
//!
//! `compile --trace OUT.jsonl` records a structured execution trace of the
//! whole synthesis stack (CEGIS iterations, SAT solves, bit-blasting,
//! grid-size escalation) as JSON Lines; `trace-report` renders a per-phase
//! time and work breakdown from such a file. Setting the `CHIPMUNK_TRACE`
//! environment variable (a path, or `stderr`) enables the same tracing for
//! every subcommand.
//!
//! `run --trace` replays a CSV packet trace (header row = packet-field
//! names; one packet per line) through the synthesized pipeline instead of
//! random packets, cross-checking every output against the interpreter.
//!
//! `submit --batch` pipelines every listed file over one connection —
//! each request carries an `id`, responses stream back in completion
//! order, and the results are reassembled into input order — so a whole
//! mutation suite costs one round of connection setup (`--progress`
//! prints a running done/cached/failed tally to stderr). `cache`
//! inspects or maintains the running server's result cache (`--compact`
//! rewrites `results.jsonl` down to the retained entries; `--clear`
//! empties both tiers).
//!
//! `plan --explain` prints the compilation schedule that `compile` with
//! the same flags would execute — one line per synthesis attempt
//! (depth × strategy × solver budget), the group structure, and the plan
//! fingerprint the daemon journals for crash-resumable jobs — without
//! solving anything. `compile --portfolio` / `submit --portfolio` race
//! the hole-restriction strategies at each depth and keep the first
//! *certified* winner; `submit --priority P` (0–9) pops ahead of
//! lower-priority jobs in the daemon's queue.
//!
//! Overload control: `submit --deadline-ms N` gives the job an
//! end-to-end deadline the daemon propagates into per-step solver
//! budgets (and the retrying client will not sleep past); `serve
//! --default-deadline-ms` applies one to every job that does not bring
//! its own. `serve --brownout-p95-ms N` degrades service when the
//! queue-wait p95 crosses N ms — cache hits still serve, but fresh work
//! below `--shed-below-priority` is refused with `busy` and a
//! `retry_after_ms` pacing hint. A full queue sheds the youngest
//! lowest-priority queued job (typed `shed` error) to admit a
//! higher-priority newcomer.
//!
//! The daemon's telemetry plane: `serve --metrics-addr H:P` exposes
//! Prometheus text exposition at `/metrics`; `serve --slow-ms N` dumps
//! the span tree of any job slower than N ms to stderr. `submit --trace
//! ID` tags a submission with a caller-chosen trace id (the server
//! assigns one otherwise — every response carries it back); `trace
//! --job ID` prints that job's buffered span tree from the daemon, and
//! `top` renders live latency percentiles, outcome counts, cache hit
//! rate, and solver totals (`--watch SECS` refreshes in a loop).
//!
//! `<file>` holds a packet transaction in the Domino dialect. Templates:
//! `raw`, `pred_raw`, `if_else_raw` (default), `sub`, `nested_ifs`.

use std::process::ExitCode;
use std::time::Duration;

use chipmunk::{compile, layout_names, CompilerOptions};
use chipmunk_domino::{compile as domino_compile, DominoOptions};
use chipmunk_lang::{parse, Interpreter, PacketState, Program};
use chipmunk_pisa::{stateful::library, Pipeline, StatefulAluSpec, StatelessAluSpec};
use chipmunk_repair::{suggest, RepairOptions};
use chipmunk_superopt::{superoptimize, SuperoptOptions};
use chipmunk_trace::json::Json;

struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                // Boolean flags take no value; everything else takes one.
                if matches!(
                    name,
                    "json"
                        | "full-alu"
                        | "parallel"
                        | "portfolio"
                        | "explain"
                        | "status"
                        | "stats"
                        | "shutdown"
                        | "shutdown-now"
                        | "batch"
                        | "compact"
                        | "clear"
                        | "progress"
                        | "check-proofs"
                ) {
                    flags.push((name.to_string(), String::new()));
                } else {
                    let v = raw
                        .next()
                        .ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.push((name.to_string(), v));
                }
            } else {
                positional.push(a);
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad value `{v}`")),
        }
    }
}

fn template(name: &str, imm: u8) -> Result<StatefulAluSpec, String> {
    library::by_name(name, imm).ok_or_else(|| format!("unknown template `{name}`"))
}

/// Build [`CompilerOptions`] from the shared compile flags, starting from
/// [`CompilerOptions::service_defaults`] — the same constructor the serve
/// protocol decoder fills gaps from, so a local `compile`, a `plan`, and
/// a daemon `submit` with the same flags resolve to the same options.
fn compile_options_from_args(args: &Args) -> Result<CompilerOptions, String> {
    let imm: u8 = args.num("imm", CompilerOptions::SERVICE_IMM_BITS)?;
    let mut opts = CompilerOptions::service_defaults();
    opts.stateful = template(
        args.get("template")
            .unwrap_or(CompilerOptions::SERVICE_TEMPLATE),
        imm,
    )?;
    opts.stateless = StatelessAluSpec::banzai(imm);
    opts.cegis.verify_width = args.num("width", CompilerOptions::SERVICE_VERIFY_WIDTH)?;
    opts.cegis.budget = budget_from_args(args)?;
    opts.max_stages = args.num("max-stages", CompilerOptions::SERVICE_MAX_STAGES)?;
    if let Some(slots) = args.get("slots") {
        let n: usize = slots
            .parse()
            .map_err(|_| format!("--slots: bad value `{slots}`"))?;
        opts.slots = Some(n);
    }
    opts.timeout = Some(Duration::from_secs(
        args.num("timeout", CompilerOptions::SERVICE_TIMEOUT_MS / 1000)?,
    ));
    opts.parallel = args.has("parallel");
    opts.portfolio = args.has("portfolio");
    Ok(opts)
}

/// The `--budget-*` solver resource ceilings shared by `compile`, `run`,
/// and `submit`. `0` (the default) means unlimited; a tripped ceiling
/// surfaces as a `timeout`-class error instead of unbounded solving.
fn budget_from_args(args: &Args) -> Result<chipmunk::ResourceBudget, String> {
    let ceiling = |name: &str| -> Result<Option<u64>, String> {
        Ok(match args.num::<u64>(name, 0)? {
            0 => None,
            n => Some(n),
        })
    };
    Ok(chipmunk::ResourceBudget {
        conflicts: ceiling("budget-conflicts")?,
        propagations: ceiling("budget-propagations")?,
        clause_bytes: ceiling("budget-bytes")?,
    })
}

fn load(path: &str) -> Result<Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&src).map_err(|e| format!("{path}:{e}"))
}

fn usage() -> String {
    "usage: chipmunkc <compile|plan|domino|repair|mutate|superopt|run|trace-report|serve|submit|cache|trace|top|check-proof> <file> [options]\n\
     see `chipmunkc help` or the crate docs for options"
        .to_string()
}

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let cmd = match argv.next() {
        Some(c) => c,
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let res = match cmd.as_str() {
        "compile" => cmd_compile(&args),
        "plan" => cmd_plan(&args),
        "domino" => cmd_domino(&args),
        "repair" => cmd_repair(&args),
        "mutate" => cmd_mutate(&args),
        "superopt" => cmd_superopt(&args),
        "run" => cmd_run(&args),
        "trace-report" => cmd_trace_report(&args),
        "serve" => cmd_serve(&args),
        "submit" => cmd_submit(&args),
        "cache" => cmd_cache(&args),
        "trace" => cmd_trace(&args),
        "top" => cmd_top(&args),
        "check-proof" => cmd_check_proof(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    // Every subcommand can trace (via `CHIPMUNK_TRACE` or `--trace`);
    // drain the buffered sink exactly once on the way out.
    chipmunk_trace::flush();
    match res {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn file_arg(args: &Args) -> Result<&str, String> {
    args.positional
        .first()
        .map(|s| s.as_str())
        .ok_or_else(|| "missing <file> argument".to_string())
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("trace") {
        chipmunk_trace::init_jsonl(path).map_err(|e| format!("--trace {path}: {e}"))?;
    }
    let prog = load(file_arg(args)?)?;
    let opts = compile_options_from_args(args)?;
    let out = compile(&prog, &opts);
    chipmunk_trace::flush();
    let out = match out {
        Ok(out) => out,
        Err(chipmunk::CodegenError::Infeasible(cert)) => {
            return Err(report_infeasible(&cert, args.has("check-proofs")));
        }
        Err(e) => return Err(e.to_string()),
    };
    eprintln!(
        "compiled in {:.2?}: {} stage(s), max {} ALU(s)/stage, {} total ALU(s)",
        out.elapsed,
        out.resources.stages_used,
        out.resources.max_alus_per_stage,
        out.resources.total_alus
    );
    if args.has("json") {
        // `fields` / `states` name the indices of `field_to_container`
        // (hash calls add metadata fields, so this can be longer than the
        // source's field list) — same shape as a serve result document.
        let (fields, states) = layout_names(&prog);
        let names = |ns: Vec<String>| Json::Arr(ns.into_iter().map(Json::from).collect());
        let doc = Json::obj([
            (
                "grid",
                Json::obj([
                    ("stages", Json::from(out.grid.stages)),
                    ("slots", Json::from(out.grid.slots)),
                ]),
            ),
            ("resources", out.resources.to_json()),
            ("fields", names(fields)),
            ("states", names(states)),
            (
                "field_to_container",
                Json::Arr(
                    out.decoded
                        .field_to_container
                        .iter()
                        .map(|&c| Json::from(c))
                        .collect(),
                ),
            ),
            ("pipeline", out.decoded.pipeline.to_json()),
        ]);
        println!("{}", doc.to_pretty());
    }
    Ok(())
}

/// Render an infeasible verdict for the terminal. With `check` (the
/// `--check-proofs` flag) the shipped DRAT certificate is re-validated
/// by the in-process checker before the verdict is reported, and a
/// missing or invalid proof becomes a loud error of its own — the mode
/// CI runs so every "cannot fit in k stages" stays trustworthy.
fn report_infeasible(cert: &chipmunk::InfeasibleCert, check: bool) -> String {
    let message = chipmunk::CodegenError::Infeasible(cert.clone()).to_string();
    if !check {
        return message;
    }
    let Some(text) = &cert.proof else {
        let why = cert.reason.as_deref().unwrap_or("no proof text retained");
        return format!("--check-proofs: no proof to re-check ({why}); verdict was: {message}");
    };
    let parsed = match chipmunk::Certificate::parse(text) {
        Ok(c) => c,
        Err(e) => return format!("--check-proofs: shipped proof does not parse: {e}"),
    };
    match parsed.check(&chipmunk::CheckBudget::default()) {
        chipmunk::CheckOutcome::Valid => {
            eprintln!(
                "proof: {} lemma(s), {} byte(s), re-checked valid",
                parsed.num_lemmas(),
                text.len()
            );
            message
        }
        chipmunk::CheckOutcome::Invalid(why) => {
            format!("--check-proofs: shipped proof did NOT validate: {why}")
        }
        chipmunk::CheckOutcome::OutOfBudget => {
            "--check-proofs: proof re-check ran out of budget".to_string()
        }
    }
}

/// `chipmunkc check-proof <file>` — parse a DRAT certificate (the
/// `proof` field of an infeasible response, saved to a file) and run the
/// in-repo checker over it. Exits 0 iff the certificate is valid.
fn cmd_check_proof(args: &Args) -> Result<(), String> {
    let path = file_arg(args)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let cert = chipmunk::Certificate::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    match cert.check(&chipmunk::CheckBudget::default()) {
        chipmunk::CheckOutcome::Valid => {
            println!(
                "{path}: valid UNSAT certificate ({} clause(s), {} hypothesis(es), {} lemma(s))",
                cert.clauses.len(),
                cert.hypotheses.len(),
                cert.num_lemmas()
            );
            Ok(())
        }
        chipmunk::CheckOutcome::Invalid(why) => Err(format!("{path}: INVALID certificate: {why}")),
        chipmunk::CheckOutcome::OutOfBudget => {
            Err(format!("{path}: proof check ran out of budget"))
        }
    }
}

/// `chipmunkc plan <file> [compile flags] [--explain|--json]` — show the
/// [`CompilePlan`](chipmunk::plan::CompilePlan) that `compile` with the
/// same flags would execute, without running any of it. `--explain` (the
/// default) prints the stable human rendering that golden-plan tests
/// diff verbatim; `--json` prints the same schedule structurally.
fn cmd_plan(args: &Args) -> Result<(), String> {
    let prog = load(file_arg(args)?)?;
    let opts = compile_options_from_args(args)?;
    let plan = chipmunk::plan_compilation(&prog, &opts).map_err(|e| e.to_string())?;
    if args.has("json") {
        let steps: Vec<Json> = plan
            .steps
            .iter()
            .map(|s| {
                Json::obj([
                    ("index", Json::from(s.index)),
                    ("stages", Json::from(s.stages)),
                    ("slots", Json::from(s.slots)),
                    ("strategy", Json::from(s.strategy.name())),
                    ("group", Json::from(s.group)),
                ])
            })
            .collect();
        let groups: Vec<Json> = plan
            .groups
            .iter()
            .map(|g| {
                Json::obj([
                    ("mode", Json::from(g.mode.name())),
                    (
                        "steps",
                        Json::Arr(g.steps.iter().map(|&i| Json::from(i)).collect()),
                    ),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("fingerprint", Json::from(plan.fingerprint().as_str())),
            ("steps", Json::Arr(steps)),
            ("groups", Json::Arr(groups)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        print!("{}", plan.explain());
    }
    Ok(())
}

/// Default address shared by `serve` and `submit`.
const SERVE_ADDR: &str = "127.0.0.1:7919";

fn cmd_serve(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("trace") {
        chipmunk_trace::init_jsonl(path).map_err(|e| format!("--trace {path}: {e}"))?;
    }
    let defaults = chipmunk_serve::ServerConfig::default();
    let config = chipmunk_serve::ServerConfig {
        addr: args.get("addr").unwrap_or(SERVE_ADDR).to_string(),
        workers: args.num("workers", defaults.workers.max(1))?,
        queue_capacity: args.num("queue-cap", 64)?,
        cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
        // 0 = unbounded; anything else is an LRU entry cap on both tiers.
        cache_max_entries: match args.num("cache-max-entries", 0usize)? {
            0 => None,
            n => Some(n),
        },
        max_connections: args.num("max-conns", defaults.max_connections)?,
        // 0 = wait forever; anything else is a per-socket idle deadline.
        idle_timeout: match args.num("idle-timeout", 60u64)? {
            0 => None,
            secs => Some(Duration::from_secs(secs)),
        },
        journal_dir: args.get("journal-dir").map(std::path::PathBuf::from),
        metrics_addr: args.get("metrics-addr").map(str::to_string),
        // 0 = never; anything else dumps span trees of slower jobs.
        slow_ms: match args.num("slow-ms", 0u64)? {
            0 => None,
            ms => Some(ms),
        },
        // 0 = no default; jobs without their own deadline_ms wait forever.
        default_deadline_ms: match args.num("default-deadline-ms", 0u64)? {
            0 => None,
            ms => Some(ms),
        },
        deadline_grace_ms: args.num("deadline-grace-ms", defaults.deadline_grace_ms)?,
        // 0 = brownout disabled; anything else is the queue-wait p95
        // threshold (ms) that trips degraded service.
        brownout_p95_ms: match args.num("brownout-p95-ms", 0u64)? {
            0 => None,
            ms => Some(ms),
        },
        shed_below_priority: args.num("shed-below-priority", defaults.shed_below_priority)?,
        watchdog_escalate_ms: args.num("watchdog-escalate-ms", defaults.watchdog_escalate_ms)?,
    };
    let handle =
        chipmunk_serve::start(&config).map_err(|e| format!("bind {}: {e}", config.addr))?;
    eprintln!(
        "chipmunk-serve listening on {} ({} worker(s), queue {} deep, cache {})",
        handle.local_addr(),
        config.workers,
        config.queue_capacity,
        config
            .cache_dir
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "in-memory".to_string()),
    );
    // Separate line: restart supervisors parse the `listening on` prefix.
    if let Some(metrics) = handle.metrics_addr() {
        eprintln!("chipmunk-serve metrics on http://{metrics}/metrics");
    }
    handle.join();
    chipmunk_trace::flush();
    eprintln!("chipmunk-serve stopped");
    Ok(())
}

/// The `options` object shared by single and batch submissions.
/// The request `options` object for `submit`, built from the same flag
/// names and [`CompilerOptions`] service-default constants as the local
/// compile path — the defaults themselves live in one place
/// ([`CompilerOptions::service_defaults`]), which both this encoder and
/// the serve protocol decoder resolve against.
fn submit_options(args: &Args) -> Result<Json, String> {
    let mut options = vec![
        (
            "imm",
            Json::from(args.num::<u8>("imm", CompilerOptions::SERVICE_IMM_BITS)?),
        ),
        (
            "width",
            Json::from(args.num::<u8>("width", CompilerOptions::SERVICE_VERIFY_WIDTH)?),
        ),
        (
            "max_stages",
            Json::from(args.num::<usize>("max-stages", CompilerOptions::SERVICE_MAX_STAGES)?),
        ),
        (
            "timeout_ms",
            Json::from(
                args.num::<u64>("timeout", CompilerOptions::SERVICE_TIMEOUT_MS / 1000)? * 1000,
            ),
        ),
        (
            "template",
            Json::from(
                args.get("template")
                    .unwrap_or(CompilerOptions::SERVICE_TEMPLATE),
            ),
        ),
        ("parallel", Json::Bool(args.has("parallel"))),
        ("portfolio", Json::Bool(args.has("portfolio"))),
    ];
    if let Some(slots) = args.get("slots") {
        let n: usize = slots
            .parse()
            .map_err(|_| format!("--slots: bad value `{slots}`"))?;
        options.push(("slots", Json::from(n)));
    }
    // Only sent when asked for: an absent field takes the server's
    // `--default-deadline-ms` (or no deadline at all).
    if let Some(ms) = args.get("deadline-ms") {
        let n: u64 = ms
            .parse()
            .map_err(|_| format!("--deadline-ms: bad value `{ms}`"))?;
        options.push(("deadline_ms", Json::from(n)));
    }
    let budget = budget_from_args(args)?;
    for (key, ceiling) in [
        ("budget_conflicts", budget.conflicts),
        ("budget_propagations", budget.propagations),
        ("budget_bytes", budget.clause_bytes),
    ] {
        if let Some(n) = ceiling {
            options.push((key, Json::from(n)));
        }
    }
    Ok(Json::obj(options))
}

/// The caller-side retry budget matching `--deadline-ms`: once a job
/// carries an end-to-end deadline, sleeping past it chasing `busy`
/// bounces is wasted time, so the retrying client gets the same bound.
fn client_deadline(args: &Args) -> Result<Option<Duration>, String> {
    match args.get("deadline-ms") {
        None => Ok(None),
        Some(ms) => ms
            .parse::<u64>()
            .map(|n| Some(Duration::from_millis(n)))
            .map_err(|_| format!("--deadline-ms: bad value `{ms}`")),
    }
}

/// The `--priority` queue level for `submit` (0–9, default 0): higher
/// levels pop from the daemon's job queue first, FIFO within a level.
fn priority_from_args(args: &Args) -> Result<u8, String> {
    let p: u8 = args.num("priority", 0)?;
    if p > chipmunk_serve::protocol::MAX_PRIORITY {
        return Err(format!(
            "--priority must be 0..={}",
            chipmunk_serve::protocol::MAX_PRIORITY
        ));
    }
    Ok(p)
}

/// The retry policy for `submit` commands: bounded exponential backoff
/// with full jitter, tunable via `--retries` (0 disables). The jitter
/// seed mixes in the process id so concurrent suite runs bounced by the
/// same busy window fan out instead of reconnecting in lockstep.
fn retry_policy(args: &Args) -> Result<chipmunk_serve::RetryPolicy, String> {
    let mut policy = chipmunk_serve::RetryPolicy::default();
    policy.max_retries = args.num("retries", policy.max_retries)?;
    policy.seed ^= u64::from(std::process::id());
    Ok(policy)
}

/// Pipeline every listed file over one connection: send all requests up
/// front (id = input index), then collect responses — which may arrive in
/// completion order, e.g. cache hits first — and reassemble by id.
/// Every file gets a per-file outcome (an unreadable file or a failed
/// compile does not abort the rest), and any failure makes the exit
/// status non-zero with a summary.
fn cmd_submit_batch(args: &Args, addr: &str) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("submit --batch needs at least one <file>".to_string());
    }
    let options = submit_options(args)?;
    // Read everything up front; a poisoned file becomes that file's
    // outcome instead of stopping the suite at first failure.
    let mut outcomes: Vec<Option<Json>> = Vec::with_capacity(args.positional.len());
    let mut programs: Vec<String> = Vec::new();
    let mut submitted_idx: Vec<usize> = Vec::new();
    for (i, path) in args.positional.iter().enumerate() {
        match std::fs::read_to_string(path) {
            Ok(source) => {
                outcomes.push(None);
                programs.push(source);
                submitted_idx.push(i);
            }
            Err(e) => outcomes.push(Some(Json::obj([
                ("ok", Json::Bool(false)),
                ("error", Json::from("io")),
                ("message", Json::from(format!("{path}: {e}").as_str())),
            ]))),
        }
    }
    if !programs.is_empty() {
        let mut client = chipmunk_serve::RetryingClient::new(addr, retry_policy(args)?);
        client.set_priority(priority_from_args(args)?);
        client.set_deadline(client_deadline(args)?);
        let responses = if args.has("progress") {
            client.pipeline_with_progress(&programs, &options, |p| {
                eprintln!(
                    "progress: {}/{} done ({} cached, {} failed{})",
                    p.done,
                    p.total,
                    p.cached,
                    p.failed,
                    if p.retries > 0 {
                        format!(", {} retried", p.retries)
                    } else {
                        String::new()
                    },
                );
            })
        } else {
            client.pipeline(&programs, &options)
        }
        .map_err(|e| format!("{addr}: {e} (is `chipmunkc serve` running?)"))?;
        if client.retries() > 0 {
            eprintln!("(retried {} transient failure(s))", client.retries());
        }
        for (slot, resp) in submitted_idx.into_iter().zip(responses) {
            outcomes[slot] = Some(resp);
        }
    }
    let mut failures = 0usize;
    for (path, resp) in args.positional.iter().zip(&outcomes) {
        let resp = resp.as_ref().expect("every file has an outcome");
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            let cached = resp.get("cached").and_then(Json::as_bool) == Some(true);
            eprintln!(
                "{path}: {} in {} ms (queued {} ms), key {}",
                if cached { "cache hit" } else { "compiled" },
                resp.get("synth_ms").and_then(Json::as_u64).unwrap_or(0),
                resp.get("wait_ms").and_then(Json::as_u64).unwrap_or(0),
                resp.get("key").and_then(Json::as_str).unwrap_or("?"),
            );
        } else {
            failures += 1;
            eprintln!(
                "{path}: error: {} ({})",
                resp.get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("request failed"),
                resp.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown"),
            );
        }
    }
    if args.has("json") {
        let all: Vec<Json> = outcomes.into_iter().map(Option::unwrap).collect();
        println!("{}", Json::Arr(all).to_pretty());
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} submissions failed",
            args.positional.len()
        ));
    }
    Ok(())
}

fn cmd_cache(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or(SERVE_ADDR);
    let action = match (args.has("compact"), args.has("clear")) {
        (true, true) => return Err("pick one of --compact / --clear".to_string()),
        (true, false) => "compact",
        (false, true) => "clear",
        (false, false) => "stats",
    };
    let mut client = chipmunk_serve::Client::connect(addr)
        .map_err(|e| format!("connect {addr}: {e} (is `chipmunkc serve` running?)"))?;
    let response = client.cache(action).map_err(|e| format!("{addr}: {e}"))?;
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!(
            "server: {} ({})",
            response
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("request failed"),
            response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown"),
        ));
    }
    println!("{}", response.to_pretty());
    Ok(())
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or(SERVE_ADDR);
    if args.has("batch") {
        return cmd_submit_batch(args, addr);
    }
    let response = if args.has("status")
        || args.has("stats")
        || args.has("shutdown")
        || args.has("shutdown-now")
    {
        // Control ops are not retried: probing or stopping a server that
        // is down should say so immediately.
        let mut client = chipmunk_serve::Client::connect(addr)
            .map_err(|e| format!("connect {addr}: {e} (is `chipmunkc serve` running?)"))?;
        if args.has("status") {
            client.status()
        } else if args.has("stats") {
            client.stats()
        } else {
            client.shutdown(args.has("shutdown-now"))
        }
        .map_err(|e| format!("{addr}: {e}"))?
    } else {
        // Compiles are idempotent under the content-addressed cache, so
        // transient failures (busy, queue_full, a reset connection) are
        // retried with jittered backoff.
        let path = file_arg(args)?;
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let options = submit_options(args)?;
        let priority = priority_from_args(args)?;
        if let Some(trace_id) = args.get("trace") {
            // A caller-chosen trace id pins one submission to one server
            // span tree, so retrying under the same id would conflate
            // attempts — this path submits exactly once.
            let mut client = chipmunk_serve::Client::connect(addr)
                .map_err(|e| format!("connect {addr}: {e} (is `chipmunkc serve` running?)"))?;
            client.set_priority(priority);
            client
                .compile_traced(&source, options, Some(trace_id))
                .map_err(|e| format!("{addr}: {e}"))?
        } else {
            let mut client = chipmunk_serve::RetryingClient::new(addr, retry_policy(args)?);
            client.set_priority(priority);
            client.set_deadline(client_deadline(args)?);
            let resp = client
                .compile(&source, &options)
                .map_err(|e| format!("{addr}: {e} (is `chipmunkc serve` running?)"))?;
            if client.retries() > 0 {
                eprintln!("(retried {} transient failure(s))", client.retries());
            }
            resp
        }
    };
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!(
            "server: {} ({})",
            response
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("request failed"),
            response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown"),
        ));
    }
    if let Some(cached) = response.get("cached").and_then(Json::as_bool) {
        eprintln!(
            "{} in {} ms (queued {} ms), key {}, trace {}",
            if cached { "cache hit" } else { "compiled" },
            response.get("synth_ms").and_then(Json::as_u64).unwrap_or(0),
            response.get("wait_ms").and_then(Json::as_u64).unwrap_or(0),
            response.get("key").and_then(Json::as_str).unwrap_or("?"),
            response.get("trace").and_then(Json::as_str).unwrap_or("?"),
        );
    }
    if args.has("json") || response.get("cached").is_none() {
        println!("{}", response.to_pretty());
    }
    Ok(())
}

/// Render one span-tree node as an indented line plus its events, then
/// recurse into its children. `fields` are the open-time annotations,
/// `close_fields` (after `=>`) the ones recorded at close; a node with
/// no `dur_us` is still open (or its close expired from the ring).
fn render_span_tree(node: &Json, depth: usize) {
    let pad = "  ".repeat(depth);
    let name = node.get("span").and_then(Json::as_str).unwrap_or("?");
    let dur = match node.get("dur_us").and_then(Json::as_u64) {
        Some(us) => format!("{:.1} ms", us as f64 / 1000.0),
        None => "open".to_string(),
    };
    let mut line = format!("{pad}{name} [{dur}]");
    if let Some(f) = node.get("fields") {
        line.push(' ');
        line.push_str(&f.to_compact());
    }
    if let Some(f) = node.get("close_fields") {
        line.push_str(" => ");
        line.push_str(&f.to_compact());
    }
    println!("{line}");
    if let Some(Json::Arr(events)) = node.get("events") {
        for ev in events {
            println!(
                "{pad}  · {} {}",
                ev.get("span").and_then(Json::as_str).unwrap_or("?"),
                ev.get("fields").map(Json::to_compact).unwrap_or_default(),
            );
        }
    }
    if let Some(Json::Arr(children)) = node.get("children") {
        for child in children {
            render_span_tree(child, depth + 1);
        }
    }
}

/// `chipmunkc trace --job <trace-id>`: fetch the buffered span tree for
/// one job from the daemon's trace ring and print it indented (or raw
/// with `--json`).
fn cmd_trace(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or(SERVE_ADDR);
    let trace_id = args
        .get("job")
        .ok_or_else(|| "trace needs --job <trace-id>".to_string())?;
    let mut client = chipmunk_serve::Client::connect(addr)
        .map_err(|e| format!("connect {addr}: {e} (is `chipmunkc serve` running?)"))?;
    let response = client.trace(trace_id).map_err(|e| format!("{addr}: {e}"))?;
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(format!(
            "server: {} ({})",
            response
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("request failed"),
            response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown"),
        ));
    }
    if response.get("found").and_then(Json::as_bool) != Some(true) {
        return Err(format!(
            "no buffered spans for trace id `{trace_id}` (expired from the ring, or never seen)"
        ));
    }
    let tree = response
        .get("tree")
        .ok_or_else(|| "server sent no span tree".to_string())?;
    if args.has("json") {
        println!("{}", tree.to_pretty());
    } else {
        println!("trace {trace_id}");
        render_span_tree(tree, 0);
    }
    Ok(())
}

/// One `top` frame: latency percentiles per stage, outcome counts,
/// cache hit rate, solver totals, and the daemon's queue state.
fn render_top(resp: &Json) {
    let count = |doc: &Json, key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "jobs: {} submitted, {} completed, {} failed, {} served from cache",
        count(resp, "submitted"),
        count(resp, "completed"),
        count(resp, "failed"),
        count(resp, "served_cached"),
    );
    let hit_rate = match resp.get("cache_hit_rate").and_then(Json::as_f64) {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "n/a".to_string(),
    };
    println!(
        "queue: {} deep, {} in flight; cache hit rate {}",
        count(resp, "queue_depth"),
        count(resp, "in_flight"),
        hit_rate,
    );
    if let Some(outcomes) = resp.get("outcomes") {
        println!(
            "outcomes: fresh={} cached={} remapped={} failed={}",
            count(outcomes, "fresh"),
            count(outcomes, "cached"),
            count(outcomes, "remapped"),
            count(outcomes, "failed"),
        );
    }
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10}",
        "latency", "count", "p50", "p95", "p99"
    );
    let ms = |summary: &Json, key: &str| match summary.get(key).and_then(Json::as_u64) {
        Some(us) => format!("{:.1} ms", us as f64 / 1000.0),
        None => "-".to_string(),
    };
    for stage in ["queue_wait", "compile", "certify", "remap", "e2e"] {
        match resp.get("stages").and_then(|s| s.get(stage)) {
            Some(summary) if !matches!(summary, Json::Null) => println!(
                "{:<12} {:>8} {:>10} {:>10} {:>10}",
                stage,
                count(summary, "count"),
                ms(summary, "p50_us"),
                ms(summary, "p95_us"),
                ms(summary, "p99_us"),
            ),
            _ => println!("{stage:<12} {:>8} {:>10} {:>10} {:>10}", 0, "-", "-", "-"),
        }
    }
    if let Some(solver) = resp.get("solver") {
        println!(
            "solver: {} conflicts, {} propagations, {} clause bytes, {} budget trips",
            count(solver, "conflicts"),
            count(solver, "propagations"),
            count(solver, "clause_bytes"),
            count(solver, "budget_trips"),
        );
        println!(
            "verify: {} conflicts, {} propagations",
            count(solver, "verify_conflicts"),
            count(solver, "verify_propagations"),
        );
    }
    match resp.get("metrics_addr").and_then(Json::as_str) {
        Some(addr) => println!("metrics: http://{addr}/metrics"),
        None => println!("metrics: disabled"),
    }
    println!(
        "trace ring: {} span record(s) buffered, {} dropped",
        count(resp, "trace_buffered"),
        count(resp, "trace_dropped"),
    );
}

/// `chipmunkc top`: render the daemon's `telemetry` op — latency SLO
/// percentiles, outcome counts, cache hit rate, and solver totals.
/// `--watch SECS` reconnects and redraws in a loop.
fn cmd_top(args: &Args) -> Result<(), String> {
    let addr = args.get("addr").unwrap_or(SERVE_ADDR);
    let watch: u64 = args.num("watch", 0)?;
    loop {
        let mut client = chipmunk_serve::Client::connect(addr)
            .map_err(|e| format!("connect {addr}: {e} (is `chipmunkc serve` running?)"))?;
        let response = client.telemetry().map_err(|e| format!("{addr}: {e}"))?;
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!(
                "server: {} ({})",
                response
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("request failed"),
                response
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown"),
            ));
        }
        if args.has("json") {
            println!("{}", response.to_pretty());
        } else {
            println!("chipmunk-serve @ {addr}");
            render_top(&response);
        }
        if watch == 0 {
            return Ok(());
        }
        println!();
        std::thread::sleep(Duration::from_secs(watch));
    }
}

fn cmd_trace_report(args: &Args) -> Result<(), String> {
    let path = file_arg(args)?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let report = chipmunk_trace::report::summarize(&text);
    print!("{}", report.render());
    Ok(())
}

fn cmd_domino(args: &Args) -> Result<(), String> {
    let prog = load(file_arg(args)?)?;
    let imm: u8 = args.num("imm", 4)?;
    let opts = DominoOptions {
        width: args.num("width", 10)?,
        stateless: StatelessAluSpec::banzai(imm),
        stateful: template(args.get("template").unwrap_or("if_else_raw"), imm)?,
    };
    let out = domino_compile(&prog, &opts).map_err(|e| e.to_string())?;
    println!(
        "compiled: {} stage(s), max {} ALU(s)/stage, {} total ALU(s)",
        out.resources.stages_used, out.resources.max_alus_per_stage, out.resources.total_alus
    );
    Ok(())
}

fn cmd_repair(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("trace") {
        chipmunk_trace::init_jsonl(path).map_err(|e| format!("--trace {path}: {e}"))?;
    }
    let prog = load(file_arg(args)?)?;
    let imm: u8 = args.num("imm", 4)?;
    let mut opts = RepairOptions::new(DominoOptions {
        width: args.num("width", 10)?,
        stateless: StatelessAluSpec::banzai(imm),
        stateful: template(args.get("template").unwrap_or("if_else_raw"), imm)?,
    });
    opts.max_depth = args.num("depth", 2)?;
    match suggest(&prog, &opts) {
        Ok(hint) => {
            println!(
                "repairable with {} rewrite(s) {:?} — suggested program:\n\n{}",
                hint.steps.len(),
                hint.steps,
                hint.program
            );
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}

fn cmd_mutate(args: &Args) -> Result<(), String> {
    let mut prog = load(file_arg(args)?)?;
    chipmunk_lang::passes::eliminate_hashes(&mut prog);
    let n: usize = args.num("n", 5)?;
    let seed: u64 = args.num("seed", 2019)?;
    for (i, m) in chipmunk_mutate::mutations(&prog, seed, n)
        .iter()
        .enumerate()
    {
        println!("// mutation {i}\n{m}");
    }
    Ok(())
}

fn cmd_superopt(args: &Args) -> Result<(), String> {
    if let Some(path) = args.get("trace") {
        chipmunk_trace::init_jsonl(path).map_err(|e| format!("--trace {path}: {e}"))?;
    }
    let prog = load(file_arg(args)?)?;
    let imm: u8 = args.num("imm", 4)?;
    let alu = if args.has("full-alu") {
        StatelessAluSpec::banzai(imm)
    } else {
        StatelessAluSpec::arith_only(imm)
    };
    let mut opts = SuperoptOptions::new(alu);
    opts.width = args.num("width", 8)?;
    opts.max_len = args.num("max-len", 4)?;
    let out = superoptimize(&prog, &opts).map_err(|e| e.to_string())?;
    println!(
        "optimal: {} instruction(s) (shorter lengths proven impossible)\n{}",
        out.instrs.len(),
        out.listing()
    );
    Ok(())
}

/// Parse a CSV packet trace: header = field names (any order, a subset is
/// allowed — missing fields stay 0), one packet per row.
fn load_trace(path: &str, prog: &Program) -> Result<Vec<Vec<u64>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| format!("{path}: empty trace"))?;
    let cols: Vec<usize> = header
        .split(',')
        .map(|name| {
            let name = name.trim();
            prog.field_names()
                .iter()
                .position(|f| f == name)
                .ok_or_else(|| format!("{path}: unknown field `{name}` in header"))
        })
        .collect::<Result<_, _>>()?;
    let mut out = Vec::new();
    for (ln, line) in lines.enumerate() {
        let mut fields = vec![0u64; prog.field_names().len()];
        for (ci, cell) in line.split(',').enumerate() {
            let f = *cols
                .get(ci)
                .ok_or_else(|| format!("{path}:{}: too many columns", ln + 2))?;
            fields[f] = cell
                .trim()
                .parse()
                .map_err(|_| format!("{path}:{}: bad value `{}`", ln + 2, cell.trim()))?;
        }
        out.push(fields);
    }
    Ok(out)
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let prog = load(file_arg(args)?)?;
    let imm: u8 = 4;
    let mut opts = CompilerOptions::new(template(
        args.get("template").unwrap_or("if_else_raw"),
        imm,
    )?);
    opts.cegis.verify_width = args.num("width", 10)?;
    opts.cegis.budget = budget_from_args(args)?;
    opts.timeout = Some(Duration::from_secs(args.num("timeout", 300)?));
    let out = compile(&prog, &opts).map_err(|e| e.to_string())?;
    let mut hashfree = prog.clone();
    if hashfree.stmts().iter().any(|s| s.contains_hash()) {
        chipmunk_lang::passes::eliminate_hashes(&mut hashfree);
    }
    let width: u8 = args.num("width", 10)?;
    let trace: Option<Vec<Vec<u64>>> = match args.get("trace") {
        None => None,
        Some(path) => Some(load_trace(path, &hashfree)?),
    };
    let n: usize = trace
        .as_ref()
        .map(|t| t.len())
        .unwrap_or(args.num("packets", 10)?);
    let mut pipe = Pipeline::new(
        out.grid.clone(),
        out.decoded.pipeline.clone(),
        hashfree.state_names().len(),
        width,
    )
    .map_err(|e| e.to_string())?;
    let interp = Interpreter::new(&hashfree, width);
    let mut st = PacketState::zeroed(&hashfree);
    println!("pkt | {} | states", hashfree.field_names().join(" "));
    let mut s = 0x5eedu64;
    for k in 0..n {
        match &trace {
            Some(t) => st.fields.copy_from_slice(&t[k]),
            None => {
                // Random read-only inputs; written fields start at 0.
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                for (i, v) in st.fields.iter_mut().enumerate() {
                    *v = (s >> (7 * i + 3)) & ((1 << width.min(10)) - 1);
                }
            }
        }
        let mut phv = vec![0u64; out.grid.slots];
        for (f, &c) in out.decoded.field_to_container.iter().enumerate() {
            phv[c] = st.fields[f];
        }
        let phv_out = pipe.exec(&phv);
        st = interp.exec(&st);
        let hw: Vec<u64> = out
            .decoded
            .field_to_container
            .iter()
            .map(|&c| phv_out[c])
            .collect();
        if hw != st.fields {
            return Err(format!(
                "packet {k}: hardware {hw:?} != spec {:?}",
                st.fields
            ));
        }
        println!("{k:>3} | {:?} | {:?}", hw, st.states);
    }
    eprintln!("hardware matched the specification on all {n} packets");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    /// Satellite guarantee of the defaults dedup: a flagless local
    /// `compile` and a flagless `submit` decoded by the serve protocol
    /// materialize the *same* `CompilerOptions` — both paths resolve
    /// against `CompilerOptions::service_defaults`, so a new knob cannot
    /// silently diverge between the CLI and the daemon.
    #[test]
    fn cli_and_protocol_default_options_are_identical() {
        let local = compile_options_from_args(&argv(&[])).unwrap();
        let wire = submit_options(&argv(&[])).unwrap();
        let decoded = chipmunk_serve::JobOptions::from_json(&wire)
            .unwrap()
            .to_compiler_options()
            .unwrap();
        assert_eq!(format!("{local:?}"), format!("{decoded:?}"));
        // And both are the service defaults themselves.
        assert_eq!(
            format!("{local:?}"),
            format!("{:?}", CompilerOptions::service_defaults())
        );
    }

    /// The shared flags reach both paths identically too.
    #[test]
    fn cli_and_protocol_flagged_options_agree() {
        let flags = [
            "--imm",
            "3",
            "--width",
            "6",
            "--max-stages",
            "2",
            "--timeout",
            "5",
            "--template",
            "raw",
            "--portfolio",
        ];
        let local = compile_options_from_args(&argv(&flags)).unwrap();
        let decoded =
            chipmunk_serve::JobOptions::from_json(&submit_options(&argv(&flags)).unwrap())
                .unwrap()
                .to_compiler_options()
                .unwrap();
        assert!(local.portfolio && decoded.portfolio);
        assert_eq!(format!("{local:?}"), format!("{decoded:?}"));
    }

    #[test]
    fn priority_flag_is_validated() {
        assert_eq!(priority_from_args(&argv(&[])).unwrap(), 0);
        assert_eq!(priority_from_args(&argv(&["--priority", "9"])).unwrap(), 9);
        assert!(priority_from_args(&argv(&["--priority", "10"])).is_err());
    }
}
