//! The individual semantics-preserving rewrites.
//!
//! Each mutator counts its candidate sites in a first traversal, picks one
//! uniformly, and rewrites it in a second traversal, so site choice is
//! unbiased and deterministic under the caller's RNG.

use chipmunk_lang::{BinOp, Expr, Program, Stmt, UnOp};
use chipmunk_trace::rng::Xoshiro256;

/// The mutation classes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MutationKind {
    /// `a ⊕ b → b ⊕ a` for commutative `⊕`.
    CommuteOperands,
    /// `a < b → b > a` (and the other comparison mirrors).
    MirrorComparison,
    /// `if (c) A else B → if (!c) B else A`.
    NegateBranch,
    /// `x = c ? t : f → if (c) x = t else x = f`.
    TernaryToIf,
    /// `if (c) x = t else x = f → x = c ? t : f` (single-assignment arms
    /// writing the same lvalue).
    IfToTernary,
    /// `(a + b) + c → a + (b + c)`.
    Reassociate,
    /// `e → e + 0` or `e → e * 1`.
    AddIdentity,
    /// `k → (k-1) + 1` for a constant `k ≥ 1`.
    DecomposeConstant,
    /// `x = f(e); → int t = e; x = f(t);` — hoist a subexpression.
    HoistSubexpr,
    /// `if (c) … → if (!!c) …`.
    DoubleNegate,
}

/// Every mutation kind, for uniform sampling.
pub const ALL_KINDS: &[MutationKind] = &[
    MutationKind::CommuteOperands,
    MutationKind::MirrorComparison,
    MutationKind::NegateBranch,
    MutationKind::TernaryToIf,
    MutationKind::IfToTernary,
    MutationKind::Reassociate,
    MutationKind::AddIdentity,
    MutationKind::DecomposeConstant,
    MutationKind::HoistSubexpr,
    MutationKind::DoubleNegate,
];

/// Enumerate every program reachable from `prog` by one application of
/// `kind` (one result per applicable site, in traversal order; kinds with
/// an internal choice, like [`MutationKind::AddIdentity`], contribute one
/// result per choice). Used by the systematic searches in
/// `chipmunk-repair`; random mutation goes through [`apply`].
pub fn enumerate(kind: MutationKind, prog: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    match kind {
        MutationKind::AddIdentity => {
            for use_mul in [false, true] {
                let mut site = 0;
                loop {
                    let mut cand = prog.clone();
                    if !apply_at(kind, &mut cand, site, use_mul) {
                        break;
                    }
                    out.push(cand);
                    site += 1;
                }
            }
        }
        _ => {
            let mut site = 0;
            loop {
                let mut cand = prog.clone();
                if !apply_at(kind, &mut cand, site, false) {
                    break;
                }
                out.push(cand);
                site += 1;
            }
        }
    }
    out
}

/// Apply one mutation of the given kind at a random site. Returns false if
/// the program has no applicable site.
pub fn apply(kind: MutationKind, prog: &mut Program, rng: &mut Xoshiro256) -> bool {
    let sites = count_sites(kind, prog);
    if sites == 0 {
        return false;
    }
    let site = rng.gen_usize(sites);
    let use_mul = rng.gen_bool(0.5);
    apply_at(kind, prog, site, use_mul)
}

/// Number of applicable sites for `kind`.
fn count_sites(kind: MutationKind, prog: &Program) -> usize {
    // Cheap: probe sites until application fails.
    let mut n = 0;
    loop {
        let mut cand = prog.clone();
        if !apply_at(kind, &mut cand, n, false) {
            return n;
        }
        n += 1;
    }
}

/// Apply `kind` at the `site`-th applicable position (traversal order).
/// `use_mul` selects the multiplicative identity for
/// [`MutationKind::AddIdentity`]. Returns false when `site` is out of
/// range.
fn apply_at(kind: MutationKind, prog: &mut Program, site: usize, use_mul: bool) -> bool {
    match kind {
        MutationKind::CommuteOperands => rewrite_expr_site(
            prog,
            site,
            |e| matches!(e, Expr::Binary(op, _, _) if op.is_commutative()),
            |e| {
                if let Expr::Binary(_, a, b) = e {
                    std::mem::swap(a, b);
                }
            },
        ),
        MutationKind::MirrorComparison => rewrite_expr_site(
            prog,
            site,
            |e| matches!(e, Expr::Binary(op, _, _) if mirror(*op).is_some()),
            |e| {
                if let Expr::Binary(op, a, b) = e {
                    *op = mirror(*op).expect("filtered");
                    std::mem::swap(a, b);
                }
            },
        ),
        MutationKind::Reassociate => rewrite_expr_site(
            prog,
            site,
            |e| {
                matches!(e, Expr::Binary(BinOp::Add, a, _)
                    if matches!(**a, Expr::Binary(BinOp::Add, _, _)))
            },
            |e| {
                // (a + b) + c  →  a + (b + c)
                if let Expr::Binary(BinOp::Add, ab, c) = e {
                    if let Expr::Binary(BinOp::Add, a, b) =
                        std::mem::replace(ab.as_mut(), Expr::Int(0))
                    {
                        let c_owned = std::mem::replace(c.as_mut(), Expr::Int(0));
                        **ab = *a;
                        **c = Expr::Binary(BinOp::Add, b, Box::new(c_owned));
                    }
                }
            },
        ),
        MutationKind::AddIdentity => {
            rewrite_expr_site(
                prog,
                site,
                // Keep identities off boolean sub-positions is unnecessary:
                // e+0 and e*1 are identities for every value.
                |e| !matches!(e, Expr::Int(_)),
                move |e| {
                    let inner = std::mem::replace(e, Expr::Int(0));
                    *e = if use_mul {
                        Expr::bin(BinOp::Mul, inner, Expr::Int(1))
                    } else {
                        Expr::bin(BinOp::Add, inner, Expr::Int(0))
                    };
                },
            )
        }
        MutationKind::DecomposeConstant => rewrite_expr_site(
            prog,
            site,
            |e| matches!(e, Expr::Int(v) if *v >= 1),
            |e| {
                if let Expr::Int(v) = *e {
                    *e = Expr::bin(BinOp::Add, Expr::Int(v - 1), Expr::Int(1));
                }
            },
        ),
        MutationKind::NegateBranch => rewrite_stmt_site(
            prog,
            site,
            |s| matches!(s, Stmt::If(_, _, f) if !f.is_empty()),
            |s| {
                if let Stmt::If(c, t, f) = s {
                    let cond = std::mem::replace(c, Expr::Int(0));
                    *c = Expr::Unary(UnOp::Not, Box::new(cond));
                    std::mem::swap(t, f);
                }
            },
        ),
        MutationKind::DoubleNegate => rewrite_stmt_site(
            prog,
            site,
            |s| matches!(s, Stmt::If(..)),
            |s| {
                if let Stmt::If(c, _, _) = s {
                    let cond = std::mem::replace(c, Expr::Int(0));
                    *c = Expr::Unary(UnOp::Not, Box::new(Expr::Unary(UnOp::Not, Box::new(cond))));
                }
            },
        ),
        MutationKind::TernaryToIf => rewrite_stmt_site(
            prog,
            site,
            |s| matches!(s, Stmt::Assign(_, Expr::Ternary(..))),
            |s| {
                if let Stmt::Assign(lv, Expr::Ternary(c, t, f)) = s {
                    *s = Stmt::If(
                        (**c).clone(),
                        vec![Stmt::Assign(*lv, (**t).clone())],
                        vec![Stmt::Assign(*lv, (**f).clone())],
                    );
                }
            },
        ),
        MutationKind::IfToTernary => rewrite_stmt_site(
            prog,
            site,
            |s| {
                matches!(s, Stmt::If(_, t, f)
                    if t.len() == 1 && f.len() == 1
                        && matches!((&t[0], &f[0]),
                            (Stmt::Assign(lt, _), Stmt::Assign(lf, _)) if lt == lf))
            },
            |s| {
                if let Stmt::If(c, t, f) = s {
                    if let (Stmt::Assign(lv, te), Stmt::Assign(_, fe)) = (&t[0], &f[0]) {
                        *s = Stmt::Assign(
                            *lv,
                            Expr::Ternary(
                                Box::new(c.clone()),
                                Box::new(te.clone()),
                                Box::new(fe.clone()),
                            ),
                        );
                    }
                }
            },
        ),
        MutationKind::HoistSubexpr => hoist_subexpr(prog, site),
    }
}

fn mirror(op: BinOp) -> Option<BinOp> {
    Some(match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Gt => BinOp::Lt,
        BinOp::Le => BinOp::Ge,
        BinOp::Ge => BinOp::Le,
        _ => return None,
    })
}

/// Visit every expression node (post-order) in every statement.
fn for_each_expr(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Expr)) {
    fn expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
        match e {
            Expr::Int(_) | Expr::Var(_) => {}
            Expr::Hash(args) => args.iter_mut().for_each(|a| expr(a, f)),
            Expr::Unary(_, x) => expr(x, f),
            Expr::Binary(_, a, b) => {
                expr(a, f);
                expr(b, f);
            }
            Expr::Ternary(c, t, fe) => {
                expr(c, f);
                expr(t, f);
                expr(fe, f);
            }
        }
        f(e);
    }
    for s in stmts {
        match s {
            Stmt::Assign(_, e) => expr(e, f),
            Stmt::If(c, t, fe) => {
                expr(c, f);
                for_each_expr(t, f);
                for_each_expr(fe, f);
            }
        }
    }
}

/// Visit every statement node.
fn for_each_stmt(stmts: &mut [Stmt], f: &mut impl FnMut(&mut Stmt)) {
    let mut i = 0;
    while i < stmts.len() {
        // Recurse first so nested sites are visited; then the node itself.
        if let Stmt::If(_, t, fe) = &mut stmts[i] {
            for_each_stmt(t, f);
            for_each_stmt(fe, f);
        }
        f(&mut stmts[i]);
        i += 1;
    }
}

/// Rewrite the `site`-th expression satisfying `pred` (traversal order);
/// false if there are fewer applicable sites.
fn rewrite_expr_site(
    prog: &mut Program,
    site: usize,
    pred: impl Fn(&Expr) -> bool,
    rewrite: impl Fn(&mut Expr),
) -> bool {
    let mut stmts = std::mem::take(prog.stmts_mut());
    let mut seen = 0usize;
    let mut hit = false;
    for_each_expr(&mut stmts, &mut |e| {
        if pred(e) {
            if seen == site {
                rewrite(e);
                hit = true;
            }
            seen += 1;
        }
    });
    *prog.stmts_mut() = stmts;
    hit
}

/// Rewrite the `site`-th statement satisfying `pred` (traversal order);
/// false if there are fewer applicable sites.
fn rewrite_stmt_site(
    prog: &mut Program,
    site: usize,
    pred: impl Fn(&Stmt) -> bool,
    rewrite: impl Fn(&mut Stmt),
) -> bool {
    let mut stmts = std::mem::take(prog.stmts_mut());
    let mut seen = 0usize;
    let mut hit = false;
    for_each_stmt(&mut stmts, &mut |s| {
        if pred(s) {
            if seen == site {
                rewrite(s);
                hit = true;
            }
            seen += 1;
        }
    });
    *prog.stmts_mut() = stmts;
    hit
}

/// Hoist the operand of a random top-level assignment's binary expression
/// into a fresh local: `x = a ⊕ b; → int tN = a; x = tN ⊕ b;`.
///
/// Only applies to *top-level* assignments: hoisting out of a branch would
/// change which statements execute (locals are harmless, but the rewrite is
/// only identity-preserving when the hoisted expression is evaluated in the
/// same guard context — top level keeps that trivially true).
fn hoist_subexpr(prog: &mut Program, site: usize) -> bool {
    let mut stmts = std::mem::take(prog.stmts_mut());
    let sites: Vec<usize> = stmts
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Stmt::Assign(_, Expr::Binary(..))))
        .map(|(i, _)| i)
        .collect();
    if site >= sites.len() {
        *prog.stmts_mut() = stmts;
        return false;
    }
    let idx = sites[site];
    // Fresh local name.
    let mut n = prog.local_names().len();
    let name = loop {
        let cand = format!("hoist_{n}");
        if !prog.local_names().contains(&cand) && !prog.state_names().contains(&cand) {
            break cand;
        }
        n += 1;
    };
    let local = prog.add_local(name);
    if let Stmt::Assign(_, Expr::Binary(_, a, _)) = &mut stmts[idx] {
        let hoisted = std::mem::replace(a.as_mut(), Expr::Var(chipmunk_lang::VarRef::Local(local)));
        stmts.insert(
            idx,
            Stmt::Assign(chipmunk_lang::LValue::Local(local), hoisted),
        );
    }
    *prog.stmts_mut() = stmts;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::equivalent;
    use chipmunk_lang::parse;

    /// Apply `kind` at several seeds; every application must preserve
    /// semantics. Returns whether it ever applied.
    fn check_kind(kind: MutationKind, src: &str) -> bool {
        let prog = parse(src).unwrap();
        let mut any = false;
        for seed in 0..12u64 {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let mut cand = prog.clone();
            if apply(kind, &mut cand, &mut rng) {
                any = true;
                assert!(
                    equivalent(&prog, &cand, 5, 500),
                    "{kind:?} broke semantics:\noriginal:\n{prog}\nmutated:\n{cand}"
                );
            }
        }
        any
    }

    const RICH: &str = "state s;
        pkt.p = pkt.a + 7;
        if (pkt.a + 1 < pkt.b + pkt.c + 2) { s = s + 3; pkt.o = s > 1 ? 4 : 5; }
        else { pkt.o = 0; }";

    #[test]
    fn each_kind_preserves_semantics() {
        for &k in ALL_KINDS {
            // IfToTernary has no site in RICH (its arms hold two
            // statements); ternary_roundtrip_kinds covers it.
            let applied = check_kind(k, RICH);
            if k != MutationKind::IfToTernary {
                assert!(applied, "{k:?} never applied to RICH");
            }
        }
    }

    #[test]
    fn ternary_roundtrip_kinds() {
        assert!(check_kind(
            MutationKind::TernaryToIf,
            "pkt.x = pkt.a ? 1 : 2;"
        ));
        assert!(check_kind(
            MutationKind::IfToTernary,
            "state s; if (pkt.a) { s = 1; } else { s = 2; }",
        ));
    }

    #[test]
    fn commute_actually_changes_ast() {
        let prog = parse("pkt.x = pkt.a + pkt.b;").unwrap();
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut cand = prog.clone();
        assert!(apply(MutationKind::CommuteOperands, &mut cand, &mut rng));
        assert_ne!(prog, cand);
    }

    #[test]
    fn hoist_adds_local_at_top_level_only() {
        let prog = parse("pkt.x = pkt.a + pkt.b;").unwrap();
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut cand = prog.clone();
        assert!(apply(MutationKind::HoistSubexpr, &mut cand, &mut rng));
        assert_eq!(cand.local_names().len(), 1);
        assert_eq!(cand.stmts().len(), 2);
        assert!(equivalent(&prog, &cand, 6, 200));
    }

    #[test]
    fn inapplicable_kind_returns_false() {
        let prog = parse("pkt.x = 0;").unwrap();
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut cand = prog.clone();
        assert!(!apply(MutationKind::NegateBranch, &mut cand, &mut rng));
        assert_eq!(cand, prog);
    }
}
