//! Equivalence checking between a program and its mutation.
//!
//! Two layers:
//! 1. a **complete** SAT-based check at a small width: both programs are
//!    compiled to `chipmunk-bv` circuits over shared inputs and their
//!    outputs are compared for *all* inputs of that width;
//! 2. seeded random differential testing through the reference interpreter
//!    at 10 bits, guarding against width-specific coincidences.

use chipmunk_bv::{check_equiv_many, Circuit, TermId};
use chipmunk_lang::spec::compile_spec;
use chipmunk_lang::{Interpreter, PacketState, Program};

/// Are `a` and `b` input-output equivalent?
///
/// `sat_width` is the bit width of the complete check (keep it small: the
/// query is exponential in principle, tiny in practice); `samples` random
/// inputs are additionally checked at 10 bits. Programs must have the same
/// field and state interface (mutations never change it).
pub fn equivalent(a: &Program, b: &Program, sat_width: u8, samples: usize) -> bool {
    assert_eq!(a.field_names().len(), b.field_names().len());
    assert_eq!(a.state_names().len(), b.state_names().len());

    // Complete check at sat_width.
    let mut c = Circuit::new(sat_width);
    let fields: Vec<TermId> = a
        .field_names()
        .iter()
        .map(|n| c.input(&format!("pkt_{n}")))
        .collect();
    let states: Vec<TermId> = a
        .state_names()
        .iter()
        .map(|n| c.input(&format!("state_{n}")))
        .collect();
    let oa = compile_spec(a, &mut c, &fields, &states);
    let ob = compile_spec(b, &mut c, &fields, &states);
    let pairs: Vec<(TermId, TermId)> = oa
        .field_outs
        .iter()
        .zip(ob.field_outs.iter())
        .chain(oa.state_outs.iter().zip(ob.state_outs.iter()))
        .map(|(&x, &y)| (x, y))
        .collect();
    match check_equiv_many(&c, &pairs, None) {
        Ok(None) => {}
        Ok(Some(_)) => return false,
        Err(_) => unreachable!("no deadline was set"),
    }

    // Differential sampling at 10 bits.
    let wide = 10u8;
    let ia = Interpreter::new(a, wide);
    let ib = Interpreter::new(b, wide);
    let mask = (1u64 << wide) - 1;
    let nf = a.field_names().len();
    let ns = a.state_names().len();
    let mut seed = 0x5eed_0123_4567_89abu64;
    for _ in 0..samples {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_mul(2654435761).wrapping_add(11);
            (s >> 13) & mask
        };
        let inp = PacketState {
            fields: (0..nf).map(|_| next()).collect(),
            states: (0..ns).map(|_| next()).collect(),
        };
        if ia.exec(&inp) != ib.exec(&inp) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_lang::parse;

    #[test]
    fn identical_programs_are_equivalent() {
        let p = parse("state s; s = s + 1;").unwrap();
        assert!(equivalent(&p, &p.clone(), 5, 100));
    }

    #[test]
    fn commuted_add_is_equivalent() {
        let a = parse("pkt.x = pkt.a + pkt.b;").unwrap();
        let b = parse("pkt.x = pkt.b + pkt.a;").unwrap();
        // NOTE: field order differs! a: [x,a,b], b: [x,b,a] — build b with
        // the same textual field order to share the interface.
        let b2 = parse("pkt.x = 0; pkt.x = pkt.a + 0 + pkt.b;").unwrap();
        assert!(equivalent(&a, &b2, 5, 100));
        let _ = b;
    }

    #[test]
    fn different_semantics_detected_by_sat() {
        let a = parse("pkt.x = pkt.a + 1;").unwrap();
        let b = parse("pkt.x = pkt.a + 2;").unwrap();
        assert!(!equivalent(&a, &b, 5, 0));
    }

    #[test]
    fn subtle_difference_detected() {
        // Differ only when a == 31 at 5 bits (wrap).
        let a = parse("pkt.x = pkt.a + 1;").unwrap();
        let b = parse("pkt.x = pkt.a < 31 ? pkt.a + 1 : pkt.a + 1;").unwrap();
        assert!(equivalent(&a, &b, 5, 100));
        let c = parse("pkt.x = pkt.a < 31 ? pkt.a + 1 : 7;").unwrap();
        assert!(!equivalent(&a, &c, 5, 0));
    }

    #[test]
    fn state_differences_detected() {
        let a = parse("state s; s = s + 1;").unwrap();
        let b = parse("state s; s = s + 1; s = s + 0;").unwrap();
        assert!(equivalent(&a, &b, 5, 100));
        let c = parse("state s; s = s + 1; s = s + 1;").unwrap();
        assert!(!equivalent(&a, &c, 5, 0));
    }
}
