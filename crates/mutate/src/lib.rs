//! # chipmunk-mutate
//!
//! Seeded, semantics-preserving mutation of packet transactions.
//!
//! The paper's evaluation (§4) takes 8 benchmark programs that the Domino
//! compiler can compile and generates 10 semantics-preserving rewrites of
//! each; the code-generation rate over those mutations is Table 2. This
//! crate generates such mutations deterministically from a seed, drawing
//! from the same classes of rewrites a developer might produce naturally:
//!
//! * commuting the operands of commutative operators,
//! * mirroring comparisons (`a < b` → `b > a`),
//! * negating a branch condition and swapping the branches,
//! * converting between `?:` and `if/else`,
//! * re-associating addition chains,
//! * inserting arithmetic identities (`e + 0`, `e * 1`),
//! * decomposing constants (`9` → `8 + 1`),
//! * hoisting a subexpression into a fresh local temporary,
//! * double-negating a condition.
//!
//! Every emitted mutation is **verified equivalent** to the original by a
//! complete SAT-based equivalence check at a small bit width plus random
//! differential testing at the full width, so Table 2 can attribute every
//! rejection to the code generator, never to a broken mutation.

#![warn(missing_docs)]

mod mutators;
mod verify;

pub use mutators::{apply, enumerate, MutationKind, ALL_KINDS};
pub use verify::equivalent;

use chipmunk_lang::Program;
use chipmunk_trace::rng::Xoshiro256;

/// Generate `n` verified, pairwise-distinct, semantics-preserving mutations
/// of `prog` (which must be hash-free; run
/// [`chipmunk_lang::passes::eliminate_hashes`] first).
///
/// Deterministic in `seed`. Panics if the program contains `hash(...)`.
pub fn mutations(prog: &Program, seed: u64, n: usize) -> Vec<Program> {
    assert!(
        !prog.stmts().iter().any(|s| s.contains_hash()),
        "eliminate hashes before mutating"
    );
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut out: Vec<Program> = Vec::with_capacity(n);
    let mut attempts = 0;
    while out.len() < n && attempts < n * 400 {
        attempts += 1;
        // Chain 1–3 random mutators.
        let rounds = rng.gen_range(1, 3);
        let mut cand = prog.clone();
        let mut applied = 0;
        for _ in 0..rounds {
            let kind = *rng.choose(ALL_KINDS);
            if mutators::apply(kind, &mut cand, &mut rng) {
                applied += 1;
            }
        }
        if applied == 0 || cand == *prog || out.contains(&cand) {
            continue;
        }
        debug_assert!(
            equivalent(prog, &cand, 5, 1_000),
            "mutator produced a non-equivalent program:\n{cand}"
        );
        if equivalent(prog, &cand, 5, 200) {
            out.push(cand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_lang::parse;

    const SAMPLING: &str = "state count;
        if (count == 9) { count = 0; pkt.sample = 1; }
        else { count = count + 1; pkt.sample = 0; }";

    #[test]
    fn generates_requested_count() {
        let prog = parse(SAMPLING).unwrap();
        let muts = mutations(&prog, 1, 10);
        assert_eq!(muts.len(), 10);
    }

    #[test]
    fn mutations_are_deterministic_in_seed() {
        let prog = parse(SAMPLING).unwrap();
        let a = mutations(&prog, 7, 5);
        let b = mutations(&prog, 7, 5);
        assert_eq!(a, b);
        let c = mutations(&prog, 8, 5);
        assert_ne!(a, c);
    }

    #[test]
    fn mutations_are_distinct_and_differ_from_original() {
        let prog = parse(SAMPLING).unwrap();
        let muts = mutations(&prog, 3, 8);
        for (i, m) in muts.iter().enumerate() {
            assert_ne!(*m, prog, "mutation {i} equals the original");
            for other in &muts[i + 1..] {
                assert_ne!(m, other, "duplicate mutation");
            }
        }
    }

    #[test]
    fn mutations_reparse_through_pretty_printer() {
        let prog = parse(SAMPLING).unwrap();
        for m in mutations(&prog, 5, 6) {
            let printed = m.to_string();
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("mutation does not reparse: {e}\n{printed}"));
            assert_eq!(reparsed, m);
        }
    }

    #[test]
    fn all_mutations_are_equivalent_at_width_6() {
        let prog = parse(SAMPLING).unwrap();
        for m in mutations(&prog, 11, 8) {
            assert!(equivalent(&prog, &m, 6, 500), "non-equivalent:\n{m}");
        }
    }

    #[test]
    fn stateless_program_mutates_too() {
        let prog = parse("pkt.y = pkt.a + pkt.b; pkt.z = pkt.y < 3 ? 1 : 2;").unwrap();
        let muts = mutations(&prog, 2, 6);
        assert_eq!(muts.len(), 6);
        for m in &muts {
            assert!(equivalent(&prog, m, 5, 300));
        }
    }

    #[test]
    #[should_panic(expected = "eliminate hashes")]
    fn hash_programs_are_rejected() {
        let prog = parse("pkt.y = hash(pkt.a);").unwrap();
        mutations(&prog, 1, 1);
    }
}
