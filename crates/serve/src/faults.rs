//! Deterministic fault injection for the serve stack.
//!
//! Production code never fails on demand, which makes fault-handling
//! paths the least-tested code in the tree. This module lets tests (and
//! brave operators) inject faults at precise, reproducible points:
//!
//! * **compile panics** — a worker's compile call panics mid-job,
//! * **worker deaths** — a worker thread dies *outside* its panic
//!   isolation, exercising the supervisor/respawn path,
//! * **cache I/O errors** — the disk tier's writes fail as if the disk
//!   were full, exercising degraded mode,
//! * **solver stalls** — an artificial delay before a compile, for
//!   building up queue depth under test,
//! * **connection resets** — a connection's socket is torn down just
//!   before a response write, exercising client retry,
//! * **cache corruption** — a cached result document is bit-flipped just
//!   before it would be served, exercising result certification and
//!   cache quarantine,
//! * **metrics I/O errors** — the telemetry HTTP listener drops a scrape
//!   connection, proving a broken metrics socket degrades to stats-only
//!   without touching compile traffic,
//! * **proof I/O errors** — the materialization of an infeasibility
//!   proof fails as it is attached to a result document, proving a lost
//!   proof degrades to an explicitly-unchecked verdict instead of a
//!   crash or a silently-trusted one,
//! * **clock stalls** — a compile freezes *ignoring* its cooperative
//!   cancel flag, simulating a solver stuck inside one monster
//!   propagation; proves the watchdog escalates past cancellation to
//!   worker respawn and still answers the client with a typed error.
//!
//! # Plan syntax
//!
//! A plan is a `;`-separated list of clauses:
//!
//! ```text
//! seed=42;panic@0,3;cache_io@1;reset%0.05;stall@2;stall_ms=20
//! ```
//!
//! * `<kind>@i,j,...` — fire at those 0-based *occurrence indices* of the
//!   kind's injection site (the 0th, 3rd, ... time the site is reached).
//! * `<kind>%p` — additionally fire each occurrence with probability `p`,
//!   drawn from a [`Xoshiro256`] stream seeded by `seed` (default 0).
//! * `stall_ms=N` — duration of an injected stall (default 50 ms).
//! * Kinds: `panic`, `worker_death`, `cache_io`, `stall`, `reset`,
//!   `corrupt`, `metrics_io`, `proof_io`, `clock_stall`.
//!
//! Plans are installed from the `CHIPMUNK_FAULTS` environment variable at
//! server start ([`init_from_env`], which prints the active plan and seed
//! to stderr so any failure is reproducible), or programmatically with
//! [`install`]. With no plan installed the only cost at each injection
//! site is one load of an atomic bool ([`armed`]); release builds with
//! the env var unset pay a single predictable branch.
//!
//! The plan is process-global: occurrence counters are shared across
//! threads, so concurrent tests that install plans must serialize.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use chipmunk_trace::rng::Xoshiro256;

/// The kinds of fault that can be injected. Each kind has one injection
/// site in the serve stack and its own occurrence counter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Panic inside a worker's (isolated) compile call.
    CompilePanic,
    /// Kill a worker thread outside its panic isolation.
    WorkerDeath,
    /// Fail a disk write/rename in the result cache.
    CacheIo,
    /// Sleep for `stall_ms` before starting a compile.
    SolverStall,
    /// Tear down a connection's socket before a response write.
    ConnReset,
    /// Bit-flip a cached result document before it is served.
    CacheCorrupt,
    /// Drop a metrics-endpoint scrape connection before the response.
    MetricsIo,
    /// Fail the materialization of an infeasibility proof as it is
    /// attached to a result document, exercising the degrade to an
    /// explicitly-unchecked verdict.
    ProofIo,
    /// Freeze a compile for `stall_ms` *ignoring* the cooperative cancel
    /// flag — a solver stuck inside one monster propagation. Unlike
    /// [`FaultKind::SolverStall`] (which delays before the compile and
    /// yields to cancellation), this exercises the watchdog's escalation
    /// path: cancel doesn't bite, so the worker must be abandoned and
    /// respawned.
    ClockStall,
}

const NUM_KINDS: usize = 9;

impl FaultKind {
    fn index(self) -> usize {
        match self {
            FaultKind::CompilePanic => 0,
            FaultKind::WorkerDeath => 1,
            FaultKind::CacheIo => 2,
            FaultKind::SolverStall => 3,
            FaultKind::ConnReset => 4,
            FaultKind::CacheCorrupt => 5,
            FaultKind::MetricsIo => 6,
            FaultKind::ProofIo => 7,
            FaultKind::ClockStall => 8,
        }
    }

    fn from_name(s: &str) -> Option<FaultKind> {
        Some(match s {
            "panic" => FaultKind::CompilePanic,
            "worker_death" => FaultKind::WorkerDeath,
            "cache_io" => FaultKind::CacheIo,
            "stall" => FaultKind::SolverStall,
            "reset" => FaultKind::ConnReset,
            "corrupt" => FaultKind::CacheCorrupt,
            "metrics_io" => FaultKind::MetricsIo,
            "proof_io" => FaultKind::ProofIo,
            "clock_stall" => FaultKind::ClockStall,
            _ => return None,
        })
    }
}

struct Plan {
    seed: u64,
    /// Sorted explicit occurrence indices, per kind.
    explicit: [Vec<u64>; NUM_KINDS],
    /// Per-occurrence firing probability, per kind (0.0 = never).
    prob: [f64; NUM_KINDS],
    stall: Duration,
    rng: Xoshiro256,
    spec: String,
}

struct State {
    plan: Option<Plan>,
}

/// Fast-path switch: false means no plan is installed and every
/// injection site reduces to this single load.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<State> = Mutex::new(State { plan: None });
/// Occurrence counters live outside the mutex so `fired` can bump them
/// without blocking when the probability path is unused.
static COUNTERS: [AtomicU64; NUM_KINDS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static ENV_INIT: AtomicBool = AtomicBool::new(false);

/// Returns true if a fault plan is installed. This is the only cost paid
/// at injection sites when fault injection is off.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Record one occurrence of `kind`'s injection site and report whether
/// the installed plan says this occurrence should fault. Always false
/// when no plan is installed ([`armed`] is the cheap pre-check).
pub fn fired(kind: FaultKind) -> bool {
    if !armed() {
        return false;
    }
    let k = kind.index();
    let occurrence = COUNTERS[k].fetch_add(1, Ordering::Relaxed);
    let mut st = match STATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    let Some(plan) = st.plan.as_mut() else {
        return false;
    };
    if plan.explicit[k].binary_search(&occurrence).is_ok() {
        return true;
    }
    let p = plan.prob[k];
    p > 0.0 && plan.rng.gen_bool(p)
}

/// Duration of an injected solver stall under the current plan.
pub fn stall_duration() -> Duration {
    let st = match STATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    st.plan
        .as_ref()
        .map_or(Duration::from_millis(50), |p| p.stall)
}

/// Deterministically bit-flip one value of a cached result document — the
/// payload of a fired [`FaultKind::CacheCorrupt`]. Prefers a
/// `field_to_container` entry (XOR 1 mis-wires a field into a different
/// PHV container, the nastiest silent corruption) and falls back to the
/// first integer found anywhere; a document with no integers comes back
/// unchanged. Never panics: it runs on the serving path.
pub fn corrupt_doc(doc: &chipmunk_trace::json::Json) -> chipmunk_trace::json::Json {
    use chipmunk_trace::json::Json;
    fn flip_first_int(doc: &Json) -> (Json, bool) {
        match doc {
            Json::U64(v) => (Json::U64(v ^ 1), true),
            Json::I64(v) => (Json::I64(v ^ 1), true),
            Json::Arr(items) => {
                let mut out = Vec::with_capacity(items.len());
                let mut flipped = false;
                for it in items {
                    if flipped {
                        out.push(it.clone());
                    } else {
                        let (v, f) = flip_first_int(it);
                        out.push(v);
                        flipped = f;
                    }
                }
                (Json::Arr(out), flipped)
            }
            Json::Obj(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                let mut flipped = false;
                for (k, v) in pairs {
                    if flipped {
                        out.push((k.clone(), v.clone()));
                    } else {
                        let (v, f) = flip_first_int(v);
                        out.push((k.clone(), v));
                        flipped = f;
                    }
                }
                (Json::Obj(out), flipped)
            }
            other => (other.clone(), false),
        }
    }
    if let (Some(f2c), Json::Obj(pairs)) = (doc.get("field_to_container"), doc) {
        let (flipped, did) = flip_first_int(f2c);
        if did {
            return Json::Obj(
                pairs
                    .iter()
                    .map(|(k, v)| {
                        if k == "field_to_container" {
                            (k.clone(), flipped.clone())
                        } else {
                            (k.clone(), v.clone())
                        }
                    })
                    .collect(),
            );
        }
    }
    flip_first_int(doc).0
}

/// Parse `spec` and install it as the process-wide fault plan, resetting
/// all occurrence counters. See the module docs for the syntax.
pub fn install(spec: &str) -> Result<(), String> {
    let plan = parse_plan(spec)?;
    let mut st = match STATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    st.plan = Some(plan);
    ARMED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Remove any installed fault plan and reset occurrence counters. After
/// this, every injection site is a single never-taken branch again.
pub fn disarm() {
    let mut st = match STATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    ARMED.store(false, Ordering::Relaxed);
    st.plan = None;
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

/// Install a plan from the `CHIPMUNK_FAULTS` environment variable, if
/// set. Called once at server start; later calls are no-ops. Prints the
/// active plan (including the seed) to stderr so a failure observed
/// under an injected schedule can be reproduced exactly.
///
/// The environment is a *fallback*, not an override: if a plan was
/// already installed programmatically (a test harness arms its own
/// schedule before starting an in-process server), that plan stands.
/// Harnesses that want the environment to influence their schedule fold
/// it in themselves (the chaos suite appends the env's `seed=` clause).
pub fn init_from_env() {
    if ENV_INIT.swap(true, Ordering::SeqCst) {
        return;
    }
    if armed() {
        return;
    }
    let Ok(spec) = std::env::var("CHIPMUNK_FAULTS") else {
        return;
    };
    if spec.trim().is_empty() {
        return;
    }
    match install(&spec) {
        Ok(()) => {
            let seed = STATE
                .lock()
                .map(|st| st.plan.as_ref().map_or(0, |p| p.seed))
                .unwrap_or(0);
            eprintln!(
                "chipmunk-serve: fault injection armed: CHIPMUNK_FAULTS={spec} (seed={seed})"
            );
        }
        Err(e) => {
            eprintln!("chipmunk-serve: ignoring invalid CHIPMUNK_FAULTS={spec}: {e}");
        }
    }
}

/// The spec string of the installed plan, if any. Lets a test harness
/// echo the schedule it is running under on failure.
pub fn active_spec() -> Option<String> {
    let st = match STATE.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    st.plan.as_ref().map(|p| p.spec.clone())
}

fn parse_plan(spec: &str) -> Result<Plan, String> {
    let mut seed = 0u64;
    let mut explicit: [Vec<u64>; NUM_KINDS] = Default::default();
    let mut prob = [0.0f64; NUM_KINDS];
    let mut stall = Duration::from_millis(50);
    for clause in spec.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        if let Some(v) = clause.strip_prefix("seed=") {
            seed = v
                .parse()
                .map_err(|_| format!("bad seed in clause `{clause}`"))?;
        } else if let Some(v) = clause.strip_prefix("stall_ms=") {
            let ms: u64 = v
                .parse()
                .map_err(|_| format!("bad stall_ms in clause `{clause}`"))?;
            stall = Duration::from_millis(ms);
        } else if let Some((name, idxs)) = clause.split_once('@') {
            let kind = FaultKind::from_name(name)
                .ok_or_else(|| format!("unknown fault kind `{name}` in clause `{clause}`"))?;
            for part in idxs.split(',') {
                let i: u64 = part
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad occurrence index `{part}` in clause `{clause}`"))?;
                explicit[kind.index()].push(i);
            }
        } else if let Some((name, p)) = clause.split_once('%') {
            let kind = FaultKind::from_name(name)
                .ok_or_else(|| format!("unknown fault kind `{name}` in clause `{clause}`"))?;
            let p: f64 = p
                .parse()
                .map_err(|_| format!("bad probability in clause `{clause}`"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability out of [0,1] in clause `{clause}`"));
            }
            prob[kind.index()] = p;
        } else {
            return Err(format!("unrecognized clause `{clause}`"));
        }
    }
    for idxs in &mut explicit {
        idxs.sort_unstable();
        idxs.dedup();
    }
    Ok(Plan {
        seed,
        explicit,
        prob,
        stall,
        rng: Xoshiro256::seed_from_u64(seed),
        spec: spec.to_string(),
    })
}

/// Extract a short human-readable message from a panic payload, as
/// returned by `catch_unwind`, truncated to a bounded length so a huge
/// formatted panic cannot bloat an error response.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    const MAX: usize = 200;
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    if msg.len() > MAX {
        let mut cut = MAX;
        while !msg.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}…", &msg[..cut])
    } else {
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is process-global; tests that install plans must hold
    /// this lock. Integration tests use their own copy per binary.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disarmed_fires_nothing() {
        let _g = lock();
        disarm();
        assert!(!armed());
        assert!(!fired(FaultKind::CompilePanic));
        assert!(!fired(FaultKind::CacheIo));
    }

    #[test]
    fn explicit_indices_fire_exactly_once_each() {
        let _g = lock();
        install("panic@0,2").unwrap();
        assert!(fired(FaultKind::CompilePanic)); // occurrence 0
        assert!(!fired(FaultKind::CompilePanic)); // 1
        assert!(fired(FaultKind::CompilePanic)); // 2
        assert!(!fired(FaultKind::CompilePanic)); // 3
                                                  // Other kinds are untouched by the panic clause.
        assert!(!fired(FaultKind::ConnReset));
        disarm();
    }

    #[test]
    fn probability_schedule_is_reproducible_from_seed() {
        let _g = lock();
        let run = || {
            install("seed=99;cache_io%0.5").unwrap();
            let v: Vec<bool> = (0..32).map(|_| fired(FaultKind::CacheIo)).collect();
            disarm();
            v
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "p=0.5 over 32 draws should fire");
        assert!(a.iter().any(|&x| !x));
    }

    #[test]
    fn stall_duration_comes_from_plan() {
        let _g = lock();
        install("stall@0;stall_ms=7").unwrap();
        assert_eq!(stall_duration(), Duration::from_millis(7));
        disarm();
    }

    #[test]
    fn corrupt_kind_parses_and_fires() {
        let _g = lock();
        install("corrupt@0").unwrap();
        assert!(fired(FaultKind::CacheCorrupt));
        assert!(!fired(FaultKind::CacheCorrupt));
        disarm();
    }

    #[test]
    fn metrics_io_kind_parses_and_fires() {
        let _g = lock();
        install("metrics_io@0").unwrap();
        assert!(fired(FaultKind::MetricsIo));
        assert!(!fired(FaultKind::MetricsIo));
        // Independent of the compile-path kinds.
        assert!(!fired(FaultKind::CompilePanic));
        disarm();
    }

    #[test]
    fn proof_io_kind_parses_and_fires() {
        let _g = lock();
        install("proof_io@0").unwrap();
        assert!(fired(FaultKind::ProofIo));
        assert!(!fired(FaultKind::ProofIo));
        // Independent of the compile-path kinds.
        assert!(!fired(FaultKind::CompilePanic));
        disarm();
    }

    #[test]
    fn clock_stall_kind_parses_and_fires() {
        let _g = lock();
        install("clock_stall@0;stall_ms=5").unwrap();
        assert!(fired(FaultKind::ClockStall));
        assert!(!fired(FaultKind::ClockStall));
        assert_eq!(stall_duration(), Duration::from_millis(5));
        // Independent of the cancellable pre-compile stall.
        assert!(!fired(FaultKind::SolverStall));
        disarm();
    }

    #[test]
    fn corrupt_doc_flips_a_field_container_bit() {
        use chipmunk_trace::json::Json;
        let doc = Json::obj([
            ("grid", Json::obj([("stages", Json::from(2u64))])),
            (
                "field_to_container",
                Json::Arr(vec![Json::from(0u64), Json::from(1u64)]),
            ),
        ]);
        let bad = corrupt_doc(&doc);
        assert_ne!(bad, doc);
        // The flip lands in the field map, not the untouched sections.
        assert_eq!(bad.get("grid"), doc.get("grid"));
        let f2c = bad.get("field_to_container").unwrap().as_arr().unwrap();
        assert_eq!(f2c[0].as_u64(), Some(1));
        assert_eq!(f2c[1].as_u64(), Some(1));
        // Deterministic: the same document corrupts the same way.
        assert_eq!(corrupt_doc(&doc), bad);
        // No integers anywhere: unchanged, no panic.
        let empty = Json::obj([("name", Json::from("x"))]);
        assert_eq!(corrupt_doc(&empty), empty);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let _g = lock();
        for bad in [
            "frobnicate@1",
            "panic@x",
            "seed=no",
            "panic%1.5",
            "stall_ms=ten",
            "justnoise",
        ] {
            assert!(parse_plan(bad).is_err(), "spec `{bad}` should be rejected");
        }
    }

    #[test]
    fn panic_message_truncates_and_handles_payload_types() {
        let long = "x".repeat(500);
        let payload: Box<dyn std::any::Any + Send> = Box::new(long);
        let msg = panic_message(payload.as_ref());
        assert!(msg.len() < 250);
        assert!(msg.ends_with('…'));
        let payload: Box<dyn std::any::Any + Send> = Box::new("short");
        assert_eq!(panic_message(payload.as_ref()), "short");
        let payload: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(payload.as_ref()), "non-string panic payload");
    }
}
