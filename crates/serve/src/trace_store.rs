//! An in-memory ring buffer of recent trace records, fed by a
//! [`chipmunk_trace`] tee.
//!
//! The daemon installs one of these at startup so the live record stream
//! — `serve.job` spans and every `cegis.*` / `sat.*` span nested under
//! them — is queryable without a JSONL file: the `trace` protocol op
//! returns the span tree for a job's trace id, and the slow-job log dumps
//! the same tree to stderr when a job blows the `--slow-ms` threshold.
//!
//! The buffer holds the most recent [`DEFAULT_CAPACITY`] records and
//! drops the oldest beyond that, so memory is bounded regardless of
//! uptime. A tree query for an old job may therefore come back partial
//! or empty — the op reports `found:false` rather than failing.
//!
//! Tee discipline: the callback runs with the global tee registry lock
//! held, so it must never trace. It only pushes a clone of the record
//! into the ring under the store's own mutex.

use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use chipmunk_trace::json::Json;

/// Default ring capacity, in records. A compile emits a few dozen
/// records, so this comfortably holds the last few hundred jobs.
pub const DEFAULT_CAPACITY: usize = 8192;

struct Ring {
    buf: VecDeque<Json>,
    cap: usize,
    dropped: u64,
}

/// The ring-buffered span store. Create with [`TraceStore::new`], then
/// [`install`](TraceStore::install) it as a tee.
pub struct TraceStore {
    inner: Mutex<Ring>,
}

fn lock(m: &Mutex<Ring>) -> std::sync::MutexGuard<'_, Ring> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl TraceStore {
    /// An empty store bounded to `capacity` records (0 is clamped to 1).
    pub fn new(capacity: usize) -> Arc<TraceStore> {
        Arc::new(TraceStore {
            inner: Mutex::new(Ring {
                buf: VecDeque::new(),
                cap: capacity.max(1),
                dropped: 0,
            }),
        })
    }

    /// Subscribe this store to the live record stream. Returns the tee
    /// token; pass it to [`chipmunk_trace::remove_tee`] at shutdown so a
    /// later server in the same process does not feed a dead store.
    pub fn install(self: &Arc<TraceStore>) -> u64 {
        let store = self.clone();
        chipmunk_trace::add_tee(Arc::new(move |doc: &Json| store.push(doc.clone())))
    }

    fn push(&self, doc: Json) {
        let mut ring = lock(&self.inner);
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(doc);
    }

    /// Records currently held (oldest first).
    pub fn records(&self) -> Vec<Json> {
        lock(&self.inner).buf.iter().cloned().collect()
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.inner).buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted so far by the capacity bound.
    pub fn dropped(&self) -> u64 {
        lock(&self.inner).dropped
    }

    /// The span tree of the most recent `serve.job` span whose `trace`
    /// field equals `trace_id`: the job span plus every descendant span
    /// and event still in the ring, each node shaped as
    /// `{"span","id"?,"fields"?,"dur_us"?,"events"?,"children"?}`.
    /// `None` when no such span is buffered (expired or never seen).
    pub fn job_tree(&self, trace_id: &str) -> Option<Json> {
        let records = self.records();
        // Latest matching open record wins: a replayed job reuses its
        // original trace id, and the caller wants the live incarnation.
        let root_idx = records.iter().rposition(|r| {
            r.get("kind").and_then(Json::as_str) == Some("open")
                && r.get("span").and_then(Json::as_str) == Some("serve.job")
                && r.get("fields")
                    .and_then(|f| f.get("trace"))
                    .and_then(Json::as_str)
                    == Some(trace_id)
        })?;
        let root_id = records[root_idx].get("id").and_then(Json::as_u64)?;
        build_tree(&records[root_idx..], root_id)
    }
}

/// Assemble the span tree rooted at `root_id` from `records` (which must
/// start at the root's open record). One forward pass collects the
/// descendant id set via parent links, pairs closes with opens for
/// durations and close fields, and attaches events to their parent span.
fn build_tree(records: &[Json], root_id: u64) -> Option<Json> {
    struct Node {
        id: u64,
        parent: Option<u64>,
        doc: Vec<(&'static str, Json)>,
        events: Vec<Json>,
        children: Vec<Node>,
    }

    let mut member: HashSet<u64> = HashSet::from([root_id]);
    let mut open: Vec<Node> = Vec::new(); // depth-first stack of open spans per the record order
    let mut done: Vec<Node> = Vec::new();

    fn attach(done: &mut Vec<Node>, open: &mut [Node], node: Node) {
        // A finished span nests under the innermost still-open ancestor;
        // with none left it is a root-level result.
        match open
            .iter_mut()
            .rev()
            .find(|candidate| Some(candidate.id) == node.parent)
        {
            Some(parent) => parent.children.push(node),
            None => done.push(node),
        }
    }

    for r in records {
        let kind = r.get("kind").and_then(Json::as_str).unwrap_or("");
        let span = r.get("span").and_then(Json::as_str).unwrap_or("");
        let id = r.get("id").and_then(Json::as_u64);
        let parent = r.get("parent").and_then(Json::as_u64);
        match kind {
            "open" => {
                let Some(id) = id else { continue };
                let in_tree = id == root_id || parent.is_some_and(|p| member.contains(&p));
                if !in_tree {
                    continue;
                }
                member.insert(id);
                let mut doc = vec![("span", Json::from(span)), ("id", Json::U64(id))];
                if let Some(f) = r.get("fields") {
                    doc.push(("fields", f.clone()));
                }
                open.push(Node {
                    id,
                    parent,
                    doc,
                    events: Vec::new(),
                    children: Vec::new(),
                });
            }
            "close" => {
                let Some(id) = id else { continue };
                if !member.contains(&id) {
                    continue;
                }
                let Some(pos) = open.iter().rposition(|n| n.id == id) else {
                    continue;
                };
                // Everything opened above it that never closed (a panic
                // unwound past the guard) folds up as unclosed children.
                while open.len() > pos + 1 {
                    let orphan = open.pop().expect("len checked");
                    attach(&mut done, &mut open, orphan);
                }
                let mut node = open.pop().expect("position found");
                if let Some(d) = r.get("dur_us") {
                    node.doc.push(("dur_us", d.clone()));
                }
                if let Some(f) = r.get("fields") {
                    node.doc.push(("close_fields", f.clone()));
                }
                attach(&mut done, &mut open, node);
                if id == root_id {
                    break;
                }
            }
            "event" => {
                let Some(p) = parent else { continue };
                if !member.contains(&p) {
                    continue;
                }
                let mut ev = vec![("span", Json::from(span))];
                if let Some(f) = r.get("fields") {
                    ev.push(("fields", f.clone()));
                }
                if let Some(owner) = open.iter_mut().rev().find(|n| n.id == p) {
                    owner.events.push(Json::obj(ev));
                }
            }
            _ => {}
        }
    }
    // Root never closed (job still running, or the close fell out of the
    // ring): whatever is still open collapses into the tree.
    while let Some(node) = open.pop() {
        attach(&mut done, &mut open, node);
    }

    fn render(node: Node) -> Json {
        let mut doc = node.doc;
        if !node.events.is_empty() {
            doc.push(("events", Json::Arr(node.events)));
        }
        if !node.children.is_empty() {
            doc.push((
                "children",
                Json::Arr(node.children.into_iter().map(render).collect()),
            ));
        }
        Json::obj(doc)
    }

    done.into_iter().find(|n| n.id == root_id).map(render)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: &str, span: &str, id: Option<u64>, parent: Option<u64>) -> Json {
        let mut pairs = vec![
            ("ts_us", Json::U64(0)),
            ("kind", Json::from(kind)),
            ("span", Json::from(span)),
        ];
        if let Some(id) = id {
            pairs.push(("id", Json::U64(id)));
        }
        if let Some(p) = parent {
            pairs.push(("parent", Json::U64(p)));
        }
        Json::obj(pairs)
    }

    fn job_open(id: u64, trace: &str) -> Json {
        Json::obj([
            ("ts_us", Json::U64(0)),
            ("kind", Json::from("open")),
            ("span", Json::from("serve.job")),
            ("id", Json::U64(id)),
            ("fields", Json::obj([("trace", Json::from(trace))])),
        ])
    }

    /// Not a correctness test — measures the per-record cost of the tee
    /// path (emit-shaped doc → clone → ring push) that every span record
    /// pays while a daemon runs, for the overhead figure in
    /// EXPERIMENTS.md. Run with:
    /// `cargo test -p chipmunk-serve --release tee_push_cost -- --ignored --nocapture`
    #[test]
    #[ignore = "measurement, not a correctness check"]
    fn tee_push_cost_per_record() {
        let store = TraceStore::new(DEFAULT_CAPACITY);
        let token = store.install();
        let n = 200_000u32;
        let start = std::time::Instant::now();
        for i in 0..n {
            chipmunk_trace::event!("bench.tick", i = i);
        }
        let elapsed = start.elapsed();
        chipmunk_trace::remove_tee(token);
        eprintln!(
            "tee push: {} records in {:?} = {:.0} ns/record",
            n,
            elapsed,
            elapsed.as_nanos() as f64 / f64::from(n)
        );
        assert!(!store.is_empty());
    }

    #[test]
    fn ring_capacity_is_a_hard_bound() {
        let store = TraceStore::new(4);
        for i in 0..10 {
            store.push(record("event", "e", None, Some(i)));
        }
        assert_eq!(store.len(), 4);
        assert_eq!(store.dropped(), 6);
        let first = &store.records()[0];
        assert_eq!(first.get("parent").and_then(Json::as_u64), Some(6));
    }

    #[test]
    fn job_tree_collects_descendants_and_durations() {
        let store = TraceStore::new(64);
        store.push(job_open(10, "t-1"));
        store.push(record("open", "cegis.synth", Some(11), Some(10)));
        store.push(record("event", "cegis.cex", None, Some(11)));
        store.push(record("close", "cegis.synth", Some(11), None));
        // An unrelated concurrent span must not leak into the tree.
        store.push(record("open", "serve.quarantine", Some(90), None));
        store.push(record("close", "serve.quarantine", Some(90), None));
        let mut close = record("close", "serve.job", Some(10), None);
        if let Json::Obj(pairs) = &mut close {
            pairs.push(("dur_us".to_string(), Json::U64(777)));
        }
        store.push(close);
        let tree = store.job_tree("t-1").expect("tree found");
        assert_eq!(tree.get("span").and_then(Json::as_str), Some("serve.job"));
        assert_eq!(tree.get("dur_us").and_then(Json::as_u64), Some(777));
        let children = match tree.get("children") {
            Some(Json::Arr(c)) => c,
            other => panic!("no children: {other:?}"),
        };
        assert_eq!(children.len(), 1);
        assert_eq!(
            children[0].get("span").and_then(Json::as_str),
            Some("cegis.synth")
        );
        let events = match children[0].get("events") {
            Some(Json::Arr(e)) => e,
            other => panic!("no events: {other:?}"),
        };
        assert_eq!(
            events[0].get("span").and_then(Json::as_str),
            Some("cegis.cex")
        );
        assert!(store.job_tree("t-unknown").is_none());
    }

    #[test]
    fn latest_incarnation_of_a_trace_id_wins() {
        let store = TraceStore::new(64);
        store.push(job_open(1, "t-r"));
        store.push(record("close", "serve.job", Some(1), None));
        store.push(job_open(2, "t-r"));
        store.push(record("open", "cegis.verify", Some(3), Some(2)));
        let tree = store.job_tree("t-r").expect("tree found");
        assert_eq!(tree.get("id").and_then(Json::as_u64), Some(2));
        // Root still open: the in-flight child is present, no dur_us yet.
        assert!(tree.get("dur_us").is_none());
        assert!(tree.get("children").is_some());
    }

    #[test]
    fn tee_feeds_the_store_from_live_spans() {
        let store = TraceStore::new(64);
        let token = store.install();
        {
            let mut sp = chipmunk_trace::span!("serve.job", trace = "t-tee");
            sp.record("result", "ok");
            let _inner = chipmunk_trace::span!("cegis.synth");
        }
        chipmunk_trace::remove_tee(token);
        let tree = store.job_tree("t-tee").expect("tee captured the spans");
        assert!(tree.get("children").is_some());
        assert_eq!(
            tree.get("close_fields")
                .and_then(|f| f.get("result"))
                .and_then(Json::as_str),
            Some("ok")
        );
    }
}
