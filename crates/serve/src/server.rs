//! The compilation daemon: accept loop, worker pool, shutdown machinery.
//!
//! Thread structure (per connection, the handler is split so one socket
//! can carry many jobs in flight):
//!
//! ```text
//! accept loop ──spawns──▶ reader (parse + cache-check + enqueue;
//!                         never blocks on a worker)
//!                             │ fast paths (cache hit, control ops,
//!                             │ typed errors) answer immediately ─┐
//!                             │ queue.try_push(Job{reply})        │
//!                             ▼                                   │
//!                      bounded job queue  ◀── backpressure        │
//!                             │                                   │
//!                  worker pool (N threads) — compile_with_cancel  │
//!                             │                                   │
//!                     job.reply.send(response) ──▶ per-connection │
//!                                                 reply channel ◀─┘
//!                                                     │
//!                                          writer thread → socket
//! ```
//!
//! Every response is tagged with the request's client-chosen `id` (when
//! given), so compile responses may stream back in completion order and
//! still be matched up; control responses keep request order because the
//! reader answers them inline through the same channel.
//!
//! Shutdown (`drain`): stop accepting, close the queue, let workers finish
//! what is queued, then exit. Shutdown (`abort`): additionally raise the
//! shared cancellation flag — in-flight CEGIS runs stop at the next solver
//! checkpoint — and fail all still-queued jobs with `shutting_down`.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chipmunk::plan::{StepOutcome, Strategy};
use chipmunk::{
    cache_key, certify_config, compile_with_control, layout_names, plan_compilation, Certificate,
    CertifyRequest, CheckBudget, CodegenError, CompilerOptions, InfeasibleCert, PlanControl,
};
use chipmunk_lang::{parse, Program};
use chipmunk_pisa::GridSpec;
use chipmunk_trace::json::Json;

use crate::cache::ResultCache;
use crate::faults::{self, FaultKind};
use crate::journal::Journal;
use crate::metrics::{
    self, Family, MetricsServer, Outcome, Stage, Strat, Telemetry, OUTCOMES, STAGES,
};
use crate::protocol::{
    codegen_error_code, decode_result, error_response, infeasible_response, parse_line,
    remap_result, result_doc, with_id, with_trace, CacheAction, Incoming, JobOptions, Request,
};
use crate::queue::{Bounded, PushError};
use crate::trace_store::TraceStore;

/// Salt mixed into the job's CEGIS seed for the serve-side certification
/// sweep, so it draws inputs independent of both the synthesis-side
/// initial samples and the in-compiler certification pass.
const SERVE_CERT_SEED_SALT: u64 = 0x5e1e_c7ab_1e0b_5e55;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads. `0` is allowed (jobs queue but never run) — useful
    /// for deterministic backpressure tests.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it get `queue_full`.
    pub queue_capacity: usize,
    /// Directory for the on-disk cache tier (`None` = memory-only).
    pub cache_dir: Option<PathBuf>,
    /// Result-cache entry bound; past it the least-recently-used entry is
    /// evicted (`None` = unbounded). Applies to both tiers: the JSONL
    /// file is compacted down to the retained set.
    pub cache_max_entries: Option<usize>,
    /// Concurrent connection handlers. A connection accepted beyond this
    /// is answered with one `busy` error line and closed, so idle or slow
    /// clients cannot exhaust threads (the bounded queue already protects
    /// compute).
    pub max_connections: usize,
    /// Per-socket read deadline: a connection whose client sends nothing
    /// for this long **and has no job in flight** is dropped (`None` =
    /// wait forever). Does not bound compilation itself — a client
    /// silently waiting for its pipelined jobs is not idle.
    pub idle_timeout: Option<Duration>,
    /// Directory for the write-ahead job journal (`None` = no journal).
    /// With a journal, accepted jobs survive a daemon kill: on restart,
    /// jobs that were accepted but never answered are replayed into the
    /// queue, their results land in the cache, and clients collect them
    /// with the `poll` op. Stats report them as `recovered`.
    pub journal_dir: Option<PathBuf>,
    /// Bind address for the Prometheus text-exposition endpoint (`None`
    /// consults the `CHIPMUNK_METRICS_ADDR` environment variable; empty /
    /// unset = no endpoint). A bind failure degrades to stats-only — the
    /// daemon logs it and keeps serving.
    pub metrics_addr: Option<String>,
    /// Slow-job threshold in milliseconds: a job whose end-to-end time
    /// meets it has its span tree dumped to stderr (`None` = never).
    pub slow_ms: Option<u64>,
    /// Default per-request deadline in milliseconds, applied to compiles
    /// that carry no `deadline_ms` of their own (`None` = no default —
    /// jobs without a deadline wait and run as long as they need).
    pub default_deadline_ms: Option<u64>,
    /// Slack past a job's deadline before the watchdog hard-cancels it.
    /// Covers cancellation-poll latency, so an answer landing "just
    /// after" the deadline is still delivered rather than killed.
    pub deadline_grace_ms: u64,
    /// Brownout trigger: when the rolling queue-wait p95 crosses this
    /// many milliseconds the daemon enters brownout (`None` = brownout
    /// disabled). Exit uses hysteresis at half the threshold.
    pub brownout_p95_ms: Option<u64>,
    /// During brownout, compiles with priority strictly below this get
    /// cache-hit-only service: a miss is answered `busy` with a
    /// `retry_after_ms` hint instead of being queued. The default (0)
    /// never degrades anyone — priorities are non-negative.
    pub shed_below_priority: i32,
    /// How long after a watchdog hard-cancel the solver may keep running
    /// before the watchdog gives up on cooperation: the job is answered
    /// `expired`, the stuck worker abandoned, and a replacement spawned.
    pub watchdog_escalate_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(4),
            queue_capacity: 64,
            cache_dir: None,
            cache_max_entries: None,
            max_connections: 64,
            idle_timeout: Some(Duration::from_secs(60)),
            journal_dir: None,
            metrics_addr: None,
            slow_ms: None,
            default_deadline_ms: None,
            deadline_grace_ms: 1000,
            brownout_p95_ms: None,
            shed_below_priority: 0,
            watchdog_escalate_ms: 2000,
        }
    }
}

/// Job-flow counters. Conservation invariant: once the server quiesces,
/// `submitted == completed + failed + drained + panicked + expired +
/// shed` — every queued job is answered exactly once (a worker serving a
/// queued twin from cache counts as `completed`, and also bumps
/// `served_cached`; a job whose deadline elapsed counts as `expired`; a
/// job evicted from a full queue for a higher-priority newcomer counts
/// as `shed`).
#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    /// Queued jobs failed by abortive shutdown instead of running.
    drained: AtomicU64,
    /// Jobs answered with an `internal` error because the compile call
    /// panicked (isolated) or the worker running them died (its
    /// [`ReplyHandle`] answered on drop).
    panicked: AtomicU64,
    /// Worker threads respawned by the dispatch-time watchdog after a
    /// pool member died.
    workers_respawned: AtomicU64,
    /// Responses served from the result cache: the reader's fast path
    /// plus the worker's after-the-wait re-check. Fast-path serves never
    /// count as `submitted` (they are not queued).
    served_cached: AtomicU64,
    rejected_full: AtomicU64,
    rejected_busy: AtomicU64,
    synth_ms_total: AtomicU64,
    synth_ms_max: AtomicU64,
    wait_ms_total: AtomicU64,
    /// Journal-replayed jobs re-queued (or already answered in cache) at
    /// startup. Replayed jobs also count as `submitted` when they enter
    /// the queue, so the conservation invariant covers them.
    recovered: AtomicU64,
    /// Result documents that passed the serve-side certification check
    /// before leaving the daemon (fresh, cache-hit, and polled).
    certified: AtomicU64,
    /// Result documents that failed certification (each one is also
    /// quarantined if it came from the cache).
    uncertified: AtomicU64,
    /// Cache entries removed from both tiers after failing certification.
    quarantined: AtomicU64,
    /// Racing portfolio steps cancelled because a sibling strategy won.
    /// Spent search, not failures — kept out of `failed` by construction.
    portfolio_cancelled: AtomicU64,
    /// Infeasible verdicts served with a DRAT proof the daemon itself
    /// re-checked before the response left the process.
    infeasible_certified: AtomicU64,
    /// Infeasible verdicts served explicitly unchecked — the proof was
    /// truncated, lost to an I/O fault, failed its re-check, or proof
    /// logging was disabled. Never silent: the response says why.
    infeasible_unchecked: AtomicU64,
    /// The configured metrics endpoint failed to bind and the daemon is
    /// running stats-only (the `metrics_io` degradation).
    metrics_degraded: AtomicBool,
    /// Jobs answered with the `expired` error: their deadline elapsed in
    /// the queue, mid-compile (the solver yielded to the watchdog's
    /// cancel), or at watchdog escalation.
    expired: AtomicU64,
    /// Queued jobs evicted under saturation to admit a higher-priority
    /// newcomer, answered with the `shed` error.
    shed: AtomicU64,
    /// Watchdog hard-cancels: jobs past deadline+grace whose cancel flag
    /// was raised. Most yield cooperatively and count only here.
    watchdog_cancelled: AtomicU64,
    /// Watchdog escalations: the solver ignored its cancel flag past the
    /// escalation bound, so the job was answered `expired`, its worker
    /// abandoned, and a replacement spawned.
    watchdog_escalations: AtomicU64,
    /// Brownout entries (queue-wait p95 crossed the threshold).
    brownout_entered: AtomicU64,
    /// Brownout exits (p95 fell below half the threshold, or the rolling
    /// window drained).
    brownout_exited: AtomicU64,
    /// Compiles refused during brownout (cache-miss, low priority):
    /// answered `busy` with a `retry_after_ms` hint. Never `submitted`,
    /// so outside the conservation law by construction.
    brownout_busy: AtomicU64,
    /// Worst end-to-end latency (ms) over answered *admitted* jobs —
    /// the overload soak asserts it never exceeds deadline + grace.
    e2e_ms_max: AtomicU64,
}

/// Where a job's single response goes: the owning connection's reply
/// channel. Consuming `send` ties the request `id` to the response and
/// releases the connection's in-flight slot, so the reader's idle-timeout
/// check sees the reply strictly after it is on the channel.
///
/// Dropping a handle unanswered — the job vanished with a dying worker,
/// or was discarded with the queue — is itself an answer: the client gets
/// a structured `internal` error and the job counts as `panicked`, so no
/// client ever waits forever and the conservation invariant survives
/// worker deaths.
struct ReplyHandle {
    tx: mpsc::Sender<Json>,
    pending: Arc<AtomicUsize>,
    stats: Arc<Stats>,
    /// Responses handed to connection writers but not yet flushed
    /// ([`Shared::unwritten`]); [`ServerHandle::join`] waits on it.
    unwritten: Arc<AtomicUsize>,
    id: Option<Json>,
    /// The job's trace id, echoed on whatever response answers it —
    /// including the `internal` error a dropped handle synthesizes.
    trace: Option<String>,
    answered: bool,
}

impl ReplyHandle {
    fn send(mut self, response: Json) {
        self.deliver(response);
    }

    fn deliver(&mut self, response: Json) {
        if self.answered {
            return;
        }
        self.answered = true;
        let response = match self.trace.take() {
            Some(trace) => with_trace(response, &trace),
            None => response,
        };
        queue_response(&self.unwritten, &self.tx, with_id(response, self.id.take()));
        self.pending.fetch_sub(1, Ordering::Release);
    }
}

/// Hand a response to a connection's writer thread, keeping the global
/// unflushed count exact: the count rises before the send so a racing
/// [`ServerHandle::join`] can never observe zero while a response is in
/// a channel, and falls back immediately if the writer is already gone
/// (the send fails and nothing will ever be flushed).
fn queue_response(unwritten: &AtomicUsize, tx: &mpsc::Sender<Json>, doc: Json) {
    unwritten.fetch_add(1, Ordering::AcqRel);
    if tx.send(doc).is_err() {
        unwritten.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Drop for ReplyHandle {
    fn drop(&mut self) {
        if !self.answered {
            self.stats.panicked.fetch_add(1, Ordering::Relaxed);
            self.deliver(error_response(
                "internal",
                "worker died while running this job; the pool has been respawned — safe to retry",
            ));
        }
    }
}

struct Job {
    program: Program,
    opts: CompilerOptions,
    key: String,
    /// Field / state names in the submitter's index order (the layout
    /// `compile` will use) — cached results are remapped through these.
    fields: Vec<String>,
    states: Vec<String>,
    /// The job's trace id: client-supplied, server-assigned, or (for a
    /// replayed job) recovered from the journal. Stamped on the
    /// `serve.job` span so nested compile spans correlate with it.
    trace: String,
    /// Spec family label for the latency histograms.
    family: Family,
    /// Fingerprint of the job's compile plan (None when planning failed —
    /// the worker will surface the same error).
    plan_fp: Option<String>,
    /// First plan step to execute: 0 for fresh jobs; for a replayed job,
    /// the journaled progress of the *same* (fingerprint-checked) plan.
    resume_from: usize,
    /// Absolute wall-clock deadline (admission time + the request's
    /// `deadline_ms`, or the server default). `None` = the client waits
    /// forever. Replayed jobs get a fresh full window from replay time —
    /// their original client is gone and the compile runs for the cache.
    deadline: Option<Instant>,
    reply: ReplyHandle,
    enqueued: Instant,
}

/// One in-flight compile as the watchdog sees it. Registered by the
/// worker just before the compile call, removed just after. The reply
/// handle lives in a shared slot so exactly one of {worker, watchdog}
/// answers: whoever takes it first wins, the other sees `None`.
struct WatchEntry {
    key: String,
    family: Family,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Per-job cooperative cancel flag, passed to the compile. Raised by
    /// the watchdog at deadline+grace and fanned to by abortive shutdown.
    cancel: Arc<AtomicBool>,
    /// The job's answer-exactly-once handle.
    reply: Arc<Mutex<Option<ReplyHandle>>>,
    /// When the watchdog raised `cancel`; escalation triggers once this
    /// is older than the escalation bound.
    cancelled_at: Option<Instant>,
}

struct Shared {
    queue: Bounded<Job>,
    cache: ResultCache,
    journal: Option<Journal>,
    stats: Arc<Stats>,
    stopping: AtomicBool,
    abort: Arc<AtomicBool>,
    in_flight: AtomicUsize,
    conns: AtomicUsize,
    max_conns: usize,
    idle_timeout: Option<Duration>,
    workers: usize,
    /// Workers currently alive (incremented before spawn, decremented by
    /// each worker's [`WorkerGuard`] even when it dies by panic). The
    /// dispatch-time watchdog compares this against `workers`.
    live_workers: AtomicUsize,
    /// Monotonic worker name counter, so respawned threads are
    /// distinguishable in traces from the ones they replace.
    next_worker: AtomicUsize,
    /// Join handles for every worker ever spawned (initial pool +
    /// respawns). Drained by [`ServerHandle::join`].
    worker_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Responses queued to connection writer threads but not yet written
    /// to (or abandoned with) their sockets. Connection writers are
    /// detached, so [`ServerHandle::join`] waits on this count — without
    /// it the process can exit between a shutdown ack entering the reply
    /// channel and the writer flushing it, and the client sees a bare
    /// connection reset instead of the ack.
    unwritten: Arc<AtomicUsize>,
    addr: SocketAddr,
    /// Rolling latency histograms and solver gauges.
    telemetry: Arc<Telemetry>,
    /// Ring buffer of recent trace records, fed by a tee.
    trace_store: Arc<TraceStore>,
    /// The running exposition endpoint, if one bound. Shut down first,
    /// joined by [`ServerHandle::join`].
    metrics: Mutex<Option<MetricsServer>>,
    /// Sequence for server-assigned trace ids.
    next_trace: AtomicU64,
    /// Slow-job threshold in milliseconds (`None` = never dump).
    slow_ms: Option<u64>,
    /// Server-wide default for requests that carry no `deadline_ms`.
    default_deadline_ms: Option<u64>,
    /// Grace past the deadline before the watchdog hard-cancels.
    deadline_grace: Duration,
    /// Queue-wait p95 threshold that trips brownout (`None` = disabled).
    brownout_p95_ms: Option<u64>,
    /// During brownout, cache-missing jobs below this priority get `busy`.
    shed_below_priority: i32,
    /// How long after a watchdog cancel a solver may keep running before
    /// the worker is abandoned and respawned.
    watchdog_escalate: Duration,
    /// Whether the server is currently degraded (brownout).
    brownout: AtomicBool,
    /// Sliding window of recent queue-wait samples (ms), recorded at
    /// dequeue; its p95 drives the brownout state machine.
    wait_window: metrics::RollingWindow,
    /// In-flight compiles visible to the watchdog, keyed by a local id.
    watch: Mutex<HashMap<u64, WatchEntry>>,
    /// Sequence for watch-registry ids.
    next_watch: AtomicU64,
}

fn lock_watch(shared: &Shared) -> std::sync::MutexGuard<'_, HashMap<u64, WatchEntry>> {
    match shared.watch.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Decrements the live-worker count when a worker exits — normally or by
/// unwinding — so the watchdog sees the true pool size.
struct WorkerGuard(Arc<Shared>);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        self.0.live_workers.fetch_sub(1, Ordering::AcqRel);
    }
}

fn lock_handles(shared: &Shared) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    match shared.worker_handles.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Spawn one worker thread. The live count is reserved *before* the
/// thread starts so two concurrent watchdog checks cannot both spawn for
/// the same deficit.
fn spawn_worker(shared: &Arc<Shared>, handles: &mut Vec<JoinHandle<()>>) {
    let idx = shared.next_worker.fetch_add(1, Ordering::Relaxed);
    shared.live_workers.fetch_add(1, Ordering::AcqRel);
    let sh = shared.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("chipmunk-worker-{idx}"))
        .spawn(move || {
            let _guard = WorkerGuard(sh.clone());
            worker_loop(&sh);
        });
    match spawned {
        Ok(h) => handles.push(h),
        Err(_) => {
            shared.live_workers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Watchdog, run on every job dispatch: if the pool is below its
/// configured size (a worker died), respawn the missing workers. Cheap
/// when healthy — one atomic load.
fn ensure_workers(shared: &Arc<Shared>) {
    if shared.workers == 0 || shared.live_workers.load(Ordering::Acquire) >= shared.workers {
        return;
    }
    let mut handles = lock_handles(shared);
    while shared.live_workers.load(Ordering::Acquire) < shared.workers {
        spawn_worker(shared, &mut handles);
        shared
            .stats
            .workers_respawned
            .fetch_add(1, Ordering::Relaxed);
        chipmunk_trace::counter_add!("serve.worker.respawned", 1);
    }
}

/// Decrements the live-connection count when the last thread of a
/// connection exits (or when its thread failed to spawn and the closure
/// is dropped unrun).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::Release);
    }
}

/// A running server: its address plus the threads to join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    /// Token of the trace tee feeding [`Shared::trace_store`]; removed on
    /// join so a later server in the same process does not feed it.
    tee_token: u64,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The bound metrics-endpoint address, or `None` when the endpoint is
    /// disabled or degraded to stats-only after a bind failure.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        lock_metrics(&self.shared).as_ref().map(MetricsServer::addr)
    }

    /// Trigger shutdown programmatically (same as a `shutdown` request).
    pub fn shutdown(&self, abort: bool) {
        begin_shutdown(&self.shared, abort);
    }

    /// Block until the accept loop and every worker have exited. Workers
    /// respawned by the watchdog are joined too — the handle list is
    /// drained until it stays empty.
    pub fn join(self) {
        let _ = self.accept.join();
        loop {
            let handles = std::mem::take(&mut *lock_handles(&self.shared));
            if handles.is_empty() {
                break;
            }
            for w in handles {
                let _ = w.join();
            }
        }
        // Connection writer threads are detached, so joining the accept
        // loop and workers does not prove the last responses reached their
        // sockets — in particular the shutdown ack, which is queued just
        // before teardown begins. Wait (bounded: a wedged socket must not
        // pin the process) for the unflushed count to settle so a caller
        // that exits right after `join` never eats an already-produced
        // response.
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.unwritten.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if let Some(metrics) = lock_metrics(&self.shared).take() {
            metrics.begin_shutdown();
            metrics.join();
        }
        chipmunk_trace::remove_tee(self.tee_token);
    }
}

fn lock_metrics(shared: &Shared) -> std::sync::MutexGuard<'_, Option<MetricsServer>> {
    match shared.metrics.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Bind, spawn the worker pool and the accept loop, and return immediately.
pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    faults::init_from_env();
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let (journal, replay) = match &config.journal_dir {
        Some(dir) => {
            let (j, replay) = Journal::open(dir)?;
            (Some(j), replay)
        }
        None => (None, Vec::new()),
    };
    let shared = Arc::new(Shared {
        queue: Bounded::new(config.queue_capacity),
        cache: ResultCache::open_bounded(config.cache_dir.as_deref(), config.cache_max_entries)?,
        journal,
        stats: Arc::new(Stats::default()),
        stopping: AtomicBool::new(false),
        abort: Arc::new(AtomicBool::new(false)),
        in_flight: AtomicUsize::new(0),
        conns: AtomicUsize::new(0),
        max_conns: config.max_connections,
        idle_timeout: config.idle_timeout,
        workers: config.workers,
        live_workers: AtomicUsize::new(0),
        next_worker: AtomicUsize::new(0),
        worker_handles: Mutex::new(Vec::new()),
        unwritten: Arc::new(AtomicUsize::new(0)),
        addr,
        telemetry: Arc::new(Telemetry::new()),
        trace_store: TraceStore::new(crate::trace_store::DEFAULT_CAPACITY),
        metrics: Mutex::new(None),
        next_trace: AtomicU64::new(1),
        slow_ms: config.slow_ms,
        default_deadline_ms: config.default_deadline_ms,
        deadline_grace: Duration::from_millis(config.deadline_grace_ms),
        brownout_p95_ms: config.brownout_p95_ms,
        shed_below_priority: config.shed_below_priority,
        watchdog_escalate: Duration::from_millis(config.watchdog_escalate_ms),
        brownout: AtomicBool::new(false),
        wait_window: metrics::RollingWindow::new(Duration::from_secs(5), 512),
        watch: Mutex::new(HashMap::new()),
        next_watch: AtomicU64::new(0),
    });
    // The trace store sees the live record stream from here on: the
    // `trace` op, the slow-job log, and kill-restart correlation all read
    // from it. The tee is removed when the handle is joined.
    let tee_token = shared.trace_store.install();
    start_metrics_endpoint(&shared, config);
    {
        let mut handles = lock_handles(&shared);
        for _ in 0..config.workers {
            spawn_worker(&shared, &mut handles);
        }
        let sh = shared.clone();
        if let Ok(h) = std::thread::Builder::new()
            .name("chipmunk-watchdog".to_string())
            .spawn(move || watchdog_loop(&sh))
        {
            handles.push(h);
        }
    }
    replay_journal(&shared, replay);
    let accept = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("chipmunk-accept".to_string())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn accept loop")
    };
    Ok(ServerHandle {
        shared,
        accept,
        tee_token,
    })
}

/// Bind and start the exposition endpoint when one is configured (flag
/// first, then the `CHIPMUNK_METRICS_ADDR` environment variable). A bind
/// failure — including an injected `metrics_io` fault — is a logged
/// degradation to stats-only, never a startup error: losing observability
/// must not cost availability. The render closure holds a weak reference
/// so the endpoint does not keep a dead server's telemetry alive.
fn start_metrics_endpoint(shared: &Arc<Shared>, config: &ServerConfig) {
    let addr = config
        .metrics_addr
        .clone()
        .or_else(|| std::env::var("CHIPMUNK_METRICS_ADDR").ok())
        .filter(|a| !a.is_empty());
    let Some(addr) = addr else { return };
    let weak = Arc::downgrade(shared);
    let render: Arc<dyn Fn() -> String + Send + Sync> = Arc::new(move || {
        weak.upgrade()
            .map(|shared| render_exposition(&shared))
            .unwrap_or_default()
    });
    match metrics::serve_exposition(&addr, render) {
        Ok(server) => {
            *lock_metrics(shared) = Some(server);
        }
        Err(e) => {
            shared.stats.metrics_degraded.store(true, Ordering::Relaxed);
            eprintln!(
                "chipmunk-serve: metrics endpoint on {addr} unavailable ({e}); \
                 continuing stats-only"
            );
        }
    }
}

/// Re-queue every journaled job a previous process accepted but never
/// answered. Replayed jobs carry a *discard* reply handle (their client
/// is gone — the receiver half of a fresh channel is dropped immediately),
/// so the compile runs for its cache side effect; the original submitter
/// collects the result with the `poll` op. Each replayed job counts as
/// `recovered`, and as `submitted` when it enters the queue, so the
/// conservation invariant keeps holding: a worker answers it as usual.
fn replay_journal(shared: &Arc<Shared>, replay: Vec<crate::journal::PendingJob>) {
    for pending in replay {
        let Some(journal) = &shared.journal else {
            return;
        };
        let Ok(program) = parse(&pending.program) else {
            // Unparseable journal record: nothing can be owed for it.
            journal.completed(&pending.key);
            continue;
        };
        let Ok(opts) = pending.options.to_compiler_options() else {
            journal.completed(&pending.key);
            continue;
        };
        let key = cache_key(&program, &opts);
        shared.stats.recovered.fetch_add(1, Ordering::Relaxed);
        chipmunk_trace::counter_add!("serve.journal.recovered", 1);
        if shared.cache.peek(&key).is_some() {
            // Answered before the crash (or by a twin): the poll op will
            // find it — nothing left to recompute.
            journal.completed(&pending.key);
            continue;
        }
        let (fields, states) = layout_names(&program);
        let family = family_of(&states);
        // The replayed job keeps its original trace id (when the journal
        // recorded one), so telemetry from the recompile correlates with
        // the pre-crash submission.
        let trace = pending
            .trace
            .clone()
            .unwrap_or_else(|| next_trace_id(shared));
        // Journaled plan progress is honored only when this daemon derives
        // the *same* plan fingerprint the previous one journaled — a
        // planner (or options) change restarts the plan from step 0.
        let plan_fp = plan_compilation(&program, &opts)
            .ok()
            .map(|p| p.fingerprint());
        let resume_from = match (&plan_fp, &pending.plan) {
            (Some(derived), Some(journaled)) if derived == journaled => pending.resume_from,
            _ => 0,
        };
        if resume_from > 0 {
            chipmunk_trace::event!(
                "serve.journal.resume",
                key = pending.key.as_str(),
                step = resume_from as u64,
            );
        }
        let priority = pending.priority;
        let (tx, _rx) = mpsc::channel::<Json>();
        let job = Job {
            program,
            opts,
            key,
            fields,
            states,
            trace,
            family,
            plan_fp,
            resume_from,
            reply: ReplyHandle {
                tx,
                pending: Arc::new(AtomicUsize::new(1)),
                stats: shared.stats.clone(),
                unwritten: shared.unwritten.clone(),
                id: None,
                trace: None,
                answered: false,
            },
            // A fresh full deadline window from replay time: the original
            // client is gone, and the recompile runs to settle the journal
            // and warm the cache — an already-elapsed window would expire
            // every replayed job at dequeue and defeat the at-least-once
            // promise.
            deadline: pending
                .options
                .deadline_ms
                .or(shared.default_deadline_ms)
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            enqueued: Instant::now(),
        };
        match shared
            .queue
            .try_push_with_priority(job, i32::from(priority))
        {
            Ok(()) => {
                shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            }
            Err(PushError::Full(job)) | Err(PushError::Closed(job)) => {
                // Queue can't take it now: leave the journal record
                // pending so the *next* restart retries, and answer the
                // discard handle so it does not count as panicked.
                shared.stats.recovered.fetch_sub(1, Ordering::Relaxed);
                job.reply.send(error_response(
                    "queue_full",
                    "replay deferred to next start",
                ));
            }
        }
    }
}

/// Mark `key` answered in the journal (no-op without one). Called on
/// every terminal answer for a queued job — success, typed failure,
/// drain — but *not* when a worker dies mid-job: that job's journal
/// record stays pending and replays on the next start, which is exactly
/// the at-least-once retry the `internal` error promises the client.
fn journal_done(shared: &Shared, key: &str) {
    if let Some(journal) = &shared.journal {
        journal.completed(key);
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Relaxed) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(shared.idle_timeout);
        // Reserve a connection slot in one atomic step: a separate
        // load-then-increment lets two simultaneous accepts both pass the
        // check and exceed the cap.
        let reserved = shared
            .conns
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < shared.max_conns).then_some(n + 1)
            })
            .is_ok();
        if !reserved {
            shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.conn.rejected", 1);
            let _ = write_line(
                &mut stream,
                &error_response("busy", "connection limit reached; retry later"),
            );
            continue;
        }
        let guard = ConnGuard(shared.clone());
        // Connection handlers are detached: they end when the client
        // disconnects (or its idle timeout expires), and any pending reply
        // channel they hold is answered by the draining workers before
        // those exit.
        let _ = std::thread::Builder::new()
            .name("chipmunk-conn".to_string())
            .spawn(move || handle_connection(stream, guard));
    }
}

fn begin_shutdown(shared: &Arc<Shared>, abort: bool) {
    if shared.stopping.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    if abort {
        shared.abort.store(true, Ordering::SeqCst);
        let drained = shared.queue.drain_now();
        shared
            .stats
            .drained
            .fetch_add(drained.len() as u64, Ordering::Relaxed);
        for job in drained {
            // An abort drain is a deliberate answer ("shutting_down"), not
            // a crash: complete the journal record so the job does not
            // replay on the next start against the operator's intent.
            job.reply
                .send(error_response("shutting_down", "job aborted by shutdown"));
            journal_done(shared, &job.key);
        }
        // Fan the abort out to every in-flight compile's per-job cancel
        // flag — compiles launched before the abort carry their own flag,
        // not the shared one.
        for entry in lock_watch(shared).values() {
            entry.cancel.store(true, Ordering::SeqCst);
        }
    }
    shared.queue.close();
    if let Some(metrics) = &*lock_metrics(shared) {
        metrics.begin_shutdown();
    }
    // Wake the accept loop out of `accept()` with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

/// One connection: a reader (this thread) and a writer thread joined by a
/// reply channel. The reader never blocks on a worker, so the socket can
/// carry any number of jobs in flight; the writer streams responses back
/// as they are produced.
fn handle_connection(stream: TcpStream, guard: ConnGuard) {
    let shared = guard.0.clone();
    let writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Json>();
    // The writer owns the connection slot: it is the last thread to touch
    // the socket (workers may still be finishing this connection's jobs
    // after the reader sees EOF), so the slot frees only when every
    // accepted job has been answered or dropped.
    let unwritten = shared.unwritten.clone();
    let spawned = std::thread::Builder::new()
        .name("chipmunk-conn-write".to_string())
        .spawn(move || {
            let _guard = guard;
            let mut writer = writer;
            // Every message consumed from the channel — written, failed to
            // write, or drained after a failure — settles one unit of the
            // global unflushed count that `queue_response` raised.
            while let Ok(doc) = rx.recv() {
                if faults::armed() && faults::fired(FaultKind::ConnReset) {
                    // Simulate the connection dying just before this
                    // response hit the wire: tear the socket down (the
                    // reader's next read fails too) and drain like a real
                    // write failure.
                    unwritten.fetch_sub(1, Ordering::AcqRel);
                    let _ = writer.shutdown(std::net::Shutdown::Both);
                    for _ in rx.iter() {
                        unwritten.fetch_sub(1, Ordering::AcqRel);
                    }
                    break;
                }
                let written = write_line(&mut writer, &doc);
                unwritten.fetch_sub(1, Ordering::AcqRel);
                if written.is_err() {
                    // Client gone: stop writing, but keep draining so
                    // worker sends land somewhere until their handles drop.
                    for _ in rx.iter() {
                        unwritten.fetch_sub(1, Ordering::AcqRel);
                    }
                    break;
                }
            }
        });
    if spawned.is_err() {
        return;
    }
    let pending = Arc::new(AtomicUsize::new(0));
    read_loop(stream, &shared, &tx, &pending);
    // Dropping `tx` lets the writer exit once the last in-flight job
    // (each holds a Sender clone) has replied.
}

fn read_loop(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<Json>,
    pending: &Arc<AtomicUsize>,
) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break, // EOF
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    let line = String::from_utf8_lossy(&line[..pos]);
                    handle_line(line.trim(), shared, tx, pending);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The idle deadline fired. A client waiting on in-flight
                // jobs is not idle — keep reading; replies are written by
                // the writer thread regardless.
                if pending.load(Ordering::Acquire) == 0 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // A final unterminated line is still a request (`lines()` semantics).
    if !buf.is_empty() {
        let line = String::from_utf8_lossy(&buf).to_string();
        handle_line(line.trim(), shared, tx, pending);
    }
}

fn handle_line(
    line: &str,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<Json>,
    pending: &Arc<AtomicUsize>,
) {
    if line.is_empty() {
        return;
    }
    let Incoming { id, request } = parse_line(line);
    let op = match &request {
        Err(_) => "invalid",
        Ok(Request::Status) => "status",
        Ok(Request::Stats) => "stats",
        Ok(Request::Cache { .. }) => "cache",
        Ok(Request::Shutdown { .. }) => "shutdown",
        Ok(Request::Compile { .. }) => "compile",
        Ok(Request::Poll { .. }) => "poll",
        Ok(Request::Trace { .. }) => "trace",
        Ok(Request::Telemetry) => "telemetry",
    };
    chipmunk_trace::event!("serve.request", op = op);
    let response = match request {
        Err(e) => error_response("parse", &e),
        Ok(Request::Status) => status_response(shared),
        Ok(Request::Stats) => stats_response(shared),
        Ok(Request::Cache { action }) => cache_response(shared, action),
        Ok(Request::Shutdown { abort }) => {
            // Queue the ack first, then trigger: channel FIFO guarantees
            // the client sees the ack even as the server tears down.
            let mode = if abort { "abort" } else { "drain" };
            let ack = Json::obj([("ok", Json::Bool(true)), ("stopping", Json::from(mode))]);
            queue_response(&shared.unwritten, tx, with_id(ack, id));
            begin_shutdown(shared, abort);
            return;
        }
        Ok(Request::Compile {
            program,
            options,
            trace,
            priority,
        }) => {
            start_compile(shared, &program, &options, trace, priority, tx, pending, id);
            return;
        }
        Ok(Request::Poll { program, options }) => poll_response(shared, &program, &options),
        Ok(Request::Trace { trace }) => trace_response(shared, &trace),
        Ok(Request::Telemetry) => telemetry_response(shared),
    };
    queue_response(&shared.unwritten, tx, with_id(response, id));
}

/// Mint a server-assigned trace id: the daemon's pid plus a process-wide
/// sequence, so ids stay unique across a kill-restart pair sharing a
/// journal.
fn next_trace_id(shared: &Shared) -> String {
    format!(
        "{:08x}-{:04x}",
        std::process::id(),
        shared.next_trace.fetch_add(1, Ordering::Relaxed)
    )
}

/// Spec family label: does the program touch stateful registers?
fn family_of(states: &[String]) -> Family {
    if states.is_empty() {
        Family::Stateless
    } else {
        Family::Stateful
    }
}

/// Whether a cached document's name layout differs from the requester's —
/// i.e. serving it required an actual name remap (outcome `remapped`)
/// rather than a verbatim cache read (outcome `cached`).
fn layout_differs(cached: &Json, fields: &[String], states: &[String]) -> bool {
    let differs = |key: &str, want: &[String]| match cached.get(key) {
        Some(Json::Arr(names)) => {
            names.len() != want.len()
                || names
                    .iter()
                    .zip(want)
                    .any(|(n, w)| n.as_str() != Some(w.as_str()))
        }
        _ => true,
    };
    differs("fields", fields) || differs("states", states)
}

/// Serve-side certification: re-check a result *document* (cache hit,
/// name-remapped twin, or freshly encoded) against the submitted program
/// by differential execution before it leaves the daemon. The grid is
/// reconstructed from the document's shape plus the requester's ALU
/// specs — sound because those specs are part of the cache key. Runs
/// under panic isolation: certification is the last line of defense
/// against corrupted documents, so even a panic in the decoder must
/// become a typed refusal, not a dead reader thread.
fn certify_wire(program: &Program, opts: &CompilerOptions, doc: &Json) -> Result<(), String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let wire = decode_result(doc)?;
        let grid = GridSpec {
            stages: wire.stages,
            slots: wire.slots,
            stateless: opts.stateless.clone(),
            stateful: opts.stateful.clone(),
        };
        certify_config(
            program,
            &CertifyRequest {
                grid: &grid,
                pipeline: &wire.pipeline,
                field_to_container: &wire.field_to_container,
                counterexamples: &wire.counterexamples,
                width: opts.cegis.verify_width,
                domain_width: opts.cegis.domain_width,
                samples: chipmunk::certify::DEFAULT_SAMPLES,
                seed: opts.cegis.seed ^ SERVE_CERT_SEED_SALT,
            },
        )
        .map(|_| ())
    }))
    .unwrap_or_else(|_| Err("certification panicked on this document".to_string()))
}

/// How many unit propagations the serve-side proof re-check may spend
/// before degrading the verdict to unchecked instead of blocking a
/// worker. Mirrors the compiler-side check budget.
const RECHECK_PROPAGATION_LIMIT: u64 = 200_000_000;

/// Serve-side proof certification — the infeasibility twin of
/// [`certify_wire`]: the DRAT certificate text that rides the response
/// is re-parsed and re-checked in-process before the verdict leaves the
/// daemon, so a bug between the solver's in-memory proof and its
/// serialization cannot ship a trusted-but-wrong "cannot fit in k
/// stages". The `proof_io` fault fires here: losing the proof at
/// materialization degrades the verdict to explicitly unchecked — never
/// a panic, never a silently-trusted claim. A verdict that is certified
/// but carries no proof text (the certificate was too large to ship)
/// keeps its compiler-side check, which already ran in this process.
fn recheck_infeasible(shared: &Shared, mut cert: InfeasibleCert) -> InfeasibleCert {
    fn degrade(cert: &mut InfeasibleCert, why: String) {
        cert.certified = false;
        cert.proof = None;
        cert.reason = Some(why);
    }
    if faults::armed() && faults::fired(FaultKind::ProofIo) {
        chipmunk_trace::counter_add!("serve.proof.io_failed", 1);
        degrade(
            &mut cert,
            "proof I/O fault while materializing the certificate; verdict degraded to unchecked"
                .to_string(),
        );
    } else if cert.certified {
        if let Some(text) = cert.proof.clone() {
            let rechecked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let parsed =
                    Certificate::parse(&text).map_err(|e| format!("proof re-parse failed: {e}"))?;
                match parsed.check(&CheckBudget {
                    propagations: Some(RECHECK_PROPAGATION_LIMIT),
                    account: None,
                }) {
                    chipmunk::CheckOutcome::Valid => Ok(()),
                    chipmunk::CheckOutcome::OutOfBudget => {
                        Err("proof re-check exhausted its propagation budget".to_string())
                    }
                    chipmunk::CheckOutcome::Invalid(why) => {
                        Err(format!("proof re-check failed: {why}"))
                    }
                }
            }))
            .unwrap_or_else(|_| Err("proof re-check panicked on this certificate".to_string()));
            if let Err(why) = rechecked {
                chipmunk_trace::counter_add!("serve.proof.recheck_failed", 1);
                degrade(&mut cert, why);
            }
        }
    }
    if cert.certified {
        shared
            .stats
            .infeasible_certified
            .fetch_add(1, Ordering::Relaxed);
    } else {
        shared
            .stats
            .infeasible_unchecked
            .fetch_add(1, Ordering::Relaxed);
        chipmunk_trace::counter_add!("serve.proof.unchecked", 1);
    }
    cert
}

/// Apply the `corrupt` fault (bit-flip a cached document before it is
/// served) when armed — the chaos hook certification must catch.
fn maybe_corrupt(doc: Json) -> Json {
    if faults::armed() && faults::fired(FaultKind::CacheCorrupt) {
        faults::corrupt_doc(&doc)
    } else {
        doc
    }
}

/// Certify a cache-served document; on failure, quarantine the entry
/// from both cache tiers and count it. Returns whether the document may
/// be served.
fn certify_served(
    shared: &Arc<Shared>,
    program: &Program,
    opts: &CompilerOptions,
    key: &str,
    doc: &Json,
) -> bool {
    match certify_wire(program, opts, doc) {
        Ok(()) => {
            shared.stats.certified.fetch_add(1, Ordering::Relaxed);
            true
        }
        Err(why) => {
            shared.stats.uncertified.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.certify.failed", 1);
            if shared.cache.remove(key) {
                shared.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                chipmunk_trace::counter_add!("serve.cache.quarantined", 1);
            }
            let mut sp = chipmunk_trace::span!("serve.quarantine", key = key);
            sp.record("reason", why.as_str());
            false
        }
    }
}

/// The reader-side half of a compile: parse, check the cache, enqueue.
/// Fast paths (cache hit, bad request, backpressure) answer immediately
/// through the reply channel; an enqueued job answers later through its
/// [`ReplyHandle`] when a worker finishes it.
#[allow(clippy::too_many_arguments)]
fn start_compile(
    shared: &Arc<Shared>,
    source: &str,
    options: &crate::protocol::JobOptions,
    client_trace: Option<String>,
    priority: u8,
    tx: &mpsc::Sender<Json>,
    pending: &Arc<AtomicUsize>,
    id: Option<Json>,
) {
    let accepted = Instant::now();
    // Every compile request gets a trace id — the client's when supplied,
    // a minted one otherwise — echoed on whatever response answers it.
    let trace = client_trace.unwrap_or_else(|| next_trace_id(shared));
    let answer = |resp: Json, id: Option<Json>| {
        queue_response(&shared.unwritten, tx, with_id(with_trace(resp, &trace), id));
    };
    // Watchdog: every compile request checks the pool, not just the ones
    // that reach the queue — otherwise a stream of cache hits would never
    // replace a dead worker, and the first miss would find a shrunken pool.
    ensure_workers(shared);
    let program = match parse(source) {
        Ok(p) => p,
        Err(e) => return answer(error_response("parse", &format!("program: {e}")), id),
    };
    let opts = match options.to_compiler_options() {
        Ok(o) => o,
        Err(e) => return answer(error_response("bad_request", &e), id),
    };
    let key = cache_key(&program, &opts);
    // The key equates programs whose canonical *texts* match, which is
    // name-based — the requester may number the same fields differently
    // from whoever populated the entry, so hits are remapped by name (an
    // entry that cannot be remapped counts as a miss and recompiles).
    let (fields, states) = layout_names(&program);
    let family = family_of(&states);
    let mut remapped = false;
    let mut remap_us = 0u64;
    if let Some(result) = shared.cache.get_adapted(&key, |cached| {
        let remap_started = Instant::now();
        remapped = layout_differs(&cached, &fields, &states);
        let result = remap_result(&cached, &fields, &states);
        remap_us = remap_started.elapsed().as_micros() as u64;
        result
    }) {
        let result = maybe_corrupt(result);
        let certify_started = Instant::now();
        let served = certify_served(shared, &program, &opts, &key, &result);
        let certify_us = certify_started.elapsed().as_micros() as u64;
        if served {
            shared.stats.served_cached.fetch_add(1, Ordering::Relaxed);
            let outcome = if remapped {
                Outcome::Remapped
            } else {
                Outcome::Cached
            };
            let t = &shared.telemetry;
            t.record(Stage::Remap, outcome, family, remap_us);
            t.record(Stage::Certify, outcome, family, certify_us);
            t.record(
                Stage::EndToEnd,
                outcome,
                family,
                accepted.elapsed().as_micros() as u64,
            );
            return answer(success_response(&key, true, 0, 0, result), id);
        }
        // Certification failed: the entry is quarantined, and the request
        // falls through to the queue — one retry, compiled from scratch.
    }
    // Brownout gate — after the cache check, so degraded service still
    // serves hits; cache-missing work below the shed priority is refused
    // with a pacing hint instead of deepening the backlog.
    update_brownout(shared);
    if shared.brownout.load(Ordering::Relaxed) && i32::from(priority) < shared.shed_below_priority {
        shared.stats.brownout_busy.fetch_add(1, Ordering::Relaxed);
        shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
        chipmunk_trace::counter_add!("serve.brownout.busy", 1);
        return answer(
            crate::protocol::error_response_retry(
                "busy",
                "server is browned out; low-priority work refused",
                retry_after_estimate(shared),
            ),
            id,
        );
    }
    if shared.stopping.load(Ordering::Relaxed) {
        return answer(
            error_response("shutting_down", "server is shutting down"),
            id,
        );
    }
    // Reserve the in-flight slot before the push: the matching decrement
    // runs in `ReplyHandle::send`, on whichever path answers the job.
    pending.fetch_add(1, Ordering::AcqRel);
    // The plan fingerprint is journaled with the accept so a restarted
    // daemon can check journaled step progress against the plan *it*
    // derives before resuming mid-plan.
    let plan_fp = plan_compilation(&program, &opts)
        .ok()
        .map(|p| p.fingerprint());
    let job = Job {
        program,
        opts,
        key,
        fields,
        states,
        trace: trace.clone(),
        family,
        plan_fp,
        resume_from: 0,
        reply: ReplyHandle {
            tx: tx.clone(),
            pending: pending.clone(),
            stats: shared.stats.clone(),
            unwritten: shared.unwritten.clone(),
            id,
            trace: Some(trace.clone()),
            answered: false,
        },
        deadline: options
            .deadline_ms
            .or(shared.default_deadline_ms)
            .map(|ms| accepted + Duration::from_millis(ms)),
        enqueued: accepted,
    };
    // Write-ahead: the journal must know about the job before the queue
    // does, or a crash between the two loses it. The trace id rides the
    // record so a replay keeps the correlation.
    if let Some(journal) = &shared.journal {
        journal.accepted(
            &job.key,
            source,
            options,
            Some(&job.trace),
            priority,
            job.plan_fp.as_deref(),
        );
    }
    match shared
        .queue
        .try_push_with_priority(job, i32::from(priority))
    {
        Ok(()) => {
            shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::histogram_record!("serve.queue.depth", shared.queue.depth() as u64);
        }
        Err(PushError::Full(job)) => {
            // Saturation: before refusing, try to make room by shedding
            // the youngest queued job of strictly lower priority. The
            // victim gets a typed `shed` answer (it was admitted, so the
            // conservation law still accounts for it); the newcomer then
            // retries the push once.
            let mut job = job;
            if let Some(victim) = shared.queue.shed_lowest_below(i32::from(priority)) {
                shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                chipmunk_trace::counter_add!("serve.queue.shed", 1);
                victim.reply.send(crate::protocol::error_response_retry(
                    "shed",
                    "evicted by a higher-priority job under saturation",
                    retry_after_estimate(shared),
                ));
                // The victim was counted `submitted` at its own push; it
                // now settles as `shed`, keeping the ledger balanced.
                journal_done(shared, &victim.key);
                match shared
                    .queue
                    .try_push_with_priority(job, i32::from(priority))
                {
                    Ok(()) => {
                        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(PushError::Full(j)) | Err(PushError::Closed(j)) => job = j,
                }
            }
            shared.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.queue.rejected", 1);
            let capacity = shared.queue.capacity();
            job.reply.send(error_response(
                "queue_full",
                &format!("queue at capacity ({capacity}); retry later"),
            ));
            // A refusal is a terminal answer: nothing is owed, so the
            // write-ahead record completes immediately.
            journal_done(shared, &job.key);
        }
        Err(PushError::Closed(job)) => {
            job.reply
                .send(error_response("shutting_down", "server is shutting down"));
            journal_done(shared, &job.key);
        }
    }
}

/// The `poll` op: a cache-only lookup for a compile-shaped request.
/// Never enqueues — the response is `found:false` when the result is not
/// (yet) available. This is how a client whose daemon was killed collects
/// the answer after the journal replay recompiles it. Polled results go
/// through the same certification gate as every other served document.
fn poll_response(shared: &Arc<Shared>, source: &str, options: &JobOptions) -> Json {
    let program = match parse(source) {
        Ok(p) => p,
        Err(e) => return error_response("parse", &format!("program: {e}")),
    };
    let opts = match options.to_compiler_options() {
        Ok(o) => o,
        Err(e) => return error_response("bad_request", &e),
    };
    let key = cache_key(&program, &opts);
    let (fields, states) = layout_names(&program);
    if let Some(result) = shared
        .cache
        .get_adapted(&key, |cached| remap_result(&cached, &fields, &states))
    {
        let result = maybe_corrupt(result);
        if certify_served(shared, &program, &opts, &key, &result) {
            shared.stats.served_cached.fetch_add(1, Ordering::Relaxed);
            return Json::obj([
                ("ok", Json::Bool(true)),
                ("found", Json::Bool(true)),
                ("key", Json::from(key.as_str())),
                ("cached", Json::Bool(true)),
                ("result", result),
            ]);
        }
        // Quarantined: report not-found so the client resubmits.
    }
    Json::obj([
        ("ok", Json::Bool(true)),
        ("found", Json::Bool(false)),
        ("key", Json::from(key.as_str())),
    ])
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if faults::armed() && faults::fired(FaultKind::WorkerDeath) {
            // Deliberately *outside* the isolation below: exercises the
            // real worker-death path — ReplyHandle::drop answers the job,
            // WorkerGuard fixes the live count, the watchdog respawns.
            panic!("injected fault: worker death");
        }
        // Panic isolation for the whole job: whatever escapes run_job
        // (the compile call has its own message-preserving layer inside)
        // is absorbed here so the worker survives; an unanswered job is
        // answered by its ReplyHandle on drop. `run_job` returning false
        // means the watchdog already answered the job and respawned a
        // replacement — this thread leaves the pool.
        let keep = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(shared, job)))
            .unwrap_or(true);
        if !keep {
            break;
        }
    }
}

/// Run one dequeued job to completion. Returns `false` when the watchdog
/// escalated past this worker (answered the client and respawned a
/// replacement) — the caller must then exit the pool.
fn run_job(shared: &Arc<Shared>, job: Job) -> bool {
    let mut job = job;
    let wait_us = job.enqueued.elapsed().as_micros() as u64;
    let wait_ms = wait_us / 1000;
    shared
        .stats
        .wait_ms_total
        .fetch_add(wait_ms, Ordering::Relaxed);
    chipmunk_trace::histogram_record!("serve.queue.wait_ms", wait_ms);
    // Every dequeue feeds the brownout window — it is queue wait, not
    // service time, that signals the backlog outrunning capacity.
    shared.wait_window.record(wait_ms);
    update_brownout(shared);
    // One latency sample per stage lands here once the outcome is known;
    // the compile sample carries the winning strategy's label.
    let observe =
        |outcome: Outcome, strat: Strat, compile_us: u64, certify_us: u64, remap_us: u64| {
            let t = &shared.telemetry;
            t.record(Stage::QueueWait, outcome, job.family, wait_us);
            t.record_strat(Stage::Compile, outcome, job.family, strat, compile_us);
            t.record(Stage::Certify, outcome, job.family, certify_us);
            t.record(Stage::Remap, outcome, job.family, remap_us);
            t.record(
                Stage::EndToEnd,
                outcome,
                job.family,
                job.enqueued.elapsed().as_micros() as u64,
            );
        };
    if shared.abort.load(Ordering::Relaxed) {
        // Popped after the abort drain: still a drained job, so the
        // conservation invariant holds.
        shared.stats.drained.fetch_add(1, Ordering::Relaxed);
        observe(Outcome::Failed, Strat::Na, 0, 0, 0);
        job.reply
            .send(error_response("shutting_down", "job aborted by shutdown"));
        journal_done(shared, &job.key);
        return true;
    }
    // Deadline-aware admission at dequeue: a job whose whole window
    // elapsed in the queue would spend solver time on an answer nobody is
    // waiting for — refuse it with a typed error before it reaches the
    // compiler.
    if job.deadline.map(|d| Instant::now() >= d).unwrap_or(false) {
        shared.stats.expired.fetch_add(1, Ordering::Relaxed);
        chipmunk_trace::counter_add!("serve.job.expired", 1);
        observe(Outcome::Failed, Strat::Na, 0, 0, 0);
        note_e2e(shared, job.enqueued);
        job.reply.send(error_response(
            "expired",
            "deadline passed while the job queued",
        ));
        journal_done(shared, &job.key);
        return true;
    }
    // A twin of this job may have been compiled while it queued. Like
    // every cache serve, the hit is certified first; a corrupt entry is
    // quarantined and this worker falls through to compile from scratch.
    let mut twin_remapped = false;
    let mut remap_us = 0u64;
    let mut certify_us = 0u64;
    if let Some(result) = shared
        .cache
        .peek(&job.key)
        .and_then(|cached| {
            let remap_started = Instant::now();
            twin_remapped = layout_differs(&cached, &job.fields, &job.states);
            let result = remap_result(&cached, &job.fields, &job.states);
            remap_us = remap_started.elapsed().as_micros() as u64;
            result
        })
        .map(maybe_corrupt)
        .filter(|doc| {
            let certify_started = Instant::now();
            let served = certify_served(shared, &job.program, &job.opts, &job.key, doc);
            certify_us = certify_started.elapsed().as_micros() as u64;
            served
        })
    {
        shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        shared.stats.served_cached.fetch_add(1, Ordering::Relaxed);
        let outcome = if twin_remapped {
            Outcome::Remapped
        } else {
            Outcome::Cached
        };
        observe(outcome, Strat::Na, 0, certify_us, remap_us);
        note_e2e(shared, job.enqueued);
        job.reply
            .send(success_response(&job.key, true, 0, wait_ms, result));
        journal_done(shared, &job.key);
        return true;
    }
    if faults::armed() && faults::fired(FaultKind::SolverStall) {
        std::thread::sleep(faults::stall_duration());
    }
    // Thread the remaining wall-clock window into the compile: the CEGIS
    // deadline min-merges with any timeout-derived one inside the
    // compiler, flows into the shared budget account, and the plan
    // executor derives remaining-time-aware per-step resource budgets
    // from it at each step launch.
    job.opts.cegis.deadline = match (job.opts.cegis.deadline, job.deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    // Register with the watchdog before the compile starts. The per-job
    // cancel flag replaces the global abort flag as the compile's
    // cooperative cancellation channel; shutdown fans out to it, and the
    // watchdog raises it at deadline+grace.
    let cancel = Arc::new(AtomicBool::new(false));
    let reply_slot = Arc::new(Mutex::new(Some(job.reply)));
    let watch_id = shared.next_watch.fetch_add(1, Ordering::Relaxed);
    lock_watch(shared).insert(
        watch_id,
        WatchEntry {
            key: job.key.clone(),
            family: job.family,
            enqueued: job.enqueued,
            deadline: job.deadline,
            cancel: cancel.clone(),
            reply: reply_slot.clone(),
            cancelled_at: None,
        },
    );
    // Close the race with an abortive shutdown whose fan-out ran before
    // this entry existed.
    if shared.abort.load(Ordering::SeqCst) {
        cancel.store(true, Ordering::SeqCst);
    }
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    // The job span carries the trace id, so every `cegis.*` / `sat.*`
    // span the compile emits on this thread nests under a span that names
    // it — the `trace` op and the slow-job log key off that field.
    let mut sp = chipmunk_trace::span!(
        "serve.job",
        key = job.key.as_str(),
        trace = job.trace.as_str(),
        family = job.family.as_str(),
    );
    let started = Instant::now();
    // The plan observer runs on this thread once per executed step. It
    // journals finished (non-winning) steps so a kill-restart resumes
    // mid-plan, counts cancelled portfolio losers separately from
    // failures, and remembers the winning strategy for the compile-stage
    // latency label.
    let win_strat = AtomicUsize::new(3); // STRATS index of Strat::Na
    let observer = |report: &chipmunk::plan::StepReport| {
        let (strat, idx) = match report.strategy {
            Strategy::CanonicalAllocation => (Strat::Canonical, 0),
            Strategy::OpcodeRestricted => (Strat::Restricted, 1),
            Strategy::FullAlu => (Strat::Full, 2),
        };
        match report.outcome {
            StepOutcome::Success => {
                win_strat.store(idx, Ordering::Relaxed);
            }
            StepOutcome::Cancelled => {
                // A racing loser another strategy beat: spent search, not
                // a failure — it gets its own outcome label and counter.
                shared
                    .stats
                    .portfolio_cancelled
                    .fetch_add(1, Ordering::Relaxed);
                chipmunk_trace::counter_add!("serve.portfolio.cancelled", 1);
                shared.telemetry.record_strat(
                    Stage::Compile,
                    Outcome::Cancelled,
                    job.family,
                    strat,
                    report.elapsed.as_micros() as u64,
                );
            }
            StepOutcome::Infeasible | StepOutcome::Timeout => {
                // Finished without winning: journal it so a restart
                // resumes at the first unfinished step.
                if let (Some(journal), Some(fp)) = (&shared.journal, job.plan_fp.as_deref()) {
                    journal.step(&job.key, fp, report.step);
                }
            }
            _ => {}
        }
    };
    // Message-preserving panic isolation around the compile itself: a
    // panicking synthesis pass becomes a structured `internal` response
    // carrying the (truncated) panic text.
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if faults::armed() && faults::fired(FaultKind::CompilePanic) {
            panic!("injected fault: compile panic");
        }
        if faults::armed() && faults::fired(FaultKind::ClockStall) {
            // A stall that never observes the cooperative cancel flag —
            // the shape of a wedged solver. Only the watchdog's
            // escalation path (answer, abandon worker, respawn) gets the
            // client an answer before this sleep ends.
            std::thread::sleep(faults::stall_duration());
        }
        compile_with_control(
            &job.program,
            &job.opts,
            PlanControl {
                cancel: Some(cancel.clone()),
                resume_from: job.resume_from,
                observer: Some(&observer),
            },
        )
    }));
    let compile_us = started.elapsed().as_micros() as u64;
    let synth_ms = compile_us / 1000;
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    lock_watch(shared).remove(&watch_id);
    let taken = {
        let mut slot = reply_slot.lock().unwrap_or_else(|p| p.into_inner());
        slot.take()
    };
    let Some(reply) = taken else {
        // The watchdog already answered this job `expired` and respawned
        // a replacement: whatever the overrunning compile produced is
        // discarded — caching it would hand out a result the proof
        // pipeline never re-checked against a live client — and this
        // thread leaves the pool to settle the worker count.
        drop(sp);
        return false;
    };
    chipmunk_trace::histogram_record!("serve.job.synth_ms", synth_ms);
    shared
        .stats
        .synth_ms_total
        .fetch_add(synth_ms, Ordering::Relaxed);
    shared
        .stats
        .synth_ms_max
        .fetch_max(synth_ms, Ordering::Relaxed);
    // Queue-wait vs compile split as numeric close fields, so
    // `trace-report` can aggregate them per span.
    sp.record("wait_ms", wait_ms);
    sp.record("synth_ms", synth_ms);
    let mut fresh_certify_us = 0u64;
    let (response, outcome) = match res {
        Ok(Ok(out)) => {
            // The producing run's solver cost feeds the gauges whether or
            // not certification accepts the document — the work was done.
            shared.telemetry.record_solver(
                out.stats.synth_conflicts,
                out.stats.synth_propagations,
                out.stats.verify_conflicts,
                out.stats.verify_propagations,
                out.stats.clause_bytes,
                out.stats.budget_trips,
            );
            // `compile` certified the in-memory result; certifying the
            // *encoded* document additionally covers the wire/cache
            // serialization path, so what enters the cache is exactly
            // what was proven.
            let result = result_doc(&out, &job.fields, &job.states);
            let certify_started = Instant::now();
            let certified = certify_wire(&job.program, &job.opts, &result);
            fresh_certify_us = certify_started.elapsed().as_micros() as u64;
            match certified {
                Ok(()) => {
                    shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                    shared.stats.certified.fetch_add(1, Ordering::Relaxed);
                    sp.record("result", "ok");
                    shared.cache.put(&job.key, &result);
                    (
                        success_response(&job.key, false, synth_ms, wait_ms, result),
                        Outcome::Fresh,
                    )
                }
                Err(why) => {
                    shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                    shared.stats.uncertified.fetch_add(1, Ordering::Relaxed);
                    sp.record("result", "uncertified");
                    (
                        error_response(
                            "uncertified",
                            &format!("result failed certification: {why}"),
                        ),
                        Outcome::Failed,
                    )
                }
            }
        }
        Ok(Err(e)) => {
            let code = if shared.abort.load(Ordering::Relaxed) {
                "shutting_down"
            } else if matches!(e, CodegenError::Timeout)
                && job.deadline.map(|d| Instant::now() >= d).unwrap_or(false)
            {
                // The compile stopped because the propagated deadline ran
                // out (watchdog cancel or budget exhaustion) — to the
                // client that is `expired`, not a generic timeout.
                "expired"
            } else {
                codegen_error_code(&e)
            };
            if code == "expired" {
                shared.stats.expired.fetch_add(1, Ordering::Relaxed);
                chipmunk_trace::counter_add!("serve.job.expired", 1);
            } else {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            }
            sp.record("result", code);
            let response = match e {
                CodegenError::Infeasible(cert) if code == "infeasible" => {
                    let cert = recheck_infeasible(shared, cert);
                    let message = CodegenError::Infeasible(cert.clone()).to_string();
                    sp.record("proof_certified", cert.certified);
                    infeasible_response(&message, &cert)
                }
                e => error_response(code, &e.to_string()),
            };
            (response, Outcome::Failed)
        }
        Err(payload) => {
            shared.stats.panicked.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.job.panicked", 1);
            sp.record("result", "internal");
            (
                error_response(
                    "internal",
                    &format!(
                        "compiler panicked: {} — safe to retry",
                        faults::panic_message(payload.as_ref())
                    ),
                ),
                Outcome::Failed,
            )
        }
    };
    // Close the job span before the telemetry sample and the slow-job
    // check: the dumped tree then includes the root's duration.
    drop(sp);
    let win = match win_strat.load(Ordering::Relaxed) {
        0 => Strat::Canonical,
        1 => Strat::Restricted,
        2 => Strat::Full,
        _ => Strat::Na,
    };
    observe(outcome, win, compile_us, fresh_certify_us, 0);
    let e2e_us = job.enqueued.elapsed().as_micros() as u64;
    note_e2e(shared, job.enqueued);
    reply.send(response);
    // Completed strictly after the answer is on the reply channel: a
    // crash between the two replays an already-answered job (harmless
    // recompute into the cache) instead of silently dropping an
    // unanswered one.
    journal_done(shared, &job.key);
    if let Some(slow_ms) = shared.slow_ms {
        if e2e_us / 1000 >= slow_ms {
            let tree = shared
                .trace_store
                .job_tree(&job.trace)
                .map(|t| t.to_compact())
                .unwrap_or_else(|| "null".to_string());
            eprintln!(
                "chipmunk-serve: slow job key={} trace={} e2e_ms={} (threshold {slow_ms}ms) spans={tree}",
                job.key,
                job.trace,
                e2e_us / 1000,
            );
        }
    }
    true
}

/// Track the worst end-to-end latency of any *answered* job (drained
/// jobs at shutdown are excluded — their latency is the operator's
/// choice, not the scheduler's). The overload soak asserts this never
/// exceeds deadline + grace + the escalation bound.
fn note_e2e(shared: &Shared, enqueued: Instant) {
    let ms = enqueued.elapsed().as_micros() as u64 / 1000;
    shared.stats.e2e_ms_max.fetch_max(ms, Ordering::Relaxed);
}

/// Estimate how long a refused client should wait before retrying:
/// roughly the backlog drained at the average observed compile rate,
/// clamped to a sane band.
fn retry_after_estimate(shared: &Shared) -> u64 {
    let completed = shared.stats.completed.load(Ordering::Relaxed).max(1);
    let avg_synth_ms = shared.stats.synth_ms_total.load(Ordering::Relaxed) / completed;
    let depth = shared.queue.depth() as u64;
    let workers = shared.workers.max(1) as u64;
    (depth.saturating_mul(avg_synth_ms.max(1)) / workers).clamp(100, 10_000)
}

/// Brownout state machine, driven by the queue-wait p95 over a sliding
/// window. Enter when the p95 crosses the configured threshold; exit
/// with hysteresis, once the p95 falls to half the threshold (or the
/// window drains empty). Called from dequeue, admission, and the
/// watchdog tick, so the state keeps moving even when traffic stops.
fn update_brownout(shared: &Shared) {
    let Some(threshold) = shared.brownout_p95_ms else {
        return;
    };
    if shared.brownout.load(Ordering::Relaxed) {
        let clear = match shared.wait_window.percentile(95.0) {
            None => true,
            Some(p95) => p95 <= threshold / 2,
        };
        if clear && shared.brownout.swap(false, Ordering::Relaxed) {
            shared.stats.brownout_exited.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.brownout.exited", 1);
            chipmunk_trace::event!("serve.brownout", state = "exit");
        }
    } else {
        // Require a few samples before tripping: one slow dequeue after
        // an idle stretch is not overload.
        let trip = shared.wait_window.len() >= 4
            && shared
                .wait_window
                .percentile(95.0)
                .map(|p95| p95 >= threshold)
                .unwrap_or(false);
        if trip && !shared.brownout.swap(true, Ordering::Relaxed) {
            shared
                .stats
                .brownout_entered
                .fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.brownout.entered", 1);
            chipmunk_trace::event!("serve.brownout", state = "enter");
        }
    }
}

/// The watchdog thread: ticks the brownout state machine and sweeps the
/// in-flight registry for jobs past deadline + grace. Exits once
/// shutdown has begun and no queued or in-flight work remains.
fn watchdog_loop(shared: &Arc<Shared>) {
    loop {
        update_brownout(shared);
        sweep_watchdog(shared);
        // Exit once shutdown has begun and no compile can still need
        // escalation: the registry is empty and either the queue is too
        // or there are no workers to ever dequeue what remains (a
        // zero-worker daemon closed in drain mode keeps its queue).
        if shared.stopping.load(Ordering::Relaxed)
            && lock_watch(shared).is_empty()
            && (shared.queue.depth() == 0 || shared.workers == 0)
        {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// One watchdog sweep over the in-flight registry.
///
/// Stage 1 (hard cancel): any compile past deadline + grace gets its
/// cooperative cancel flag raised; the solver notices at its next poll
/// and unwinds as a timeout, which `run_job` maps to `expired`.
///
/// Stage 2 (escalation): if the solver still has not yielded after the
/// escalation bound, the watchdog takes the job's reply handle — the
/// worker sees the empty slot when the compile finally returns and
/// exits the pool — answers the client with a typed `expired` error,
/// and spawns a replacement worker so capacity is restored immediately.
fn sweep_watchdog(shared: &Arc<Shared>) {
    let now = Instant::now();
    let mut escalate: Vec<WatchEntry> = Vec::new();
    {
        let mut watch = lock_watch(shared);
        let mut ripe = Vec::new();
        for (&id, entry) in watch.iter_mut() {
            let Some(deadline) = entry.deadline else {
                continue;
            };
            match entry.cancelled_at {
                None => {
                    if now >= deadline + shared.deadline_grace {
                        entry.cancel.store(true, Ordering::SeqCst);
                        entry.cancelled_at = Some(now);
                        shared
                            .stats
                            .watchdog_cancelled
                            .fetch_add(1, Ordering::Relaxed);
                        chipmunk_trace::counter_add!("serve.watchdog.cancelled", 1);
                        chipmunk_trace::event!("serve.watchdog.cancel", key = entry.key.as_str(),);
                    }
                }
                Some(at) => {
                    if now.saturating_duration_since(at) >= shared.watchdog_escalate {
                        ripe.push(id);
                    }
                }
            }
        }
        // Removed under the lock, acted on outside it — spawning threads
        // and sending replies must not hold the registry.
        for id in ripe {
            if let Some(entry) = watch.remove(&id) {
                escalate.push(entry);
            }
        }
    }
    for entry in escalate {
        let taken = {
            let mut g = entry.reply.lock().unwrap_or_else(|p| p.into_inner());
            g.take()
        };
        // `None` means the worker finished in the race window and already
        // answered — no escalation needed, nothing to respawn.
        let Some(reply) = taken else { continue };
        shared.stats.expired.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .watchdog_escalations
            .fetch_add(1, Ordering::Relaxed);
        chipmunk_trace::counter_add!("serve.watchdog.escalated", 1);
        chipmunk_trace::event!("serve.watchdog.escalate", key = entry.key.as_str());
        shared.telemetry.record(
            Stage::EndToEnd,
            Outcome::Failed,
            entry.family,
            entry.enqueued.elapsed().as_micros() as u64,
        );
        note_e2e(shared, entry.enqueued);
        // The worker abandoned here exits on its own once the stuck
        // compile returns; its replacement starts now so capacity does
        // not wait on the stall clearing. Respawn before answering so a
        // client reacting to the reply observes the restored pool.
        {
            let mut handles = lock_handles(shared);
            spawn_worker(shared, &mut handles);
        }
        shared
            .stats
            .workers_respawned
            .fetch_add(1, Ordering::Relaxed);
        chipmunk_trace::counter_add!("serve.worker.respawned", 1);
        reply.send(error_response(
            "expired",
            "deadline exceeded and the solver did not yield to cancellation; \
             worker abandoned and respawned — safe to retry",
        ));
        journal_done(shared, &entry.key);
    }
}

fn success_response(key: &str, cached: bool, synth_ms: u64, wait_ms: u64, result: Json) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("cached", Json::Bool(cached)),
        ("key", Json::from(key)),
        ("synth_ms", Json::from(synth_ms)),
        ("wait_ms", Json::from(wait_ms)),
        ("result", result),
    ])
}

fn status_response(shared: &Shared) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        (
            "state",
            Json::from(if shared.stopping.load(Ordering::Relaxed) {
                "stopping"
            } else {
                "running"
            }),
        ),
        ("queue_depth", Json::from(shared.queue.depth())),
        ("queue_capacity", Json::from(shared.queue.capacity())),
        ("workers", Json::from(shared.workers)),
        (
            "live_workers",
            Json::from(shared.live_workers.load(Ordering::Relaxed)),
        ),
        (
            "in_flight",
            Json::from(shared.in_flight.load(Ordering::Relaxed)),
        ),
        (
            "connections",
            Json::from(shared.conns.load(Ordering::Relaxed)),
        ),
        ("max_connections", Json::from(shared.max_conns)),
        ("cache_entries", Json::from(shared.cache.len())),
    ])
}

fn stats_response(shared: &Shared) -> Json {
    let s = &shared.stats;
    Json::obj([
        ("ok", Json::Bool(true)),
        ("submitted", Json::from(s.submitted.load(Ordering::Relaxed))),
        ("completed", Json::from(s.completed.load(Ordering::Relaxed))),
        ("failed", Json::from(s.failed.load(Ordering::Relaxed))),
        ("drained", Json::from(s.drained.load(Ordering::Relaxed))),
        ("panicked", Json::from(s.panicked.load(Ordering::Relaxed))),
        ("expired", Json::from(s.expired.load(Ordering::Relaxed))),
        ("shed", Json::from(s.shed.load(Ordering::Relaxed))),
        (
            "watchdog_cancelled",
            Json::from(s.watchdog_cancelled.load(Ordering::Relaxed)),
        ),
        (
            "watchdog_escalations",
            Json::from(s.watchdog_escalations.load(Ordering::Relaxed)),
        ),
        (
            "brownout",
            Json::Bool(shared.brownout.load(Ordering::Relaxed)),
        ),
        (
            "brownout_entered",
            Json::from(s.brownout_entered.load(Ordering::Relaxed)),
        ),
        (
            "brownout_exited",
            Json::from(s.brownout_exited.load(Ordering::Relaxed)),
        ),
        (
            "brownout_busy",
            Json::from(s.brownout_busy.load(Ordering::Relaxed)),
        ),
        (
            "e2e_ms_max",
            Json::from(s.e2e_ms_max.load(Ordering::Relaxed)),
        ),
        (
            "workers_respawned",
            Json::from(s.workers_respawned.load(Ordering::Relaxed)),
        ),
        (
            "served_cached",
            Json::from(s.served_cached.load(Ordering::Relaxed)),
        ),
        (
            "rejected_full",
            Json::from(s.rejected_full.load(Ordering::Relaxed)),
        ),
        (
            "rejected_busy",
            Json::from(s.rejected_busy.load(Ordering::Relaxed)),
        ),
        ("cache_hits", Json::from(shared.cache.hits())),
        ("cache_misses", Json::from(shared.cache.misses())),
        ("cache_entries", Json::from(shared.cache.len())),
        ("evictions", Json::from(shared.cache.evictions())),
        ("disk_lines", Json::from(shared.cache.disk_lines())),
        ("compactions", Json::from(shared.cache.compactions())),
        ("degraded", Json::Bool(shared.cache.degraded())),
        ("disk_errors", Json::from(shared.cache.disk_errors())),
        ("queue_depth", Json::from(shared.queue.depth())),
        (
            "synth_ms_total",
            Json::from(s.synth_ms_total.load(Ordering::Relaxed)),
        ),
        (
            "synth_ms_max",
            Json::from(s.synth_ms_max.load(Ordering::Relaxed)),
        ),
        (
            "wait_ms_total",
            Json::from(s.wait_ms_total.load(Ordering::Relaxed)),
        ),
        ("recovered", Json::from(s.recovered.load(Ordering::Relaxed))),
        ("certified", Json::from(s.certified.load(Ordering::Relaxed))),
        (
            "uncertified",
            Json::from(s.uncertified.load(Ordering::Relaxed)),
        ),
        (
            "quarantined",
            Json::from(s.quarantined.load(Ordering::Relaxed)),
        ),
        (
            "portfolio_cancelled",
            Json::from(s.portfolio_cancelled.load(Ordering::Relaxed)),
        ),
        (
            "infeasible_certified",
            Json::from(s.infeasible_certified.load(Ordering::Relaxed)),
        ),
        (
            "infeasible_unchecked",
            Json::from(s.infeasible_unchecked.load(Ordering::Relaxed)),
        ),
        (
            "metrics_degraded",
            Json::Bool(s.metrics_degraded.load(Ordering::Relaxed)),
        ),
        (
            "journal_pending",
            shared
                .journal
                .as_ref()
                .map(|j| Json::from(j.pending_len()))
                .unwrap_or(Json::Null),
        ),
        (
            "journal_errors",
            shared
                .journal
                .as_ref()
                .map(|j| Json::from(j.errors()))
                .unwrap_or(Json::Null),
        ),
    ])
}

/// The `trace` op: the buffered span tree for a job's trace id.
/// `found:false` when the ring no longer (or never) holds it.
fn trace_response(shared: &Shared, trace: &str) -> Json {
    match shared.trace_store.job_tree(trace) {
        Some(tree) => Json::obj([
            ("ok", Json::Bool(true)),
            ("found", Json::Bool(true)),
            ("trace", Json::from(trace)),
            ("tree", tree),
        ]),
        None => Json::obj([
            ("ok", Json::Bool(true)),
            ("found", Json::Bool(false)),
            ("trace", Json::from(trace)),
        ]),
    }
}

/// Cache hit rate over every lookup so far, `Json::Null` before the
/// first one.
fn cache_hit_rate(shared: &Shared) -> Json {
    let hits = shared.cache.hits();
    let lookups = hits + shared.cache.misses();
    if lookups == 0 {
        Json::Null
    } else {
        Json::from(hits as f64 / lookups as f64)
    }
}

/// The `telemetry` op: per-stage latency summaries (merged across
/// outcomes and families), per-outcome job counts, cache hit rate, and
/// solver gauges — everything `chipmunkc top` renders, in one response.
fn telemetry_response(shared: &Shared) -> Json {
    let t = &shared.telemetry;
    let stages = Json::obj(STAGES.map(|s| (s.as_str(), t.stage_summary(s))));
    let outcomes =
        Json::obj(OUTCOMES.map(|o| (o.as_str(), Json::from(t.count(Stage::EndToEnd, o)))));
    let s = &shared.stats;
    Json::obj([
        ("ok", Json::Bool(true)),
        ("stages", stages),
        ("outcomes", outcomes),
        ("cache_hit_rate", cache_hit_rate(shared)),
        (
            "solver",
            Json::obj([
                (
                    "conflicts",
                    Json::from(t.solver_conflicts.load(Ordering::Relaxed)),
                ),
                (
                    "propagations",
                    Json::from(t.solver_propagations.load(Ordering::Relaxed)),
                ),
                (
                    "verify_conflicts",
                    Json::from(t.solver_verify_conflicts.load(Ordering::Relaxed)),
                ),
                (
                    "verify_propagations",
                    Json::from(t.solver_verify_propagations.load(Ordering::Relaxed)),
                ),
                (
                    "clause_bytes",
                    Json::from(t.solver_clause_bytes.load(Ordering::Relaxed)),
                ),
                (
                    "budget_trips",
                    Json::from(t.solver_budget_trips.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        ("submitted", Json::from(s.submitted.load(Ordering::Relaxed))),
        ("completed", Json::from(s.completed.load(Ordering::Relaxed))),
        ("failed", Json::from(s.failed.load(Ordering::Relaxed))),
        (
            "served_cached",
            Json::from(s.served_cached.load(Ordering::Relaxed)),
        ),
        ("queue_depth", Json::from(shared.queue.depth())),
        (
            "in_flight",
            Json::from(shared.in_flight.load(Ordering::Relaxed)),
        ),
        (
            "metrics_addr",
            lock_metrics(shared)
                .as_ref()
                .map(|m| Json::from(m.addr().to_string()))
                .unwrap_or(Json::Null),
        ),
        ("trace_buffered", Json::from(shared.trace_store.len())),
        ("trace_dropped", Json::from(shared.trace_store.dropped())),
    ])
}

/// Render the Prometheus exposition for the scrape endpoint: the
/// telemetry histograms and solver gauges plus the serve counters.
fn render_exposition(shared: &Shared) -> String {
    let s = &shared.stats;
    let counters: Vec<(&str, u64)> = vec![
        ("submitted", s.submitted.load(Ordering::Relaxed)),
        ("completed", s.completed.load(Ordering::Relaxed)),
        ("failed", s.failed.load(Ordering::Relaxed)),
        ("drained", s.drained.load(Ordering::Relaxed)),
        ("panicked", s.panicked.load(Ordering::Relaxed)),
        ("served_cached", s.served_cached.load(Ordering::Relaxed)),
        ("rejected_full", s.rejected_full.load(Ordering::Relaxed)),
        ("rejected_busy", s.rejected_busy.load(Ordering::Relaxed)),
        ("recovered", s.recovered.load(Ordering::Relaxed)),
        ("certified", s.certified.load(Ordering::Relaxed)),
        ("uncertified", s.uncertified.load(Ordering::Relaxed)),
        ("quarantined", s.quarantined.load(Ordering::Relaxed)),
        (
            "portfolio_cancelled",
            s.portfolio_cancelled.load(Ordering::Relaxed),
        ),
        (
            "infeasible_certified",
            s.infeasible_certified.load(Ordering::Relaxed),
        ),
        (
            "infeasible_unchecked",
            s.infeasible_unchecked.load(Ordering::Relaxed),
        ),
        ("cache_hits", shared.cache.hits()),
        ("cache_misses", shared.cache.misses()),
        (
            "workers_respawned",
            s.workers_respawned.load(Ordering::Relaxed),
        ),
        ("expired", s.expired.load(Ordering::Relaxed)),
        ("shed", s.shed.load(Ordering::Relaxed)),
        (
            "watchdog_cancelled",
            s.watchdog_cancelled.load(Ordering::Relaxed),
        ),
        (
            "watchdog_escalations",
            s.watchdog_escalations.load(Ordering::Relaxed),
        ),
        (
            "brownout_entered",
            s.brownout_entered.load(Ordering::Relaxed),
        ),
        ("brownout_exited", s.brownout_exited.load(Ordering::Relaxed)),
        ("brownout_busy", s.brownout_busy.load(Ordering::Relaxed)),
    ];
    let gauges: Vec<(&str, f64)> = vec![
        (
            "brownout",
            if shared.brownout.load(Ordering::Relaxed) {
                1.0
            } else {
                0.0
            },
        ),
        ("e2e_ms_max", s.e2e_ms_max.load(Ordering::Relaxed) as f64),
        (
            "cache_hit_rate",
            cache_hit_rate(shared).as_f64().unwrap_or(0.0),
        ),
        ("queue_depth", shared.queue.depth() as f64),
        ("in_flight", shared.in_flight.load(Ordering::Relaxed) as f64),
        ("connections", shared.conns.load(Ordering::Relaxed) as f64),
        (
            "live_workers",
            shared.live_workers.load(Ordering::Relaxed) as f64,
        ),
        ("cache_entries", shared.cache.len() as f64),
    ];
    metrics::render_exposition(&shared.telemetry, &counters, &gauges)
}

fn cache_response(shared: &Shared, action: CacheAction) -> Json {
    let cache = &shared.cache;
    match action {
        CacheAction::Stats => Json::obj([
            ("ok", Json::Bool(true)),
            ("entries", Json::from(cache.len())),
            (
                "capacity",
                cache.capacity().map(Json::from).unwrap_or(Json::Null),
            ),
            ("hits", Json::from(cache.hits())),
            ("misses", Json::from(cache.misses())),
            ("evictions", Json::from(cache.evictions())),
            ("disk_lines", Json::from(cache.disk_lines())),
            ("compactions", Json::from(cache.compactions())),
            ("degraded", Json::Bool(cache.degraded())),
            ("disk_errors", Json::from(cache.disk_errors())),
        ]),
        CacheAction::Compact => match cache.compact() {
            Ok((before, after)) => Json::obj([
                ("ok", Json::Bool(true)),
                ("lines_before", Json::from(before)),
                ("lines_after", Json::from(after)),
            ]),
            Err(e) => error_response("io", &format!("compaction failed: {e}")),
        },
        CacheAction::Clear => match cache.clear() {
            Ok(cleared) => Json::obj([("ok", Json::Bool(true)), ("cleared", Json::from(cleared))]),
            Err(e) => error_response("io", &format!("clear failed: {e}")),
        },
    }
}

fn write_line(w: &mut TcpStream, doc: &Json) -> std::io::Result<()> {
    use std::io::Write;
    let mut line = doc.to_compact();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Resolve a user-supplied address string early, for friendlier CLI errors.
pub fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))
}
