//! The compilation daemon: accept loop, worker pool, shutdown machinery.
//!
//! Thread structure:
//!
//! ```text
//! accept loop ──spawns──▶ connection handler (one per client)
//!                             │  cache.get → answer immediately, or
//!                             │  queue.try_push(Job{reply: mpsc::Sender})
//!                             ▼
//!                      bounded job queue  ◀── backpressure: Full → typed error
//!                             │
//!                  worker pool (N threads) — compile_with_cancel(...)
//!                             │
//!                     job.reply.send(response) ──▶ handler writes the line
//! ```
//!
//! Shutdown (`drain`): stop accepting, close the queue, let workers finish
//! what is queued, then exit. Shutdown (`abort`): additionally raise the
//! shared cancellation flag — in-flight CEGIS runs stop at the next solver
//! checkpoint — and fail all still-queued jobs with `shutting_down`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chipmunk::{cache_key, compile_with_cancel, layout_names, CompilerOptions};
use chipmunk_lang::{parse, Program};
use chipmunk_trace::json::Json;

use crate::cache::ResultCache;
use crate::protocol::{
    codegen_error_code, error_response, parse_request, remap_result, result_doc, Request,
};
use crate::queue::{Bounded, PushError};

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads. `0` is allowed (jobs queue but never run) — useful
    /// for deterministic backpressure tests.
    pub workers: usize,
    /// Bounded queue capacity; pushes beyond it get `queue_full`.
    pub queue_capacity: usize,
    /// Directory for the on-disk cache tier (`None` = memory-only).
    pub cache_dir: Option<PathBuf>,
    /// Concurrent connection handlers. A connection accepted beyond this
    /// is answered with one `busy` error line and closed, so idle or slow
    /// clients cannot exhaust threads (the bounded queue already protects
    /// compute).
    pub max_connections: usize,
    /// Per-socket read deadline: a connection whose client sends nothing
    /// for this long is dropped (`None` = wait forever). Does not bound
    /// compilation itself — a handler waiting on a worker's reply is not
    /// reading.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(4),
            queue_capacity: 64,
            cache_dir: None,
            max_connections: 64,
            idle_timeout: Some(Duration::from_secs(60)),
        }
    }
}

#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    rejected_full: AtomicU64,
    rejected_busy: AtomicU64,
    synth_ms_total: AtomicU64,
    synth_ms_max: AtomicU64,
    wait_ms_total: AtomicU64,
}

struct Job {
    program: Program,
    opts: CompilerOptions,
    key: String,
    /// Field / state names in the submitter's index order (the layout
    /// `compile` will use) — cached results are remapped through these.
    fields: Vec<String>,
    states: Vec<String>,
    reply: mpsc::Sender<Json>,
    enqueued: Instant,
}

struct Shared {
    queue: Bounded<Job>,
    cache: ResultCache,
    stats: Stats,
    stopping: AtomicBool,
    abort: Arc<AtomicBool>,
    in_flight: AtomicUsize,
    conns: AtomicUsize,
    max_conns: usize,
    idle_timeout: Option<Duration>,
    workers: usize,
    addr: SocketAddr,
}

/// Decrements the live-connection count when a handler exits (or when its
/// thread failed to spawn and the closure is dropped unrun).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A running server: its address plus the threads to join.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Trigger shutdown programmatically (same as a `shutdown` request).
    pub fn shutdown(&self, abort: bool) {
        begin_shutdown(&self.shared, abort);
    }

    /// Block until the accept loop and every worker have exited.
    pub fn join(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Bind, spawn the worker pool and the accept loop, and return immediately.
pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        queue: Bounded::new(config.queue_capacity),
        cache: ResultCache::open(config.cache_dir.as_deref())?,
        stats: Stats::default(),
        stopping: AtomicBool::new(false),
        abort: Arc::new(AtomicBool::new(false)),
        in_flight: AtomicUsize::new(0),
        conns: AtomicUsize::new(0),
        max_conns: config.max_connections,
        idle_timeout: config.idle_timeout,
        workers: config.workers,
        addr,
    });
    let workers = (0..config.workers)
        .map(|i| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("chipmunk-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();
    let accept = {
        let shared = shared.clone();
        std::thread::Builder::new()
            .name("chipmunk-accept".to_string())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn accept loop")
    };
    Ok(ServerHandle {
        shared,
        accept,
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::Relaxed) {
            break;
        }
        let mut stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_read_timeout(shared.idle_timeout);
        if shared.conns.load(Ordering::Relaxed) >= shared.max_conns {
            shared.stats.rejected_busy.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.conn.rejected", 1);
            let _ = write_line(
                &mut stream,
                &error_response("busy", "connection limit reached; retry later"),
            );
            continue;
        }
        shared.conns.fetch_add(1, Ordering::Relaxed);
        let guard = ConnGuard(shared.clone());
        // Connection handlers are detached: they end when the client
        // disconnects (or its idle timeout expires), and any pending reply
        // channel they hold is answered by the draining workers before
        // those exit.
        let _ = std::thread::Builder::new()
            .name("chipmunk-conn".to_string())
            .spawn(move || handle_connection(stream, &guard.0));
    }
}

fn begin_shutdown(shared: &Arc<Shared>, abort: bool) {
    if shared.stopping.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    if abort {
        shared.abort.store(true, Ordering::SeqCst);
        for job in shared.queue.drain_now() {
            let _ = job
                .reply
                .send(error_response("shutting_down", "job aborted by shutdown"));
        }
    }
    shared.queue.close();
    // Wake the accept loop out of `accept()` with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Err(e) => error_response("parse", &e),
            Ok(Request::Status) => status_response(shared),
            Ok(Request::Stats) => stats_response(shared),
            Ok(Request::Shutdown { abort }) => {
                // Answer first, then trigger: the ack must not race the
                // listener teardown.
                let mode = if abort { "abort" } else { "drain" };
                let ack = Json::obj([("ok", Json::Bool(true)), ("stopping", Json::from(mode))]);
                if write_line(&mut writer, &ack).is_err() {
                    return;
                }
                begin_shutdown(shared, abort);
                continue;
            }
            Ok(Request::Compile { program, options }) => handle_compile(shared, &program, &options),
        };
        if write_line(&mut writer, &response).is_err() {
            return;
        }
    }
}

fn handle_compile(
    shared: &Arc<Shared>,
    source: &str,
    options: &crate::protocol::JobOptions,
) -> Json {
    let program = match parse(source) {
        Ok(p) => p,
        Err(e) => return error_response("parse", &format!("program: {e}")),
    };
    let opts = match options.to_compiler_options() {
        Ok(o) => o,
        Err(e) => return error_response("bad_request", &e),
    };
    let key = cache_key(&program, &opts);
    // The key equates programs whose canonical *texts* match, which is
    // name-based — the requester may number the same fields differently
    // from whoever populated the entry, so hits are remapped by name (an
    // entry that cannot be remapped counts as a miss and recompiles).
    let (fields, states) = layout_names(&program);
    if let Some(result) = shared
        .cache
        .get_adapted(&key, |cached| remap_result(&cached, &fields, &states))
    {
        return success_response(&key, true, 0, 0, result);
    }
    if shared.stopping.load(Ordering::Relaxed) {
        return error_response("shutting_down", "server is shutting down");
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        program,
        opts,
        key,
        fields,
        states,
        reply: reply_tx,
        enqueued: Instant::now(),
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            shared.stats.rejected_full.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.queue.rejected", 1);
            return error_response(
                "queue_full",
                &format!(
                    "queue at capacity ({}); retry later",
                    shared.queue.capacity()
                ),
            );
        }
        Err(PushError::Closed(_)) => {
            return error_response("shutting_down", "server is shutting down");
        }
    }
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    chipmunk_trace::histogram_record!("serve.queue.depth", shared.queue.depth() as u64);
    match reply_rx.recv() {
        Ok(response) => response,
        // Workers are gone (abortive shutdown raced the enqueue).
        Err(_) => error_response("shutting_down", "server stopped before the job ran"),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let wait_ms = job.enqueued.elapsed().as_millis() as u64;
        shared
            .stats
            .wait_ms_total
            .fetch_add(wait_ms, Ordering::Relaxed);
        chipmunk_trace::histogram_record!("serve.queue.wait_ms", wait_ms);
        if shared.abort.load(Ordering::Relaxed) {
            let _ = job
                .reply
                .send(error_response("shutting_down", "job aborted by shutdown"));
            continue;
        }
        // A twin of this job may have been compiled while it queued.
        if let Some(result) = shared
            .cache
            .peek(&job.key)
            .and_then(|cached| remap_result(&cached, &job.fields, &job.states))
        {
            let _ = job
                .reply
                .send(success_response(&job.key, true, 0, wait_ms, result));
            continue;
        }
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        let mut sp = chipmunk_trace::span!("serve.job", key = job.key.as_str(), wait_ms = wait_ms,);
        let started = Instant::now();
        let res = compile_with_cancel(&job.program, &job.opts, Some(shared.abort.clone()));
        let synth_ms = started.elapsed().as_millis() as u64;
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        chipmunk_trace::histogram_record!("serve.job.synth_ms", synth_ms);
        shared
            .stats
            .synth_ms_total
            .fetch_add(synth_ms, Ordering::Relaxed);
        shared
            .stats
            .synth_ms_max
            .fetch_max(synth_ms, Ordering::Relaxed);
        let response = match res {
            Ok(out) => {
                shared.stats.completed.fetch_add(1, Ordering::Relaxed);
                sp.record("result", "ok");
                let result = result_doc(&out, &job.fields, &job.states);
                shared.cache.put(&job.key, &result);
                success_response(&job.key, false, synth_ms, wait_ms, result)
            }
            Err(e) => {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
                let code = if shared.abort.load(Ordering::Relaxed) {
                    "shutting_down"
                } else {
                    codegen_error_code(&e)
                };
                sp.record("result", code);
                error_response(code, &e.to_string())
            }
        };
        let _ = job.reply.send(response);
    }
}

fn success_response(key: &str, cached: bool, synth_ms: u64, wait_ms: u64, result: Json) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("cached", Json::Bool(cached)),
        ("key", Json::from(key)),
        ("synth_ms", Json::from(synth_ms)),
        ("wait_ms", Json::from(wait_ms)),
        ("result", result),
    ])
}

fn status_response(shared: &Shared) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        (
            "state",
            Json::from(if shared.stopping.load(Ordering::Relaxed) {
                "stopping"
            } else {
                "running"
            }),
        ),
        ("queue_depth", Json::from(shared.queue.depth())),
        ("queue_capacity", Json::from(shared.queue.capacity())),
        ("workers", Json::from(shared.workers)),
        (
            "in_flight",
            Json::from(shared.in_flight.load(Ordering::Relaxed)),
        ),
        (
            "connections",
            Json::from(shared.conns.load(Ordering::Relaxed)),
        ),
        ("max_connections", Json::from(shared.max_conns)),
        ("cache_entries", Json::from(shared.cache.len())),
    ])
}

fn stats_response(shared: &Shared) -> Json {
    let s = &shared.stats;
    Json::obj([
        ("ok", Json::Bool(true)),
        ("submitted", Json::from(s.submitted.load(Ordering::Relaxed))),
        ("completed", Json::from(s.completed.load(Ordering::Relaxed))),
        ("failed", Json::from(s.failed.load(Ordering::Relaxed))),
        (
            "rejected_full",
            Json::from(s.rejected_full.load(Ordering::Relaxed)),
        ),
        (
            "rejected_busy",
            Json::from(s.rejected_busy.load(Ordering::Relaxed)),
        ),
        ("cache_hits", Json::from(shared.cache.hits())),
        ("cache_misses", Json::from(shared.cache.misses())),
        ("cache_entries", Json::from(shared.cache.len())),
        ("queue_depth", Json::from(shared.queue.depth())),
        (
            "synth_ms_total",
            Json::from(s.synth_ms_total.load(Ordering::Relaxed)),
        ),
        (
            "synth_ms_max",
            Json::from(s.synth_ms_max.load(Ordering::Relaxed)),
        ),
        (
            "wait_ms_total",
            Json::from(s.wait_ms_total.load(Ordering::Relaxed)),
        ),
    ])
}

fn write_line(w: &mut TcpStream, doc: &Json) -> std::io::Result<()> {
    let mut line = doc.to_compact();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Resolve a user-supplied address string early, for friendlier CLI errors.
pub fn resolve_addr(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))
}
