//! A write-ahead job journal: accepted work survives a daemon crash.
//!
//! Every compile job the server accepts is appended here **before** it
//! enters the queue (`accepted` record, fsync'd — write-ahead), and again
//! when it has been answered (`completed` record). A killed daemon
//! restarts, replays the journal, and re-enqueues every job that was
//! accepted but never completed; the recompiled results land in the
//! result cache, where the original submitter collects them with the
//! `poll` protocol op.
//!
//! Format: `journal.jsonl` in the journal directory, one record per line:
//!
//! ```text
//! {"rec":"accepted","key":"<16 hex>","program":<string>,"options":{…},
//!  "trace":<string>?,"priority":<int>?,"plan":"<16 hex>"?}
//! {"rec":"step","key":"<16 hex>","plan":"<16 hex>","step":<int>}
//! {"rec":"completed","key":"<16 hex>","trace":<string>?}
//! ```
//!
//! The `trace` field is the job's trace id (client-supplied or
//! server-assigned). It rides both records so a job can be correlated
//! with its telemetry across a crash: the replayed job keeps the original
//! trace id, and the `completed` record written by the *next* daemon
//! still names it. `priority` rides the accepted record so a replayed
//! job keeps its queue position class.
//!
//! **Plan progress.** `plan` on the accepted record is the fingerprint of
//! the job's [`CompilePlan`](chipmunk::plan::CompilePlan); each `step`
//! record marks one plan step that finished *without producing the
//! answer* (the winning step writes `completed` instead). On replay, the
//! contiguous prefix of journaled steps becomes
//! [`PendingJob::resume_from`], so a kill-restart resumes a half-executed
//! plan at its first unfinished step instead of redoing solved depths —
//! but only when the replaying daemon re-derives the *same* fingerprint
//! (the server checks; a planner change restarts the plan from step 0).
//! Step records are flushed but not fsync'd: losing one merely repeats a
//! step, the same at-least-once discipline as `completed`.
//!
//! Records are keyed by the job's content-addressed cache key, so twin
//! submissions collapse into one pending entry and one replay. A
//! `completed` record is written for *every* terminal answer — success,
//! typed failure, even a drain at shutdown — because "pending" means "a
//! client was promised an answer that was never produced", not "the
//! compile succeeded". Jobs that die with a worker write no `completed`
//! record and replay on the next start, which is exactly the at-least-once
//! retry the client was told is safe.
//!
//! Durability discipline matches the result cache: appends go through one
//! shared handle (`accepted` lines are fsync'd; losing a `completed` line
//! merely causes one redundant recompile), and compaction — dropping
//! completed pairs — writes a temp file, fsyncs it, and renames it over
//! the old one, so a crash mid-compaction keeps the previous journal.
//! Torn or corrupt lines (a crash mid-append) are skipped on load. I/O
//! errors never propagate into the serving path: the journal degrades to
//! a no-op and counts the error.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use chipmunk_trace::json::Json;

use crate::protocol::JobOptions;

/// A journaled job that was accepted but never answered: replay it.
pub struct PendingJob {
    /// Content-addressed cache key of the job.
    pub key: String,
    /// The submitted program source.
    pub program: String,
    /// The submitted compile options.
    pub options: JobOptions,
    /// Trace id of the original submission, if one was journaled.
    pub trace: Option<String>,
    /// Queue priority of the original submission (0 when not journaled).
    pub priority: u8,
    /// Fingerprint of the plan the previous daemon was executing.
    pub plan: Option<String>,
    /// First plan step not journaled as finished — where to resume,
    /// *provided* the replaying daemon re-derives the same `plan`
    /// fingerprint.
    pub resume_from: usize,
}

/// Journaled per-plan progress of one pending job.
#[derive(Default)]
struct StepProgress {
    /// Completed (non-winning) step indices, deduplicated.
    done: std::collections::BTreeSet<usize>,
}

impl StepProgress {
    /// Length of the contiguous completed prefix `0..n` — the safe
    /// resume offset (a hole means that step never finished; everything
    /// after it must re-run because groups execute in order).
    fn resume_from(&self) -> usize {
        let mut n = 0;
        while self.done.contains(&n) {
            n += 1;
        }
        n
    }
}

struct Inner {
    file: File,
    /// Pending `accepted` records by key (the full record document).
    pending: HashMap<String, Json>,
    /// Per-key plan progress (only meaningful while the key is pending;
    /// keyed by (job key → plan fingerprint, finished steps)).
    steps: HashMap<String, (String, StepProgress)>,
    /// Keys in first-accepted order, possibly holding completed stragglers
    /// (filtered against `pending` when used).
    order: Vec<String>,
    /// Lines currently in the file, dead or alive.
    lines: u64,
}

/// The write-ahead journal. All operations are crash-tolerant and
/// serving-path-safe: an I/O error degrades the journal instead of
/// failing the request that touched it.
pub struct Journal {
    inner: Mutex<Inner>,
    path: PathBuf,
    /// Journal writes disabled after an I/O error (the in-memory pending
    /// set still tracks, so a later compaction can recover the file).
    degraded: AtomicBool,
    errors: AtomicU64,
    compactions: AtomicU64,
}

fn lock(m: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

impl Journal {
    /// Open (or create) `dir/journal.jsonl`, returning the journal plus
    /// every job accepted by a previous process but never completed, in
    /// first-accepted order. The file is compacted down to those pending
    /// records so completed history does not accumulate across restarts.
    pub fn open(dir: &Path) -> std::io::Result<(Journal, Vec<PendingJob>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("journal.jsonl");
        let mut pending: HashMap<String, Json> = HashMap::new();
        let mut steps: HashMap<String, (String, StepProgress)> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let mut lines = 0u64;
        if let Ok(f) = File::open(&path) {
            for line in BufReader::new(f).lines() {
                let Ok(line) = line else { break };
                lines += 1;
                let Ok(doc) = Json::parse(&line) else {
                    continue; // torn line from a crash mid-append
                };
                let (Some(rec), Some(key)) = (
                    doc.get("rec").and_then(Json::as_str),
                    doc.get("key").and_then(Json::as_str),
                ) else {
                    continue;
                };
                match rec {
                    "accepted" => {
                        if !pending.contains_key(key) {
                            order.push(key.to_string());
                        }
                        pending.entry(key.to_string()).or_insert(doc);
                    }
                    "step" => {
                        let (Some(plan), Some(step)) = (
                            doc.get("plan").and_then(Json::as_str),
                            doc.get("step")
                                .and_then(Json::as_u64)
                                .and_then(|v| usize::try_from(v).ok()),
                        ) else {
                            continue;
                        };
                        // Progress only counts against the plan it was
                        // made under; a fingerprint change voids it.
                        let entry = steps
                            .entry(key.to_string())
                            .or_insert_with(|| (plan.to_string(), StepProgress::default()));
                        if entry.0 == plan {
                            entry.1.done.insert(step);
                        }
                    }
                    "completed" => {
                        pending.remove(key);
                        steps.remove(key);
                    }
                    _ => {}
                }
            }
        }
        steps.retain(|k, _| pending.contains_key(k));
        // A completed-then-reaccepted key appears in `order` once per
        // accept; replay must see it once.
        let mut seen = std::collections::HashSet::new();
        order.retain(|k| seen.insert(k.clone()));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let journal = Journal {
            inner: Mutex::new(Inner {
                file,
                pending,
                steps,
                order,
                lines,
            }),
            path,
            degraded: AtomicBool::new(false),
            errors: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
        };
        let replay = {
            let inner = lock(&journal.inner);
            inner
                .order
                .iter()
                .filter_map(|key| {
                    let doc = inner.pending.get(key)?;
                    let program = doc.get("program").and_then(Json::as_str)?.to_string();
                    let options = match doc.get("options") {
                        None | Some(Json::Null) => JobOptions::default(),
                        Some(o) => JobOptions::from_json(o).ok()?,
                    };
                    let journaled_plan = doc.get("plan").and_then(Json::as_str);
                    let (plan, resume_from) = match (journaled_plan, inner.steps.get(key)) {
                        // Progress is only trusted when the step records'
                        // fingerprint matches the accepted record's.
                        (Some(p), Some((sp, prog))) if p == sp => {
                            (Some(p.to_string()), prog.resume_from())
                        }
                        (p, _) => (p.map(str::to_string), 0),
                    };
                    Some(PendingJob {
                        key: key.clone(),
                        program,
                        options,
                        trace: doc.get("trace").and_then(Json::as_str).map(str::to_string),
                        priority: doc
                            .get("priority")
                            .and_then(Json::as_u64)
                            .and_then(|v| u8::try_from(v).ok())
                            .unwrap_or(0),
                        plan,
                        resume_from,
                    })
                })
                .collect::<Vec<_>>()
        };
        // Startup compaction: completed history (and anything corrupt) is
        // dead weight the next start would re-parse. Live lines are the
        // pending accepted records plus their surviving step records.
        let live = {
            let inner = lock(&journal.inner);
            inner.pending.len() as u64
                + inner
                    .steps
                    .values()
                    .map(|(_, p)| p.done.len() as u64)
                    .sum::<u64>()
        };
        if lock(&journal.inner).lines > live {
            let _ = journal.compact();
        }
        Ok((journal, replay))
    }

    /// Write-ahead record: `key` was accepted and owes an answer. Fsync'd
    /// — after this returns, a killed daemon will replay the job. The
    /// trace id (when given) rides the record so the replayed job keeps
    /// its correlation across the restart; for twin submissions sharing a
    /// key, the first accept's trace id wins. `priority` keeps the job's
    /// queue class across a restart; `plan` is the compile-plan
    /// fingerprint later `step` records will be checked against.
    pub fn accepted(
        &self,
        key: &str,
        program: &str,
        options: &JobOptions,
        trace: Option<&str>,
        priority: u8,
        plan: Option<&str>,
    ) {
        let mut pairs = vec![
            ("rec".to_string(), Json::from("accepted")),
            ("key".to_string(), Json::from(key)),
            ("program".to_string(), Json::from(program)),
            ("options".to_string(), options.to_json()),
        ];
        if let Some(t) = trace {
            pairs.push(("trace".to_string(), Json::from(t)));
        }
        if priority > 0 {
            pairs.push(("priority".to_string(), Json::from(u64::from(priority))));
        }
        if let Some(p) = plan {
            pairs.push(("plan".to_string(), Json::from(p)));
        }
        let doc = Json::Obj(pairs);
        let mut inner = lock(&self.inner);
        if !inner.pending.contains_key(key) {
            let key = key.to_string();
            inner.order.push(key.clone());
            inner.pending.insert(key, doc.clone());
        }
        self.append(&mut inner, &doc, true);
    }

    /// Progress record: plan step `step` of the plan fingerprinted `plan`
    /// finished without producing the answer. Flushed but not fsync'd —
    /// losing one repeats a step, which is safe. Ignored for keys that are
    /// not pending or whose journaled fingerprint disagrees (a replan
    /// voids old progress).
    pub fn step(&self, key: &str, plan: &str, step: usize) {
        let mut inner = lock(&self.inner);
        if !inner.pending.contains_key(key) {
            return;
        }
        let entry = inner
            .steps
            .entry(key.to_string())
            .or_insert_with(|| (plan.to_string(), StepProgress::default()));
        if entry.0 != plan {
            // New plan for the same key: previous progress is void.
            *entry = (plan.to_string(), StepProgress::default());
        }
        if !entry.1.done.insert(step) {
            return; // already journaled
        }
        let doc = Json::Obj(vec![
            ("rec".to_string(), Json::from("step")),
            ("key".to_string(), Json::from(key)),
            ("plan".to_string(), Json::from(plan)),
            ("step".to_string(), Json::from(step as u64)),
        ]);
        self.append(&mut inner, &doc, false);
    }

    /// Terminal record: `key` has been answered (by any outcome). The
    /// record echoes the trace id journaled by the matching `accepted`.
    pub fn completed(&self, key: &str) {
        let mut inner = lock(&self.inner);
        let Some(accepted) = inner.pending.remove(key) else {
            return; // unknown or already-completed key: nothing owed
        };
        inner.steps.remove(key);
        let mut pairs = vec![
            ("rec".to_string(), Json::from("completed")),
            ("key".to_string(), Json::from(key)),
        ];
        if let Some(t) = accepted.get("trace").and_then(Json::as_str) {
            pairs.push(("trace".to_string(), Json::from(t)));
        }
        let doc = Json::Obj(pairs);
        self.append(&mut inner, &doc, false);
        // Once completed pairs dominate the file, fold them away.
        if inner.lines > 2 * inner.pending.len() as u64 + 16 {
            drop(inner);
            let _ = self.compact();
        }
    }

    fn append(&self, inner: &mut Inner, doc: &Json, sync: bool) {
        if self.degraded.load(Ordering::Relaxed) {
            return;
        }
        let res = (|| -> std::io::Result<()> {
            writeln!(inner.file, "{}", doc.to_compact())?;
            inner.file.flush()?;
            if sync {
                inner.file.sync_data()?;
            }
            Ok(())
        })();
        match res {
            Ok(()) => inner.lines += 1,
            Err(_) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.degraded.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Rewrite the journal down to its pending records (temp + fsync +
    /// rename, crash-safe). Also the degraded-mode recovery path: a full
    /// successful rewrite re-attaches the file.
    pub fn compact(&self) -> std::io::Result<()> {
        let mut inner = lock(&self.inner);
        let tmp_path = self.path.with_extension("jsonl.tmp");
        let mut written = 0u64;
        let res = (|| -> std::io::Result<()> {
            let tmp = File::create(&tmp_path)?;
            let mut w = BufWriter::new(tmp);
            for key in &inner.order {
                if let Some(doc) = inner.pending.get(key) {
                    writeln!(w, "{}", doc.to_compact())?;
                    written += 1;
                    // Plan progress survives compaction so a later crash
                    // still resumes mid-plan.
                    if let Some((plan, prog)) = inner.steps.get(key) {
                        for &step in &prog.done {
                            let doc = Json::Obj(vec![
                                ("rec".to_string(), Json::from("step")),
                                ("key".to_string(), Json::from(key.as_str())),
                                ("plan".to_string(), Json::from(plan.as_str())),
                                ("step".to_string(), Json::from(step as u64)),
                            ]);
                            writeln!(w, "{}", doc.to_compact())?;
                            written += 1;
                        }
                    }
                }
            }
            w.flush()?;
            w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
            std::fs::rename(&tmp_path, &self.path)?;
            Ok(())
        })();
        match res {
            Ok(()) => {
                inner.file = OpenOptions::new().append(true).open(&self.path)?;
                inner.lines = written;
                let pending: Vec<String> = inner
                    .order
                    .iter()
                    .filter(|k| inner.pending.contains_key(*k))
                    .cloned()
                    .collect();
                inner.order = pending;
                self.degraded.store(false, Ordering::Relaxed);
                self.compactions.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                self.degraded.store(true, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Jobs currently owed an answer.
    pub fn pending_len(&self) -> usize {
        lock(&self.inner).pending.len()
    }

    /// Lines currently in the journal file (pending + not-yet-compacted
    /// history).
    pub fn lines(&self) -> u64 {
        lock(&self.inner).lines
    }

    /// I/O errors absorbed so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Whether writes are currently disabled after an I/O error.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Completed compaction passes.
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "chipmunk-serve-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn opts_with_width(w: u8) -> JobOptions {
        JobOptions {
            width: Some(w),
            ..JobOptions::default()
        }
    }

    #[test]
    fn unfinished_jobs_replay_in_accept_order() {
        let dir = tmpdir("replay");
        {
            let (j, replay) = Journal::open(&dir).unwrap();
            assert!(replay.is_empty());
            j.accepted(
                "k1",
                "pkt.a = pkt.b;",
                &opts_with_width(6),
                Some("t-abc"),
                0,
                None,
            );
            j.accepted("k2", "pkt.c = pkt.d;", &opts_with_width(7), None, 0, None);
            j.accepted(
                "k3",
                "pkt.e = pkt.f;",
                &JobOptions::default(),
                None,
                0,
                None,
            );
            j.completed("k2");
        }
        let (j, replay) = Journal::open(&dir).unwrap();
        let keys: Vec<&str> = replay.iter().map(|p| p.key.as_str()).collect();
        assert_eq!(keys, ["k1", "k3"]);
        assert_eq!(replay[0].program, "pkt.a = pkt.b;");
        assert_eq!(replay[0].options.width, Some(6));
        assert_eq!(replay[0].trace.as_deref(), Some("t-abc"));
        assert_eq!(replay[1].options.width, None);
        assert_eq!(replay[1].trace, None);
        // Startup compaction dropped the completed pair.
        assert_eq!(j.lines(), 2);
        assert_eq!(j.pending_len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_accepts_replay_once() {
        let dir = tmpdir("dup");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted("k", "pkt.a = pkt.b;", &JobOptions::default(), None, 0, None);
            j.accepted("k", "pkt.a = pkt.b;", &JobOptions::default(), None, 0, None);
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lines_and_stray_completions_are_tolerated() {
        let dir = tmpdir("torn");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("journal.jsonl"),
            concat!(
                "{\"rec\":\"completed\",\"key\":\"ghost\"}\n",
                "{\"rec\":\"accepted\",\"key\":\"k1\",\"program\":\"pkt.a = pkt.b;\"}\n",
                "{\"rec\":\"accepted\",\"key\":\"k2\",\"prog", // torn mid-append
            ),
        )
        .unwrap();
        let (j, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].key, "k1");
        // Journal still accepts new records after the damage.
        j.accepted(
            "k3",
            "pkt.x = pkt.y;",
            &JobOptions::default(),
            None,
            0,
            None,
        );
        assert_eq!(j.pending_len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completion_heavy_journals_self_compact() {
        let dir = tmpdir("selfcompact");
        let (j, _) = Journal::open(&dir).unwrap();
        for i in 0..40 {
            let key = format!("k{i}");
            j.accepted(
                &key,
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                None,
                0,
                None,
            );
            j.completed(&key);
        }
        assert!(j.compactions() >= 1);
        assert!(j.lines() <= 18, "journal unbounded: {} lines", j.lines());
        assert_eq!(j.pending_len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_records_echo_the_accepted_trace_id() {
        let dir = tmpdir("traceecho");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted(
                "k1",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                Some("t-1"),
                3,
                None,
            );
            // Twin submission: the first accept's trace id wins.
            j.accepted(
                "k1",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                Some("t-2"),
                0,
                None,
            );
            j.completed("k1");
        }
        let text = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let completed: Vec<Json> = text
            .lines()
            .filter_map(|l| Json::parse(l).ok())
            .filter(|d| d.get("rec").and_then(Json::as_str) == Some("completed"))
            .collect();
        assert_eq!(completed.len(), 1);
        assert_eq!(
            completed[0].get("trace").and_then(Json::as_str),
            Some("t-1")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn options_round_trip_through_the_journal() {
        let dir = tmpdir("opts");
        let opts = JobOptions {
            template: Some("raw".into()),
            imm: Some(3),
            width: Some(8),
            max_stages: Some(2),
            timeout_ms: Some(5000),
            parallel: Some(true),
            budget_conflicts: Some(1000),
            budget_propagations: Some(2000),
            budget_bytes: Some(1 << 20),
            ..JobOptions::default()
        };
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted("k", "pkt.a = pkt.b;", &opts, None, 0, None);
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        let got = &replay[0].options;
        assert_eq!(got.template, opts.template);
        assert_eq!(got.imm, opts.imm);
        assert_eq!(got.width, opts.width);
        assert_eq!(got.max_stages, opts.max_stages);
        assert_eq!(got.timeout_ms, opts.timeout_ms);
        assert_eq!(got.parallel, opts.parallel);
        assert_eq!(got.budget_conflicts, opts.budget_conflicts);
        assert_eq!(got.budget_propagations, opts.budget_propagations);
        assert_eq!(got.budget_bytes, opts.budget_bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn priority_and_plan_ride_the_accepted_record() {
        let dir = tmpdir("prio");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted(
                "k",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                Some("t-p"),
                7,
                Some("deadbeefdeadbeef"),
            );
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].priority, 7);
        assert_eq!(replay[0].plan.as_deref(), Some("deadbeefdeadbeef"));
        assert_eq!(replay[0].resume_from, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_steps_become_the_resume_offset() {
        let dir = tmpdir("resume");
        let fp = "0123456789abcdef";
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted(
                "k",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                None,
                0,
                Some(fp),
            );
            j.step("k", fp, 0);
            j.step("k", fp, 1);
            j.step("k", fp, 1); // duplicate: journaled once
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay[0].resume_from, 2, "contiguous prefix 0..2 done");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_hole_in_the_step_sequence_stops_the_resume_prefix() {
        let dir = tmpdir("hole");
        let fp = "0123456789abcdef";
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted(
                "k",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                None,
                0,
                Some(fp),
            );
            j.step("k", fp, 0);
            j.step("k", fp, 2); // step 1 never finished
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay[0].resume_from, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_plan_fingerprint_voids_journaled_progress() {
        let dir = tmpdir("fpmismatch");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted(
                "k",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                None,
                0,
                Some("aaaaaaaaaaaaaaaa"),
            );
            // Step records from some other plan (e.g. a planner change
            // between accept and crash): must not be trusted.
            j.step("k", "bbbbbbbbbbbbbbbb", 0);
            j.step("k", "bbbbbbbbbbbbbbbb", 1);
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay[0].resume_from, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn step_progress_survives_compaction() {
        let dir = tmpdir("stepcompact");
        let fp = "0123456789abcdef";
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted(
                "k",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                None,
                0,
                Some(fp),
            );
            j.step("k", fp, 0);
            // Force churn so a compaction definitely runs.
            for i in 0..40 {
                let key = format!("churn{i}");
                j.accepted(
                    &key,
                    "pkt.c = pkt.d;",
                    &JobOptions::default(),
                    None,
                    0,
                    None,
                );
                j.completed(&key);
            }
            assert!(j.compactions() >= 1);
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].resume_from, 1, "step lost in compaction");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completion_clears_step_progress() {
        let dir = tmpdir("stepclear");
        let fp = "0123456789abcdef";
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.accepted(
                "k",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                None,
                0,
                Some(fp),
            );
            j.step("k", fp, 0);
            j.completed("k");
            // Re-accept the same key: old progress must not leak into the
            // fresh job.
            j.accepted(
                "k",
                "pkt.a = pkt.b;",
                &JobOptions::default(),
                None,
                0,
                Some(fp),
            );
        }
        let (_, replay) = Journal::open(&dir).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0].resume_from, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
