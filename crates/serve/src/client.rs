//! A tiny blocking client for the serve protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use chipmunk_trace::json::Json;

/// One connection to a chipmunk-serve daemon. Requests run in lockstep:
/// write a line, read a line.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request document and read the matching response line.
    pub fn request(&mut self, doc: &Json) -> std::io::Result<Json> {
        let mut line = doc.to_compact();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(response.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response: {e}"),
            )
        })
    }

    /// Submit a program for compilation. `options` is the request's
    /// `options` object (pass `Json::Obj(vec![])` for server defaults).
    pub fn compile(&mut self, program: &str, options: Json) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("compile")),
            ("program", Json::from(program)),
            ("options", options),
        ]))
    }

    /// Probe liveness and queue occupancy.
    pub fn status(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::from("status"))]))
    }

    /// Fetch the counter snapshot.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::from("stats"))]))
    }

    /// Ask the server to stop (`abort` cancels in-flight work).
    pub fn shutdown(&mut self, abort: bool) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("shutdown")),
            ("mode", Json::from(if abort { "abort" } else { "drain" })),
        ]))
    }
}
