//! A tiny blocking client for the serve protocol, plus a retrying
//! wrapper with bounded exponential backoff for transient failures.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use chipmunk_trace::json::Json;
use chipmunk_trace::rng::Xoshiro256;

/// One connection to a chipmunk-serve daemon.
///
/// The lockstep helpers ([`request`](Client::request) and friends) write
/// a line and read a line. For pipelining, use [`send`](Client::send) to
/// queue any number of requests — each tagged with a client-chosen `id` —
/// and [`recv`](Client::recv) to collect the responses; compile responses
/// arrive in completion order, so match them by the echoed `id`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    priority: u8,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            priority: 0,
        })
    }

    /// Queue priority (0–9) stamped on every subsequent compile request;
    /// 0 (the default) omits the field and takes the server default.
    pub fn set_priority(&mut self, priority: u8) {
        self.priority = priority;
    }

    /// Write one request line without waiting for the response.
    pub fn send(&mut self, doc: &Json) -> std::io::Result<()> {
        let mut line = doc.to_compact();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Read the next response line, whichever request it answers.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(response.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response: {e}"),
            )
        })
    }

    /// Send one request document and read the matching response line.
    pub fn request(&mut self, doc: &Json) -> std::io::Result<Json> {
        self.send(doc)?;
        self.recv()
    }

    /// Submit a program for compilation. `options` is the request's
    /// `options` object (pass `Json::Obj(vec![])` for server defaults).
    pub fn compile(&mut self, program: &str, options: Json) -> std::io::Result<Json> {
        self.compile_traced(program, options, None)
    }

    /// Submit a program with a client-chosen trace id. The server echoes
    /// it on the response, stamps it on the job's span tree (query with
    /// [`trace`](Client::trace)), and journals it with the job.
    pub fn compile_traced(
        &mut self,
        program: &str,
        options: Json,
        trace: Option<&str>,
    ) -> std::io::Result<Json> {
        let mut pairs = vec![
            ("op", Json::from("compile")),
            ("program", Json::from(program)),
            ("options", options),
        ];
        if let Some(trace) = trace {
            pairs.push(("trace", Json::from(trace)));
        }
        if self.priority > 0 {
            pairs.push(("priority", Json::from(self.priority)));
        }
        self.request(&Json::obj(pairs))
    }

    /// Fetch the buffered span tree for a job's trace id (`found:false`
    /// when the server's ring buffer no longer holds it).
    pub fn trace(&mut self, trace_id: &str) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("trace")),
            ("trace", Json::from(trace_id)),
        ]))
    }

    /// Fetch the live telemetry summary: per-stage latency percentiles,
    /// per-outcome job counts, cache hit rate, and solver gauges.
    pub fn telemetry(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::from("telemetry"))]))
    }

    /// Poll for a compile-shaped request's result without enqueueing a
    /// job: `found:true` with the certified result document when the
    /// cache has it, `found:false` otherwise. This is how a client
    /// collects a result recompiled by the journal replay after a daemon
    /// crash.
    pub fn poll(&mut self, program: &str, options: Json) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("poll")),
            ("program", Json::from(program)),
            ("options", options),
        ]))
    }

    /// Queue a compile request tagged with `id` without waiting; pair
    /// with [`recv`](Client::recv) and match responses by the echoed id.
    pub fn send_compile(&mut self, id: Json, program: &str, options: Json) -> std::io::Result<()> {
        let mut pairs = vec![
            ("op", Json::from("compile")),
            ("id", id),
            ("program", Json::from(program)),
            ("options", options),
        ];
        if self.priority > 0 {
            pairs.push(("priority", Json::from(self.priority)));
        }
        self.send(&Json::obj(pairs))
    }

    /// Probe liveness and queue occupancy.
    pub fn status(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::from("status"))]))
    }

    /// Fetch the counter snapshot.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::from("stats"))]))
    }

    /// Run a cache maintenance action: `"stats"`, `"compact"`, `"clear"`.
    pub fn cache(&mut self, action: &str) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("cache")),
            ("action", Json::from(action)),
        ]))
    }

    /// Ask the server to stop (`abort` cancels in-flight work).
    pub fn shutdown(&mut self, abort: bool) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("shutdown")),
            ("mode", Json::from(if abort { "abort" } else { "drain" })),
        ]))
    }
}

/// Bounded exponential backoff with full jitter.
///
/// Attempt `k` sleeps a uniform draw from `[0, min(cap, base·2^k)]` —
/// full jitter, so a burst of clients bounced by the same `busy` window
/// does not reconverge on the server in lockstep.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = this + 1).
    pub max_retries: u32,
    /// Backoff ceiling for the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter stream. Two clients with different seeds fan
    /// out; one seed reproduces one schedule exactly.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32, rng: &mut Xoshiro256) -> Duration {
        let ceiling = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        let nanos = ceiling.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(rng.gen_u64_below(nanos + 1))
    }
}

/// Is this I/O failure worth retrying? Connection churn (a reset socket,
/// a server mid-restart, a `busy` bounce surfaced as an error) is; a
/// protocol violation or a hard local failure is not.
fn transient_io(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// Is this *response* a transient server condition (retry after backoff)
/// rather than a verdict about the program? `shed` — evicted by a
/// higher-priority job under saturation — is transient too: the program
/// was never judged.
fn retryable_response(resp: &Json) -> bool {
    resp.get("ok").and_then(Json::as_bool) == Some(false)
        && matches!(
            resp.get("error").and_then(Json::as_str),
            Some("busy") | Some("queue_full") | Some("shed")
        )
}

/// The server's pacing hint on a brownout/shed refusal, when present.
fn retry_hint_ms(resp: &Json) -> Option<u64> {
    resp.get("retry_after_ms").and_then(Json::as_u64)
}

/// A compile client that retries transient failures — `busy` bounces,
/// `queue_full` backpressure, and connection resets — with bounded
/// exponential backoff and full jitter, reconnecting as needed.
///
/// Retrying a compile is safe by construction: compiles are idempotent
/// under the content-addressed result cache, so a job whose response was
/// lost to a reset is re-requested and (usually) served from cache.
/// Errors that are verdicts about the program (`parse`, `infeasible`,
/// `timeout`, …) are returned immediately, never retried.
pub struct RetryingClient {
    addr: String,
    policy: RetryPolicy,
    rng: Xoshiro256,
    conn: Option<Client>,
    retries: u64,
    priority: u8,
    /// Total wall-clock budget across every retry of a batch; once it
    /// elapses, transient responses become terminal instead of being
    /// resubmitted. `None` retries on the policy's count alone.
    deadline: Option<Duration>,
}

impl RetryingClient {
    /// Create a client for `addr` (connects lazily on first use).
    pub fn new(addr: &str, policy: RetryPolicy) -> RetryingClient {
        let rng = Xoshiro256::seed_from_u64(policy.seed);
        RetryingClient {
            addr: addr.to_string(),
            policy,
            rng,
            conn: None,
            retries: 0,
            priority: 0,
            deadline: None,
        }
    }

    /// Bound the total time a batch may spend retrying (backoff sleeps
    /// included). Pair this with the job-side `deadline_ms` option so a
    /// caller with an end-to-end deadline never sleeps past it chasing
    /// `busy` bounces.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) {
        self.deadline = deadline;
    }

    /// Retries performed so far (for reporting).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Queue priority (0–9) for every subsequent compile, surviving
    /// reconnects; 0 (the default) takes the server default.
    pub fn set_priority(&mut self, priority: u8) {
        self.priority = priority;
        if let Some(c) = self.conn.as_mut() {
            c.set_priority(priority);
        }
    }

    fn ensure(&mut self) -> std::io::Result<&mut Client> {
        if self.conn.is_none() {
            let mut c = Client::connect(self.addr.as_str())?;
            c.set_priority(self.priority);
            self.conn = Some(c);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Submit one program, retrying transient failures. Returns the
    /// terminal response (which may still be `busy`/`queue_full` if every
    /// retry was exhausted) or the last I/O error.
    pub fn compile(&mut self, program: &str, options: &Json) -> std::io::Result<Json> {
        let mut v = self.pipeline(std::slice::from_ref(&program.to_string()), options)?;
        Ok(v.pop().unwrap_or(Json::Null))
    }

    /// Pipeline a batch of programs over one connection, retrying
    /// transient failures per job. Jobs are tagged with their index as
    /// the request `id`; the returned vector is in input order, one
    /// terminal response per program. After a connection reset, only the
    /// still-unanswered jobs are resubmitted.
    pub fn pipeline(&mut self, programs: &[String], options: &Json) -> std::io::Result<Vec<Json>> {
        self.pipeline_with_progress(programs, options, |_| {})
    }

    /// [`pipeline`](RetryingClient::pipeline), reporting progress after
    /// every pass: the callback sees the terminal-answer tally so far
    /// (jobs cleared for retry are not counted until they settle).
    pub fn pipeline_with_progress(
        &mut self,
        programs: &[String],
        options: &Json,
        mut progress: impl FnMut(BatchProgress),
    ) -> std::io::Result<Vec<Json>> {
        let mut answers: Vec<Option<Json>> = (0..programs.len()).map(|_| None).collect();
        let mut attempt = 0u32;
        let mut reported = usize::MAX;
        let started = Instant::now();
        loop {
            let pending: Vec<usize> = answers
                .iter()
                .enumerate()
                .filter(|(_, a)| a.is_none())
                .map(|(i, _)| i)
                .collect();
            if pending.is_empty() {
                break;
            }
            let pass = pipeline_pass(self.ensure(), &pending, programs, options, &mut answers);
            // Retry budget: the policy's attempt count AND (when set) the
            // caller's wall-clock deadline must both have room.
            let budget_left = match self.deadline {
                Some(dl) => started.elapsed() < dl,
                None => true,
            };
            // A transient response is only terminal once retries run out;
            // otherwise clear it so the next pass resubmits that job. The
            // server's `retry_after_ms` pacing hint (brownout refusals)
            // stretches the next backoff when it asks for more patience.
            let mut need_retry = false;
            let mut hint_ms = 0u64;
            if attempt < self.policy.max_retries && budget_left {
                for slot in answers.iter_mut() {
                    if slot.as_ref().is_some_and(retryable_response) {
                        if let Some(ms) = slot.as_ref().and_then(retry_hint_ms) {
                            hint_ms = hint_ms.max(ms);
                        }
                        *slot = None;
                        need_retry = true;
                    }
                }
            }
            let snapshot = BatchProgress::tally(&answers, self.retries);
            if snapshot.done != reported {
                reported = snapshot.done;
                progress(snapshot);
            }
            match pass {
                Ok(()) if !need_retry => break,
                Ok(()) => {}
                Err(e) => {
                    self.conn = None;
                    if !transient_io(&e) || attempt >= self.policy.max_retries || !budget_left {
                        return Err(e);
                    }
                }
            }
            let mut delay = self
                .policy
                .backoff(attempt, &mut self.rng)
                .max(Duration::from_millis(hint_ms));
            if let Some(dl) = self.deadline {
                // Never sleep past the caller's deadline: the final
                // attempt fires just before it rather than after.
                delay = delay.min(dl.saturating_sub(started.elapsed()));
            }
            self.retries += 1;
            attempt += 1;
            std::thread::sleep(delay);
        }
        Ok(answers
            .into_iter()
            .map(|a| a.unwrap_or(Json::Null))
            .collect())
    }
}

/// A snapshot of a pipelined batch, handed to the progress callback of
/// [`RetryingClient::pipeline_with_progress`] after each pass.
#[derive(Clone, Copy, Debug)]
pub struct BatchProgress {
    /// Jobs with a terminal answer.
    pub done: usize,
    /// Jobs in the batch.
    pub total: usize,
    /// Terminal successes served from the cache.
    pub cached: usize,
    /// Terminal failures.
    pub failed: usize,
    /// Transport retries performed so far.
    pub retries: u64,
}

impl BatchProgress {
    fn tally(answers: &[Option<Json>], retries: u64) -> BatchProgress {
        let mut done = 0;
        let mut cached = 0;
        let mut failed = 0;
        for a in answers.iter().flatten() {
            done += 1;
            match a.get("ok").and_then(Json::as_bool) {
                Some(true) => {
                    if a.get("cached").and_then(Json::as_bool) == Some(true) {
                        cached += 1;
                    }
                }
                _ => failed += 1,
            }
        }
        BatchProgress {
            done,
            total: answers.len(),
            cached,
            failed,
            retries,
        }
    }
}

/// One send-all/receive-all pass over a (re)connected socket. Fills
/// `answers` as responses arrive; any I/O error aborts the pass and the
/// caller decides whether to reconnect and go again.
fn pipeline_pass(
    conn: std::io::Result<&mut Client>,
    pending: &[usize],
    programs: &[String],
    options: &Json,
    answers: &mut [Option<Json>],
) -> std::io::Result<()> {
    let c = conn?;
    for &i in pending {
        c.send_compile(Json::from(i as u64), &programs[i], options.clone())?;
    }
    let mut outstanding = pending.len();
    while outstanding > 0 {
        let resp = c.recv()?;
        let id = resp.get("id").and_then(Json::as_u64);
        let Some(i) = id.map(|v| v as usize) else {
            // An id-less error line is connection-scoped — `busy` is the
            // one the server sends before closing. Surface it as a
            // transient I/O error so the caller reconnects after backoff.
            if resp.get("error").and_then(Json::as_str) == Some("busy") {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "server busy; connection closed",
                ));
            }
            continue;
        };
        if i < answers.len() && answers[i].is_none() {
            answers[i] = Some(resp);
            outstanding -= 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_never_exceeds_the_cap() {
        let policy = RetryPolicy {
            max_retries: 32,
            base: Duration::from_millis(50),
            cap: Duration::from_millis(400),
            seed: 7,
        };
        let mut rng = Xoshiro256::seed_from_u64(policy.seed);
        for attempt in 0..64 {
            let d = policy.backoff(attempt, &mut rng);
            assert!(
                d <= policy.cap,
                "attempt {attempt}: backoff {d:?} exceeds cap {:?}",
                policy.cap
            );
        }
    }

    #[test]
    fn backoff_jitters_within_the_exponential_ceiling() {
        let policy = RetryPolicy::default();
        // Early attempts: the ceiling is base·2^k, below the cap.
        for attempt in 0..5u32 {
            let ceiling = policy.base * 2u32.pow(attempt);
            let mut rng = Xoshiro256::seed_from_u64(99 + u64::from(attempt));
            let mut seen_nonzero = false;
            for _ in 0..200 {
                let d = policy.backoff(attempt, &mut rng);
                assert!(
                    d <= ceiling,
                    "attempt {attempt}: {d:?} above ceiling {ceiling:?}"
                );
                seen_nonzero |= d > Duration::ZERO;
            }
            // Full jitter is uniform on [0, ceiling]: 200 draws that are
            // all zero would mean the jitter is broken, not unlucky.
            assert!(seen_nonzero, "attempt {attempt}: jitter stuck at zero");
        }
    }

    #[test]
    fn backoff_is_deterministic_for_a_fixed_seed() {
        let policy = RetryPolicy::default();
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = Xoshiro256::seed_from_u64(seed);
            (0..10).map(|k| policy.backoff(k, &mut rng)).collect()
        };
        assert_eq!(schedule(42), schedule(42), "same seed, same schedule");
        assert_ne!(
            schedule(42),
            schedule(43),
            "different seeds must fan out (same schedule is astronomically unlikely)"
        );
    }

    #[test]
    fn zero_ceiling_backoff_is_zero() {
        let policy = RetryPolicy {
            max_retries: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
            seed: 1,
        };
        let mut rng = Xoshiro256::seed_from_u64(1);
        assert_eq!(policy.backoff(0, &mut rng), Duration::ZERO);
        assert_eq!(policy.backoff(31, &mut rng), Duration::ZERO);
    }

    #[test]
    fn shed_and_busy_are_retryable_and_carry_the_pacing_hint() {
        let shed = Json::obj([
            ("ok", Json::Bool(false)),
            ("error", Json::from("shed")),
            ("retry_after_ms", Json::U64(750)),
        ]);
        assert!(retryable_response(&shed));
        assert_eq!(retry_hint_ms(&shed), Some(750));
        let busy = Json::obj([("ok", Json::Bool(false)), ("error", Json::from("busy"))]);
        assert!(retryable_response(&busy));
        assert_eq!(retry_hint_ms(&busy), None, "hint is optional");
        let expired = Json::obj([("ok", Json::Bool(false)), ("error", Json::from("expired"))]);
        assert!(
            !retryable_response(&expired),
            "an expired deadline is a verdict about this request, not server churn"
        );
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let policy = RetryPolicy::default();
        let mut rng = Xoshiro256::seed_from_u64(5);
        // 2^attempt would overflow u32 far before 10_000; min(16) clamps.
        let d = policy.backoff(10_000, &mut rng);
        assert!(d <= policy.cap);
    }
}
