//! A tiny blocking client for the serve protocol.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use chipmunk_trace::json::Json;

/// One connection to a chipmunk-serve daemon.
///
/// The lockstep helpers ([`request`](Client::request) and friends) write
/// a line and read a line. For pipelining, use [`send`](Client::send) to
/// queue any number of requests — each tagged with a client-chosen `id` —
/// and [`recv`](Client::recv) to collect the responses; compile responses
/// arrive in completion order, so match them by the echoed `id`.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Write one request line without waiting for the response.
    pub fn send(&mut self, doc: &Json) -> std::io::Result<()> {
        let mut line = doc.to_compact();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    /// Read the next response line, whichever request it answers.
    pub fn recv(&mut self) -> std::io::Result<Json> {
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Json::parse(response.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response: {e}"),
            )
        })
    }

    /// Send one request document and read the matching response line.
    pub fn request(&mut self, doc: &Json) -> std::io::Result<Json> {
        self.send(doc)?;
        self.recv()
    }

    /// Submit a program for compilation. `options` is the request's
    /// `options` object (pass `Json::Obj(vec![])` for server defaults).
    pub fn compile(&mut self, program: &str, options: Json) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("compile")),
            ("program", Json::from(program)),
            ("options", options),
        ]))
    }

    /// Queue a compile request tagged with `id` without waiting; pair
    /// with [`recv`](Client::recv) and match responses by the echoed id.
    pub fn send_compile(&mut self, id: Json, program: &str, options: Json) -> std::io::Result<()> {
        self.send(&Json::obj([
            ("op", Json::from("compile")),
            ("id", id),
            ("program", Json::from(program)),
            ("options", options),
        ]))
    }

    /// Probe liveness and queue occupancy.
    pub fn status(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::from("status"))]))
    }

    /// Fetch the counter snapshot.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::from("stats"))]))
    }

    /// Run a cache maintenance action: `"stats"`, `"compact"`, `"clear"`.
    pub fn cache(&mut self, action: &str) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("cache")),
            ("action", Json::from(action)),
        ]))
    }

    /// Ask the server to stop (`abort` cancels in-flight work).
    pub fn shutdown(&mut self, abort: bool) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::from("shutdown")),
            ("mode", Json::from(if abort { "abort" } else { "drain" })),
        ]))
    }
}
