//! # chipmunk-serve
//!
//! A long-running compilation daemon for the chipmunk synthesis stack.
//!
//! Chipmunk-style queries are expensive (CEGIS over bit-blasted SAT) and
//! highly repetitive: the paper's evaluation alone re-compiles every
//! benchmark under ten semantics-preserving mutations, all of which reduce
//! to the *same* synthesis problem. This crate turns the one-shot CLI into
//! a service shaped for that workload:
//!
//! * a **bounded job queue** with typed backpressure ([`queue`]),
//! * a fixed-size **worker pool** running
//!   [`chipmunk::compile_with_cancel`] with per-job timeouts and
//!   cancellation-based abortive shutdown ([`server`]),
//! * a **two-tier content-addressed result cache** — a bounded in-memory
//!   LRU plus an on-disk JSONL store with crash-safe compaction — keyed by
//!   [`chipmunk::cache_key`], the hash of the *canonicalized* program and
//!   every semantics-relevant option, so mutants of one benchmark are
//!   cache hits ([`cache`]),
//! * a **newline-delimited JSON protocol** over TCP, using the workspace's
//!   own zero-dependency JSON module ([`protocol`], [`client`]). Requests
//!   carry optional client-chosen `id`s, and each connection is handled by
//!   a reader/writer thread pair, so one socket can pipeline many compiles
//!   and receive responses in completion order.
//! * a **fault-tolerant compile path**: worker panics are isolated into
//!   structured `internal` errors, a dispatch-time watchdog respawns dead
//!   workers, the disk cache tier degrades to memory-only instead of
//!   failing, clients retry transient errors with jittered backoff
//!   ([`client::RetryingClient`]), and the whole stack is testable under a
//!   seeded deterministic fault schedule ([`faults`]).
//! * **certified results**: every result document served — fresh,
//!   cache-hit, name-remapped, or polled — is independently re-checked
//!   against the submitted program by differential execution in the
//!   hardware simulator before it leaves the daemon; a failing document
//!   is quarantined from both cache tiers and the compile retried from
//!   scratch ([`chipmunk::certify_config`]).
//! * a **write-ahead job journal** ([`journal`]): accepted jobs are
//!   fsync'd to disk before they enter the queue, so a killed daemon
//!   replays unfinished work on restart and clients collect the recovered
//!   results with the `poll` op.
//!
//! * a **live telemetry plane** ([`metrics`], [`trace_store`]): every
//!   accepted job carries a trace id (client-supplied or server-assigned)
//!   that is echoed in responses, journaled with both journal records,
//!   and stamped on the job's `serve.job` span so the nested `cegis.*` /
//!   `sat.*` spans correlate end to end — across a kill-restart replay.
//!   Recent spans are ring-buffered in memory and queryable with the
//!   `trace` protocol op; latency SLO histograms (queue wait, compile,
//!   certify, remap, end-to-end — labeled by outcome and spec family)
//!   and solver-cost gauges are served as Prometheus text exposition
//!   from an optional HTTP endpoint and summarized by the `telemetry`
//!   protocol op.
//!
//! The whole path is instrumented with `chipmunk-trace`: queue depth and
//! wait time, cache hits/misses, and per-job synthesis time all land in
//! the same JSONL trace stream as the underlying CEGIS spans.
//!
//! ```no_run
//! use chipmunk_serve::{server, Client};
//! use chipmunk_trace::json::Json;
//!
//! let handle = server::start(&server::ServerConfig::default()).unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! let resp = client.compile("pkt.x = pkt.a;", Json::Obj(vec![])).unwrap();
//! assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
//! client.shutdown(false).unwrap();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod faults;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod trace_store;

pub use cache::ResultCache;
pub use client::{BatchProgress, Client, RetryPolicy, RetryingClient};
pub use journal::{Journal, PendingJob};
pub use metrics::{Family, Outcome, Stage, Telemetry};
pub use protocol::{CacheAction, Incoming, JobOptions, Request};
pub use queue::{Bounded, PushError};
pub use server::{start, ServerConfig, ServerHandle};
pub use trace_store::TraceStore;
