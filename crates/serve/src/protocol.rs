//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request; a client may
//! pipeline many requests on one connection. Grammar (each `<…>` a
//! single line):
//!
//! ```text
//! request  := compile | poll | status | stats | cache | shutdown
//!           | trace | telemetry
//! compile  := {"op":"compile","id":<scalar>?,"trace":<string>?,
//!              "priority":<int 0..=9>?,
//!              "program":<string>,"options":<options>?}
//! poll     := {"op":"poll","id":<scalar>?,"program":<string>,"options":<options>?}
//! status   := {"op":"status","id":<scalar>?}
//! stats    := {"op":"stats","id":<scalar>?}
//! cache    := {"op":"cache","id":<scalar>?,"action":"stats"|"compact"|"clear"?}
//! shutdown := {"op":"shutdown","id":<scalar>?,"mode":"drain"|"abort"?}
//! trace    := {"op":"trace","id":<scalar>?,"trace":<string>}
//! telemetry:= {"op":"telemetry","id":<scalar>?}
//! options  := {"template":<string>?,"imm":<int>?,"width":<int>?,
//!              "screen_width":<int>?,"synth_input_bits":<int>?,
//!              "num_initial_inputs":<int>?,"max_iters":<int>?,"seed":<int>?,
//!              "max_stages":<int>?,"slots":<int>?,"timeout_ms":<int>?,
//!              "deadline_ms":<int>?,
//!              "parallel":<bool>?,"portfolio":<bool>?,
//!              "budget_conflicts":<int>?,
//!              "budget_propagations":<int>?,"budget_bytes":<int>?}
//! ```
//!
//! **Priorities.** A compile may carry a `priority` (0–9, default 0):
//! the job queue pops the highest level first, FIFO within a level. The
//! priority rides in the journal's `accepted` record so replayed jobs
//! keep their place, but it is *not* part of the cache key — it changes
//! when a job runs, never what it means.
//!
//! **Trace propagation.** A compile may carry a client-chosen `trace`
//! string (≤ 128 chars); the daemon assigns one otherwise. The id is
//! echoed as the `trace` field of every response for that job, recorded
//! in the job journal's `accepted`/`completed` records, and attached to
//! the job's `serve.job` span, under which the per-job `cegis.*`/`sat.*`
//! spans nest. The `trace` op looks a recent job's full span tree up by
//! that id from the daemon's in-memory ring buffer; `telemetry` returns
//! rolling latency percentiles (queue wait, compile, certify, remap,
//! end-to-end), cache hit rate, and cumulative solver gauges.
//!
//! `poll` is a compile-shaped lookup that never enqueues work: it answers
//! `{"ok":true,"found":true,…}` with the (certified) cached result for the
//! same program+options, or `{"ok":true,"found":false}`. Clients use it to
//! collect results of jobs the daemon recovered from its journal after a
//! crash, without risking a duplicate compile.
//!
//! **Pipelining and ordering.** A request may carry a client-chosen `id`
//! (any JSON scalar — string or number), echoed verbatim as the `id`
//! field of its response line. Control responses (`status`, `stats`,
//! `cache`, `shutdown`, and every request-level error) are written in
//! request order, but `compile` responses stream back **in completion
//! order** — a cache hit overtakes a synthesis run submitted before it.
//! Clients pipelining more than one compile on a connection must match
//! responses by `id`; a lockstep client (one request outstanding) needs
//! no ids and sees the classic one-in-one-out behavior.
//!
//! Responses always carry `"ok"`: successes are `{"ok":true,…}`, failures
//! `{"ok":false,"error":<code>,"message":<string>}` with codes `parse`,
//! `bad_request`, `too_large`, `infeasible`, `timeout`, `queue_full`,
//! `busy` (connection limit reached — sent once on accept, then the
//! connection closes), `io` (a cache maintenance action hit the disk),
//! `internal` (the compiler panicked or its worker died mid-job; the
//! worker pool has been respawned and the compile is safe to retry),
//! `uncertified` (a synthesized configuration failed the independent
//! certification check and was withheld — a compiler defect surfaced as
//! data), `expired` (the job's deadline elapsed before a worker could
//! finish — or even start — it), `shed` (the queue evicted this job to
//! admit a higher-priority one under saturation), `shutting_down`.
//!
//! **Deadlines.** A compile may carry `deadline_ms`: the total
//! wall-clock time the client is willing to wait, measured from
//! admission and covering queue wait, synthesis, and certification. The
//! daemon defaults it from `--default-deadline-ms` when absent. Unlike
//! `timeout_ms` (which bounds only the compile step), the deadline also
//! expires jobs still in the queue, and the plan executor converts the
//! *remaining* time into per-step solver budgets. Like `timeout_ms` it
//! is excluded from the cache key. A `busy` or `queue_full` rejection
//! issued during brownout may carry `retry_after_ms`, the daemon's
//! estimate of when capacity will return; retrying clients should wait
//! at least that long.
//!
//! An `infeasible` failure additionally carries `certified` (true when
//! the daemon re-checked a DRAT proof of the verdict before serving
//! it), `quarantined`/`fresh_resolve` (the degrade ladder the verdict
//! travelled), `proof_lemmas`/`proof_bytes`, a `proof` field holding the
//! certificate text when one was retained, and `unchecked_reason` when
//! it was not — see [`infeasible_response`].
//!
//! The three `budget_*` options are hard solver resource ceilings
//! (conflicts, unit propagations, learnt-clause/arena bytes); a job that
//! trips one fails with the `timeout` code, exactly like a wall-clock
//! deadline, and is excluded from the cache key (budgets bound the
//! *work*, not the meaning of the answer).
//!
//! **Untrusted input.** Everything in this module runs on raw client
//! bytes, so the whole non-test file is compiled under
//! `deny(clippy::unwrap_used)` / `expect_used` / `panic`: malformed input
//! must flow out as a typed `parse`/`bad_request` response, never unwind
//! a connection thread.
//!
//! A compile success's `result` object carries `fields` and `states`
//! name arrays naming the indices of `field_to_container` — always in the
//! *requester's* first-use order, even when the result is served from
//! cache on behalf of a differently-numbered equivalent program (see
//! [`remap_result`]).

#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use chipmunk::{CodegenError, CodegenSuccess, CompilerOptions, InfeasibleCert, ResourceBudget};
use chipmunk_lang::PacketState;
use chipmunk_pisa::{stateful::library, PipelineConfig, StatefulAluSpec, StatelessAluSpec};
use chipmunk_trace::json::Json;

/// A decoded client request.
#[derive(Debug)]
pub enum Request {
    /// Compile a packet transaction (source text) under the given options.
    Compile {
        /// Domino-dialect source of the program.
        program: String,
        /// Knobs; anything omitted takes the server default.
        options: JobOptions,
        /// Client-supplied trace id; the server assigns one when absent.
        trace: Option<String>,
        /// Queue priority (0–9, default 0); higher pops first.
        priority: u8,
    },
    /// Cache-only lookup for the same program+options — answers from the
    /// result cache (certified) or reports `found: false`; never compiles.
    Poll {
        /// Domino-dialect source of the program.
        program: String,
        /// Knobs; anything omitted takes the server default.
        options: JobOptions,
    },
    /// Liveness + queue occupancy probe.
    Status,
    /// Counter snapshot (cache hits/misses, synth time, rejects, …).
    Stats,
    /// Inspect or maintain the result cache.
    Cache {
        /// What to do to the cache.
        action: CacheAction,
    },
    /// Stop the server: `abort = false` drains queued jobs first,
    /// `abort = true` cancels in-flight synthesis and fails queued jobs.
    Shutdown {
        /// Cancel in-flight work instead of draining.
        abort: bool,
    },
    /// Look up the span tree of a recent job by its trace id.
    Trace {
        /// The trace id to look up (as echoed in a compile response).
        trace: String,
    },
    /// Rolling latency percentiles, cache hit rate, and solver gauges.
    Telemetry,
}

/// The maintenance verb of a `cache` request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheAction {
    /// Report entry counts, bounds, evictions, disk lines, compactions.
    Stats,
    /// Rewrite `results.jsonl` down to the retained entries.
    Compact,
    /// Drop every entry from both tiers.
    Clear,
}

/// One parsed request line: the echoed `id` (if any) plus the decoded
/// request or the error to answer with. The `id` is extracted even when
/// decoding fails, so a pipelining client can match the error to its
/// request — only a line that is not a JSON object at all has no `id`.
pub struct Incoming {
    /// Client-chosen correlation token, echoed verbatim in the response.
    pub id: Option<Json>,
    /// The request, or the message for a `parse` / `bad_request` error.
    pub request: Result<Request, String>,
}

/// Parse one request line, keeping the `id` separate from the outcome.
pub fn parse_line(line: &str) -> Incoming {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            return Incoming {
                id: None,
                request: Err(e.to_string()),
            }
        }
    };
    let id = match doc.get("id") {
        None | Some(Json::Null) => None,
        Some(v @ (Json::Str(_) | Json::U64(_) | Json::I64(_))) => Some(v.clone()),
        Some(_) => {
            return Incoming {
                id: None,
                request: Err("`id` must be a string or an integer".to_string()),
            }
        }
    };
    Incoming {
        id,
        request: decode_request(&doc),
    }
}

/// Echo `id` (when present) as the first field of a response object.
pub fn with_id(response: Json, id: Option<Json>) -> Json {
    match (response, id) {
        (Json::Obj(mut pairs), Some(id)) => {
            pairs.insert(0, ("id".to_string(), id));
            Json::Obj(pairs)
        }
        (response, _) => response,
    }
}

/// Per-job compilation knobs, mirroring `chipmunkc compile` flags.
#[derive(Clone, Debug, Default)]
pub struct JobOptions {
    /// Stateful ALU template name (`raw`, `pred_raw`, `if_else_raw`, …).
    pub template: Option<String>,
    /// Immediate-operand bit width for both ALU kinds.
    pub imm: Option<u8>,
    /// CEGIS verification width.
    pub width: Option<u8>,
    /// Screening-verifier width (`None` keeps the default).
    pub screen_width: Option<u8>,
    /// Initial-input sampling width.
    pub synth_input_bits: Option<u8>,
    /// Number of random initial inputs.
    pub num_initial_inputs: Option<usize>,
    /// CEGIS iteration cap.
    pub max_iters: Option<usize>,
    /// Sampling seed.
    pub seed: Option<u64>,
    /// Deepest grid to try.
    pub max_stages: Option<usize>,
    /// PHV containers / ALUs per stage.
    pub slots: Option<usize>,
    /// Per-job wall-clock budget in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Total time the client will wait (queue + compile + certify),
    /// measured from admission. Server-defaulted when absent; excluded
    /// from the cache key. See the module doc's **Deadlines** section.
    pub deadline_ms: Option<u64>,
    /// Run the grid-depth sweep on parallel threads.
    pub parallel: Option<bool>,
    /// Race hole-restriction strategies per depth; the first certified
    /// win cancels the rest. Takes precedence over `parallel`.
    pub portfolio: Option<bool>,
    /// Hard ceiling on SAT conflicts per solver run.
    pub budget_conflicts: Option<u64>,
    /// Hard ceiling on unit propagations per solver run.
    pub budget_propagations: Option<u64>,
    /// Hard ceiling on clause-arena bytes per solver.
    pub budget_bytes: Option<u64>,
}

fn alu_template(name: &str, imm: u8) -> Result<StatefulAluSpec, String> {
    library::by_name(name, imm).ok_or_else(|| format!("unknown template `{name}`"))
}

fn get_num<T: TryFrom<u64>>(obj: &Json, key: &str) -> Result<Option<T>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("`{key}` must be a non-negative integer"))?;
            T::try_from(n)
                .map(Some)
                .map_err(|_| format!("`{key}` out of range"))
        }
    }
}

impl JobOptions {
    /// Decode from the `options` object of a compile request.
    pub fn from_json(obj: &Json) -> Result<JobOptions, String> {
        if !matches!(obj, Json::Obj(_)) {
            return Err("`options` must be an object".to_string());
        }
        let template = match obj.get("template") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("`template` must be a string")?.to_string()),
        };
        let parallel = match obj.get("parallel") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_bool().ok_or("`parallel` must be a bool")?),
        };
        let portfolio = match obj.get("portfolio") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_bool().ok_or("`portfolio` must be a bool")?),
        };
        Ok(JobOptions {
            template,
            imm: get_num(obj, "imm")?,
            width: get_num(obj, "width")?,
            screen_width: get_num(obj, "screen_width")?,
            synth_input_bits: get_num(obj, "synth_input_bits")?,
            num_initial_inputs: get_num(obj, "num_initial_inputs")?,
            max_iters: get_num(obj, "max_iters")?,
            seed: get_num(obj, "seed")?,
            max_stages: get_num(obj, "max_stages")?,
            slots: get_num(obj, "slots")?,
            timeout_ms: get_num(obj, "timeout_ms")?,
            deadline_ms: get_num(obj, "deadline_ms")?,
            parallel,
            portfolio,
            budget_conflicts: get_num(obj, "budget_conflicts")?,
            budget_propagations: get_num(obj, "budget_propagations")?,
            budget_bytes: get_num(obj, "budget_bytes")?,
        })
    }

    /// Serialize back to the wire `options` object (only the fields that
    /// are set) — the inverse of [`JobOptions::from_json`], used by the
    /// job journal to make accepted jobs replayable across a restart.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = Vec::new();
        let mut num = |k: &str, v: Option<u64>| {
            if let Some(v) = v {
                pairs.push((k.to_string(), Json::from(v)));
            }
        };
        num("imm", self.imm.map(u64::from));
        num("width", self.width.map(u64::from));
        num("screen_width", self.screen_width.map(u64::from));
        num("synth_input_bits", self.synth_input_bits.map(u64::from));
        num(
            "num_initial_inputs",
            self.num_initial_inputs.map(|v| v as u64),
        );
        num("max_iters", self.max_iters.map(|v| v as u64));
        num("seed", self.seed);
        num("max_stages", self.max_stages.map(|v| v as u64));
        num("slots", self.slots.map(|v| v as u64));
        num("timeout_ms", self.timeout_ms);
        num("deadline_ms", self.deadline_ms);
        num("budget_conflicts", self.budget_conflicts);
        num("budget_propagations", self.budget_propagations);
        num("budget_bytes", self.budget_bytes);
        if let Some(t) = &self.template {
            pairs.push(("template".to_string(), Json::from(t.as_str())));
        }
        if let Some(p) = self.parallel {
            pairs.push(("parallel".to_string(), Json::Bool(p)));
        }
        if let Some(p) = self.portfolio {
            pairs.push(("portfolio".to_string(), Json::Bool(p)));
        }
        Json::Obj(pairs)
    }

    /// Materialize full [`CompilerOptions`], filling gaps from
    /// [`CompilerOptions::service_defaults`] — the single constructor the
    /// CLI builds from too, so the two paths cannot diverge.
    pub fn to_compiler_options(&self) -> Result<CompilerOptions, String> {
        let imm = self.imm.unwrap_or(CompilerOptions::SERVICE_IMM_BITS);
        let template = self
            .template
            .as_deref()
            .unwrap_or(CompilerOptions::SERVICE_TEMPLATE);
        let mut opts = CompilerOptions::service_defaults();
        opts.stateful = alu_template(template, imm)?;
        opts.stateless = StatelessAluSpec::banzai(imm);
        if let Some(w) = self.width {
            opts.cegis.verify_width = w;
        }
        if let Some(w) = self.screen_width {
            opts.cegis.screen_width = Some(w);
        }
        if let Some(b) = self.synth_input_bits {
            opts.cegis.synth_input_bits = b;
        }
        if let Some(n) = self.num_initial_inputs {
            opts.cegis.num_initial_inputs = n;
        }
        if let Some(n) = self.max_iters {
            opts.cegis.max_iters = n;
        }
        if let Some(s) = self.seed {
            opts.cegis.seed = s;
        }
        opts.cegis.budget = ResourceBudget {
            conflicts: self.budget_conflicts,
            propagations: self.budget_propagations,
            clause_bytes: self.budget_bytes,
        };
        if let Some(m) = self.max_stages {
            opts.max_stages = m;
        }
        opts.slots = self.slots;
        if let Some(t) = self.timeout_ms {
            opts.timeout = Some(std::time::Duration::from_millis(t));
        }
        opts.parallel = self.parallel.unwrap_or(false);
        opts.portfolio = self.portfolio.unwrap_or(false);
        Ok(opts)
    }
}

/// Parse one request line (convenience wrapper over [`parse_line`] that
/// drops the `id`).
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_line(line).request
}

fn decode_request(doc: &Json) -> Result<Request, String> {
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing `op` field")?;
    match op {
        "compile" | "poll" => {
            let program = doc
                .get("program")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{op} needs a `program` string"))?
                .to_string();
            let options = match doc.get("options") {
                None | Some(Json::Null) => JobOptions::default(),
                Some(o) => JobOptions::from_json(o)?,
            };
            Ok(if op == "poll" {
                Request::Poll { program, options }
            } else {
                Request::Compile {
                    program,
                    options,
                    trace: decode_trace_id(doc)?,
                    priority: decode_priority(doc)?,
                }
            })
        }
        "status" => Ok(Request::Status),
        "stats" => Ok(Request::Stats),
        "cache" => {
            let action = match doc.get("action").and_then(Json::as_str) {
                None | Some("stats") => CacheAction::Stats,
                Some("compact") => CacheAction::Compact,
                Some("clear") => CacheAction::Clear,
                Some(other) => return Err(format!("unknown cache action `{other}`")),
            };
            Ok(Request::Cache { action })
        }
        "shutdown" => {
            let abort = match doc.get("mode").and_then(Json::as_str) {
                None | Some("drain") => false,
                Some("abort") => true,
                Some(other) => return Err(format!("unknown shutdown mode `{other}`")),
            };
            Ok(Request::Shutdown { abort })
        }
        "trace" => {
            let trace =
                decode_trace_id(doc)?.ok_or("trace needs a `trace` id string".to_string())?;
            Ok(Request::Trace { trace })
        }
        "telemetry" => Ok(Request::Telemetry),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Highest queue priority a client may request.
pub const MAX_PRIORITY: u8 = 9;

fn decode_priority(doc: &Json) -> Result<u8, String> {
    let p: u8 = get_num(doc, "priority")?.unwrap_or(0);
    if p > MAX_PRIORITY {
        return Err(format!("`priority` must be 0..={MAX_PRIORITY}"));
    }
    Ok(p)
}

/// Longest trace id accepted from a client; longer ids are a
/// `bad_request`, so a hostile client cannot bloat the journal or the
/// span store with megabyte correlation tokens.
pub const MAX_TRACE_ID_LEN: usize = 128;

fn decode_trace_id(doc: &Json) -> Result<Option<String>, String> {
    match doc.get("trace") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let s = v.as_str().ok_or("`trace` must be a string")?;
            if s.is_empty() {
                return Err("`trace` must be non-empty".to_string());
            }
            if s.len() > MAX_TRACE_ID_LEN {
                return Err(format!("`trace` longer than {MAX_TRACE_ID_LEN} bytes"));
            }
            Ok(Some(s.to_string()))
        }
    }
}

/// Echo a job's trace id as a leading field of a response object (the
/// `id` echo from [`with_id`] still ends up first — the server applies
/// `with_trace` before `with_id`).
pub fn with_trace(response: Json, trace: &str) -> Json {
    match response {
        Json::Obj(mut pairs) => {
            pairs.insert(0, ("trace".to_string(), Json::from(trace)));
            Json::Obj(pairs)
        }
        other => other,
    }
}

/// Build a failure response line.
pub fn error_response(code: &str, message: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::from(code)),
        ("message", Json::from(message)),
    ])
}

/// Build a failure response carrying a `retry_after_ms` backoff hint —
/// used by brownout refusals so well-behaved clients pace their retries
/// to the server's estimate of when capacity frees up.
pub fn error_response_retry(code: &str, message: &str, retry_after_ms: u64) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::from(code)),
        ("message", Json::from(message)),
        ("retry_after_ms", Json::U64(retry_after_ms)),
    ])
}

/// Build the failure response for an infeasible verdict, carrying its
/// certification record. `certified` is the trust bit clients key on:
/// true means an in-process DRAT checker validated an UNSAT proof of
/// the deepest depth tried, so "cannot fit in k stages" is as
/// trustworthy as a shipped configuration. `proof` is the certificate
/// text when one was retained (re-checkable with `chipmunkc
/// check-proof`); `unchecked_reason` says why when it was not.
pub fn infeasible_response(message: &str, cert: &InfeasibleCert) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::from("infeasible")),
        ("message".to_string(), Json::from(message)),
        ("certified".to_string(), Json::from(cert.certified)),
        ("quarantined".to_string(), Json::from(cert.quarantined)),
        ("fresh_resolve".to_string(), Json::from(cert.fresh_resolve)),
        ("proof_lemmas".to_string(), Json::from(cert.lemmas)),
        ("proof_bytes".to_string(), Json::from(cert.proof_bytes)),
    ];
    if let Some(reason) = &cert.reason {
        pairs.push(("unchecked_reason".to_string(), Json::from(reason.as_str())));
    }
    if let Some(proof) = &cert.proof {
        pairs.push(("proof".to_string(), Json::from(proof.as_str())));
    }
    Json::Obj(pairs)
}

/// The error code a [`CodegenError`] maps to on the wire.
pub fn codegen_error_code(e: &CodegenError) -> &'static str {
    match e {
        CodegenError::TooLarge(_) => "too_large",
        CodegenError::Infeasible(_) => "infeasible",
        CodegenError::Timeout => "timeout",
        CodegenError::Internal(_) => "internal",
        CodegenError::InvalidOptions(_) => "bad_request",
        CodegenError::Uncertified(_) => "uncertified",
    }
}

/// Serialize a successful compilation: the decoded configuration in the
/// same shape as `chipmunkc compile --json`.
///
/// `fields` / `states` are the compiled program's name lists in index
/// order (see [`chipmunk::layout_names`]); they make the document
/// self-describing, which is what lets a cache hit be remapped to a
/// requester whose program numbers the same names differently
/// ([`remap_result`]).
pub fn result_doc(out: &CodegenSuccess, fields: &[String], states: &[String]) -> Json {
    let names = |ns: &[String]| Json::Arr(ns.iter().map(|n| Json::from(n.as_str())).collect());
    let nums = |vs: &[u64]| Json::Arr(vs.iter().map(|&v| Json::from(v)).collect());
    Json::obj([
        (
            "grid",
            Json::obj([
                ("stages", Json::from(out.grid.stages)),
                ("slots", Json::from(out.grid.slots)),
            ]),
        ),
        ("resources", out.resources.to_json()),
        ("fields", names(fields)),
        ("states", names(states)),
        (
            "field_to_container",
            Json::Arr(
                out.decoded
                    .field_to_container
                    .iter()
                    .map(|&c| Json::from(c))
                    .collect(),
            ),
        ),
        ("pipeline", out.decoded.pipeline.to_json()),
        // The CEGIS counterexamples that shaped this result, in the same
        // field/state index order as the name lists above. Certification
        // replays them on every later serve of this entry — they are the
        // inputs the program is known to be sensitive to.
        (
            "counterexamples",
            Json::Arr(
                out.counterexamples
                    .iter()
                    .map(|c| Json::obj([("fields", nums(&c.fields)), ("states", nums(&c.states))]))
                    .collect(),
            ),
        ),
        // Work gauges of the synthesis run that *produced* this document.
        // They travel with the cache entry, so a cached or remapped serve
        // reports what the result originally cost, not zero.
        (
            "stats",
            Json::obj([
                ("iterations", Json::from(out.stats.iterations as u64)),
                (
                    "counterexamples",
                    Json::from(out.stats.counterexamples as u64),
                ),
                ("synth_conflicts", Json::from(out.stats.synth_conflicts)),
                (
                    "synth_propagations",
                    Json::from(out.stats.synth_propagations),
                ),
                ("verify_conflicts", Json::from(out.stats.verify_conflicts)),
                (
                    "verify_propagations",
                    Json::from(out.stats.verify_propagations),
                ),
                ("clause_bytes", Json::from(out.stats.clause_bytes)),
                ("budget_trips", Json::from(out.stats.budget_trips)),
            ]),
        ),
    ])
}

fn str_arr<'a>(doc: &'a Json, key: &str) -> Option<Vec<&'a str>> {
    doc.get(key)?
        .as_arr()?
        .iter()
        .map(Json::as_str)
        .collect::<Option<Vec<_>>>()
}

/// Adapt a cached result document to a requester's own field numbering.
///
/// The cache key hashes the *canonicalized* program, which orders
/// operands by field **name** — so two submitters can share a key while
/// numbering fields differently (indices follow first use). The cached
/// `field_to_container` is in the producer's index space; serving it
/// verbatim would mis-wire the requester's fields into the wrong PHV
/// containers. This permutes it into the requester's index space by
/// matching names. The pipeline document itself needs no rewrite: it
/// lives in container space, which is absolute hardware state.
///
/// State order cannot differ between key-equal programs (declarations
/// print at the top of the canonical text in index order), and field name
/// *sets* cannot differ either — so any mismatch here means the entry is
/// not actually equivalent (legacy cache line or an FNV collision).
/// Returns `None` in that case; callers treat it as a miss and recompile.
pub fn remap_result(cached: &Json, fields: &[String], states: &[String]) -> Option<Json> {
    let cached_fields = str_arr(cached, "fields")?;
    let cached_states = str_arr(cached, "states")?;
    if cached_states.len() != states.len()
        || cached_states.iter().zip(states).any(|(a, b)| a != b)
        || cached_fields.len() != fields.len()
    {
        return None;
    }
    if cached_fields.iter().zip(fields).all(|(a, b)| a == b) {
        return Some(cached.clone());
    }
    let f2c = cached
        .get("field_to_container")?
        .as_arr()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<Vec<_>>>()?;
    if f2c.len() != cached_fields.len() {
        return None;
    }
    // requester index -> producer index, by name.
    let perm: Vec<usize> = fields
        .iter()
        .map(|name| cached_fields.iter().position(|c| c == name))
        .collect::<Option<_>>()?;
    let remapped: Vec<Json> = perm.iter().map(|&p| Json::from(f2c[p])).collect();
    let Json::Obj(pairs) = cached else {
        return None;
    };
    Some(Json::Obj(
        pairs
            .iter()
            .map(|(k, v)| {
                let v = match k.as_str() {
                    "fields" => Json::Arr(fields.iter().map(|n| Json::from(n.as_str())).collect()),
                    "field_to_container" => Json::Arr(remapped.clone()),
                    // Counterexample inputs are per-field values in the
                    // producer's index space; permute them like the field
                    // map (states cannot be reordered between key-equal
                    // programs). A malformed list becomes empty rather
                    // than being served producer-ordered — certification
                    // still runs its random sweep.
                    "counterexamples" => {
                        Json::Arr(remap_counterexamples(v, &perm).unwrap_or_default())
                    }
                    _ => v.clone(),
                };
                (k.clone(), v)
            })
            .collect(),
    ))
}

/// Permute each counterexample's `fields` array into the requester's
/// index space (`perm[i]` = producer index of the requester's field `i`).
fn remap_counterexamples(v: &Json, perm: &[usize]) -> Option<Vec<Json>> {
    v.as_arr()?
        .iter()
        .map(|cex| {
            let fields = cex.get("fields")?.as_arr()?;
            if fields.len() != perm.len() {
                return None;
            }
            let permuted: Vec<Json> = perm.iter().map(|&p| fields[p].clone()).collect();
            Some(Json::obj([
                ("fields", Json::Arr(permuted)),
                (
                    "states",
                    cex.get("states").cloned().unwrap_or(Json::Arr(vec![])),
                ),
            ]))
        })
        .collect()
}

/// A result document decoded back into the pieces certification needs.
/// Everything here came over the wire or off disk, so decoding is fully
/// defensive: any missing or ill-typed piece is an `Err`, never a panic.
pub struct WireResult {
    /// Grid depth the configuration targets.
    pub stages: usize,
    /// PHV containers / ALUs per stage.
    pub slots: usize,
    /// Container index per program field, requester index order.
    pub field_to_container: Vec<usize>,
    /// The hardware configuration.
    pub pipeline: PipelineConfig,
    /// Recorded CEGIS counterexamples (empty for legacy entries).
    pub counterexamples: Vec<PacketState>,
}

/// Decode a [`result_doc`]-shaped document (fresh, cached, or remapped)
/// for re-certification before it is served.
pub fn decode_result(doc: &Json) -> Result<WireResult, String> {
    let grid = doc.get("grid").ok_or("result has no `grid`")?;
    let dim = |k: &str| -> Result<usize, String> {
        grid.get(k)
            .and_then(Json::as_u64)
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| format!("grid has no usable `{k}`"))
    };
    let stages = dim("stages")?;
    let slots = dim("slots")?;
    let field_to_container = doc
        .get("field_to_container")
        .and_then(Json::as_arr)
        .ok_or("result has no `field_to_container` array")?
        .iter()
        .map(|v| v.as_u64().and_then(|c| usize::try_from(c).ok()))
        .collect::<Option<Vec<_>>>()
        .ok_or("`field_to_container` holds a non-index value")?;
    let pipeline =
        PipelineConfig::from_json(doc.get("pipeline").ok_or("result has no `pipeline`")?)
            .map_err(|e| format!("bad pipeline document: {e}"))?;
    let vals = |cex: &Json, k: &str| -> Result<Vec<u64>, String> {
        cex.get(k)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("counterexample has no `{k}` array"))?
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| format!("counterexample `{k}` holds a non-integer"))
    };
    let counterexamples = match doc.get("counterexamples").and_then(Json::as_arr) {
        None => Vec::new(), // legacy entry: the random sweep still runs
        Some(arr) => arr
            .iter()
            .map(|cex| {
                Ok(PacketState {
                    fields: vals(cex, "fields")?,
                    states: vals(cex, "states")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    Ok(WireResult {
        stages,
        slots,
        field_to_container,
        pipeline,
        counterexamples,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_compile_request() {
        let line = r#"{"op":"compile","program":"pkt.x = pkt.a;","options":{"template":"raw","imm":3,"width":6,"max_stages":2,"timeout_ms":5000,"parallel":true}}"#;
        match parse_request(line).unwrap() {
            Request::Compile {
                program,
                options,
                trace,
                priority,
            } => {
                assert_eq!(program, "pkt.x = pkt.a;");
                assert_eq!(trace, None);
                assert_eq!(priority, 0);
                assert_eq!(options.template.as_deref(), Some("raw"));
                let co = options.to_compiler_options().unwrap();
                assert_eq!(co.cegis.verify_width, 6);
                assert_eq!(co.max_stages, 2);
                assert_eq!(co.timeout, Some(std::time::Duration::from_secs(5)));
                assert!(co.parallel);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_priority_and_portfolio() {
        let line = r#"{"op":"compile","program":"pkt.x = pkt.a;","priority":7,"options":{"portfolio":true}}"#;
        match parse_request(line).unwrap() {
            Request::Compile {
                options, priority, ..
            } => {
                assert_eq!(priority, 7);
                assert_eq!(options.portfolio, Some(true));
                let co = options.to_compiler_options().unwrap();
                assert!(co.portfolio);
                // portfolio survives the journal round trip.
                let back = JobOptions::from_json(&options.to_json()).unwrap();
                assert_eq!(back.portfolio, Some(true));
            }
            other => panic!("wrong request: {other:?}"),
        }
        // Out-of-range or ill-typed priorities are bad requests.
        for bad in [
            r#"{"op":"compile","program":"x","priority":10}"#,
            r#"{"op":"compile","program":"x","priority":-1}"#,
            r#"{"op":"compile","program":"x","priority":"high"}"#,
            r#"{"op":"compile","program":"x","options":{"portfolio":3}}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn defaults_match_the_shared_service_constructor() {
        // A bare options object must materialize exactly the shared
        // service defaults — the anti-divergence contract.
        let co = JobOptions::default().to_compiler_options().unwrap();
        let want = CompilerOptions::service_defaults();
        assert_eq!(format!("{co:?}"), format!("{want:?}"));
    }

    #[test]
    fn parses_control_requests() {
        assert!(matches!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::Status
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown { abort: false }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown","mode":"abort"}"#).unwrap(),
            Request::Shutdown { abort: true }
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            r#"{"program":"x"}"#,
            r#"{"op":"fry"}"#,
            r#"{"op":"compile"}"#,
            r#"{"op":"compile","program":"x","options":{"imm":-1}}"#,
            r#"{"op":"compile","program":"x","options":{"template":7}}"#,
            r#"{"op":"shutdown","mode":"later"}"#,
            r#"{"op":"cache","action":"defrost"}"#,
            r#"{"op":"status","id":[1,2]}"#,
            r#"{"op":"compile","program":"x","trace":7}"#,
            r#"{"op":"compile","program":"x","trace":""}"#,
            r#"{"op":"trace"}"#,
            r#"{"op":"trace","trace":42}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn trace_ids_parse_echo_and_bound() {
        // A compile may carry a trace id; the new ops decode too.
        match parse_request(r#"{"op":"compile","program":"x","trace":"t-1"}"#).unwrap() {
            Request::Compile { trace, .. } => assert_eq!(trace.as_deref(), Some("t-1")),
            other => panic!("wrong request: {other:?}"),
        }
        match parse_request(r#"{"op":"trace","trace":"t-1"}"#).unwrap() {
            Request::Trace { trace } => assert_eq!(trace, "t-1"),
            other => panic!("wrong request: {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"op":"telemetry"}"#).unwrap(),
            Request::Telemetry
        ));
        // Oversized ids are rejected, not truncated.
        let long = format!(
            r#"{{"op":"compile","program":"x","trace":"{}"}}"#,
            "a".repeat(MAX_TRACE_ID_LEN + 1)
        );
        assert!(parse_request(&long).is_err());
        // with_trace prepends the echo; with_id applied after still wins
        // the first position.
        let resp = with_trace(Json::obj([("ok", Json::Bool(true))]), "t-9");
        let resp = with_id(resp, Some(Json::from(3u64)));
        assert_eq!(resp.to_compact(), r#"{"id":3,"trace":"t-9","ok":true}"#);
    }

    #[test]
    fn parses_cache_requests() {
        for (line, want) in [
            (r#"{"op":"cache"}"#, CacheAction::Stats),
            (r#"{"op":"cache","action":"stats"}"#, CacheAction::Stats),
            (r#"{"op":"cache","action":"compact"}"#, CacheAction::Compact),
            (r#"{"op":"cache","action":"clear"}"#, CacheAction::Clear),
        ] {
            match parse_request(line).unwrap() {
                Request::Cache { action } => assert_eq!(action, want, "{line}"),
                other => panic!("wrong request for {line}: {other:?}"),
            }
        }
    }

    #[test]
    fn ids_are_extracted_and_echoed() {
        // String and integer ids survive; a missing or null id is absent.
        let inc = parse_line(r#"{"op":"status","id":"job-7"}"#);
        assert_eq!(inc.id, Some(Json::from("job-7")));
        assert!(matches!(inc.request, Ok(Request::Status)));
        let inc = parse_line(r#"{"op":"stats","id":42}"#);
        assert_eq!(inc.id, Some(Json::from(42u64)));
        let inc = parse_line(r#"{"op":"stats","id":null}"#);
        assert_eq!(inc.id, None);

        // The id is recovered even when the request itself is bad, so the
        // error can be matched to its request.
        let inc = parse_line(r#"{"op":"fry","id":9}"#);
        assert_eq!(inc.id, Some(Json::from(9u64)));
        assert!(inc.request.is_err());

        // with_id prepends the echo; no id leaves the response untouched.
        let resp = with_id(
            Json::obj([("ok", Json::Bool(true))]),
            Some(Json::from(9u64)),
        );
        assert_eq!(resp.get("id"), Some(&Json::from(9u64)));
        assert_eq!(resp.to_compact(), r#"{"id":9,"ok":true}"#);
        let bare = with_id(Json::obj([("ok", Json::Bool(true))]), None);
        assert_eq!(bare.get("id"), None);
    }

    fn cached_doc(fields: &[&str], states: &[&str], f2c: &[u64]) -> Json {
        Json::obj([
            ("grid", Json::obj([("stages", Json::from(1u64))])),
            (
                "fields",
                Json::Arr(fields.iter().map(|&n| Json::from(n)).collect()),
            ),
            (
                "states",
                Json::Arr(states.iter().map(|&n| Json::from(n)).collect()),
            ),
            (
                "field_to_container",
                Json::Arr(f2c.iter().map(|&c| Json::from(c)).collect()),
            ),
            ("pipeline", Json::obj([("stages", Json::Arr(vec![]))])),
        ])
    }

    fn names(ns: &[&str]) -> Vec<String> {
        ns.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn remap_is_identity_for_matching_orders() {
        let doc = cached_doc(&["x", "a", "b"], &["s"], &[0, 1, 2]);
        let out = remap_result(&doc, &names(&["x", "a", "b"]), &names(&["s"])).unwrap();
        assert_eq!(out, doc);
    }

    #[test]
    fn remap_permutes_field_to_container_by_name() {
        // Producer numbered x,b,a,y (first use in `pkt.x = pkt.b | pkt.a;
        // pkt.y = pkt.a;`); canonical mode pinned field i to container i.
        let doc = cached_doc(&["x", "b", "a", "y"], &[], &[0, 1, 2, 3]);
        // Requester submitted the commuted form: numbering x,a,b,y.
        let out = remap_result(&doc, &names(&["x", "a", "b", "y"]), &names(&[])).unwrap();
        let f2c: Vec<u64> = out
            .get("field_to_container")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect();
        // Requester's a (their index 1) lives where the producer put a
        // (container 2), and vice versa for b.
        assert_eq!(f2c, [0, 2, 1, 3]);
        let fields: Vec<&str> = out
            .get("fields")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap())
            .collect();
        assert_eq!(fields, ["x", "a", "b", "y"]);
        // Container-space sections pass through untouched.
        assert_eq!(out.get("pipeline"), doc.get("pipeline"));
        assert_eq!(out.get("grid"), doc.get("grid"));
    }

    #[test]
    fn remap_rejects_non_equivalent_entries() {
        let doc = cached_doc(&["x", "a"], &["s"], &[0, 1]);
        // Different name set (collision or corruption): miss.
        assert!(remap_result(&doc, &names(&["x", "z"]), &names(&["s"])).is_none());
        // Different field count: miss.
        assert!(remap_result(&doc, &names(&["x", "a", "b"]), &names(&["s"])).is_none());
        // Different state order: miss.
        assert!(remap_result(&doc, &names(&["x", "a"]), &names(&["t"])).is_none());
        // Legacy entry without name lists: miss.
        let legacy = Json::obj([(
            "field_to_container",
            Json::Arr(vec![Json::from(0u64), Json::from(1u64)]),
        )]);
        assert!(remap_result(&legacy, &names(&["x", "a"]), &names(&[])).is_none());
    }

    #[test]
    fn unknown_template_is_a_bad_request() {
        let o = JobOptions {
            template: Some("quantum".into()),
            ..JobOptions::default()
        };
        assert!(o.to_compiler_options().is_err());
    }

    /// Tiny deterministic generator for the property tests below.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n.max(1) as u64) as usize
        }

        /// Fisher–Yates permutation of `0..n`.
        fn permutation(&mut self, n: usize) -> Vec<usize> {
            let mut p: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                p.swap(i, self.below(i + 1));
            }
            p
        }
    }

    /// A producer-side result document with `k` fields, a random field
    /// map, and random counterexamples — the parts remapping touches.
    fn random_doc(rng: &mut Lcg, field_names: &[String], cexes: usize) -> Json {
        let k = field_names.len();
        let spare = rng.below(3);
        let f2c = rng.permutation(k.max(1) + spare); // slots ≥ fields
        let cex = |rng: &mut Lcg| {
            Json::obj([
                (
                    "fields",
                    Json::Arr((0..k).map(|_| Json::from(rng.next() % 64)).collect()),
                ),
                ("states", Json::Arr(vec![Json::from(rng.next() % 64)])),
            ])
        };
        Json::obj([
            ("grid", Json::obj([("stages", Json::from(1u64))])),
            (
                "fields",
                Json::Arr(field_names.iter().map(|n| Json::from(n.as_str())).collect()),
            ),
            ("states", Json::Arr(vec![Json::from("s")])),
            (
                "field_to_container",
                Json::Arr(f2c.iter().take(k).map(|&c| Json::from(c)).collect()),
            ),
            ("pipeline", Json::obj([("stages", Json::Arr(vec![]))])),
            (
                "counterexamples",
                Json::Arr((0..cexes).map(|_| cex(rng)).collect()),
            ),
        ])
    }

    fn u64s(doc: &Json, key: &str) -> Vec<u64> {
        doc.get(key)
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_u64().unwrap())
            .collect()
    }

    /// Property: for a random field permutation, remapping producer →
    /// requester → producer is the identity, the permuted field map and
    /// counterexamples satisfy `out[i] == orig[perm[i]]`, and states are
    /// never reordered.
    #[test]
    fn remap_round_trips_under_random_permutations() {
        let mut rng = Lcg(0x5eed_2026_0807);
        for case in 0..200 {
            let k = 1 + rng.below(7);
            let producer: Vec<String> = (0..k).map(|i| format!("f{i}")).collect();
            let cexes = rng.below(4);
            let doc = random_doc(&mut rng, &producer, cexes);
            // perm[i] = producer index of the requester's field i.
            let perm = rng.permutation(k);
            let requester: Vec<String> = perm.iter().map(|&p| producer[p].clone()).collect();
            let states = vec!["s".to_string()];

            let out = remap_result(&doc, &requester, &states)
                .unwrap_or_else(|| panic!("case {case}: equivalent doc must remap"));
            // Field map: requester's field i lands in the container the
            // producer assigned to the same-named field.
            let f2c_in = u64s(&doc, "field_to_container");
            let f2c_out = u64s(&out, "field_to_container");
            for i in 0..k {
                assert_eq!(f2c_out[i], f2c_in[perm[i]], "case {case} field {i}");
            }
            // Counterexamples: per-field values follow the same
            // permutation; state values are untouched.
            let cex_in = doc.get("counterexamples").unwrap().as_arr().unwrap();
            let cex_out = out.get("counterexamples").unwrap().as_arr().unwrap();
            assert_eq!(cex_in.len(), cex_out.len(), "case {case}");
            for (a, b) in cex_in.iter().zip(cex_out) {
                let (fa, fb) = (u64s(a, "fields"), u64s(b, "fields"));
                for i in 0..k {
                    assert_eq!(fb[i], fa[perm[i]], "case {case} cex field {i}");
                }
                assert_eq!(u64s(a, "states"), u64s(b, "states"), "case {case}");
            }
            // Round trip: remapping back to the producer's ordering
            // reproduces the original document exactly.
            let back = remap_result(&out, &producer, &states)
                .unwrap_or_else(|| panic!("case {case}: round trip must remap"));
            assert_eq!(back, doc, "case {case}: round trip is not the identity");
        }
    }

    /// Property: a requester whose name set differs (renamed, missing, or
    /// extra field) is a miss, never a mis-remap.
    #[test]
    fn remap_refuses_random_non_equivalent_name_sets() {
        let mut rng = Lcg(0xbad_5eed);
        for case in 0..100 {
            let k = 2 + rng.below(6);
            let producer: Vec<String> = (0..k).map(|i| format!("f{i}")).collect();
            let doc = random_doc(&mut rng, &producer, 1);
            let states = vec!["s".to_string()];
            let mut requester = producer.clone();
            match case % 3 {
                0 => requester[rng.below(k)] = "zz".to_string(), // renamed
                1 => {
                    requester.truncate(k - 1); // missing
                }
                _ => requester.push("extra".to_string()), // extra
            }
            assert!(
                remap_result(&doc, &requester, &states).is_none(),
                "case {case}: non-equivalent names must miss"
            );
        }
    }

    /// A malformed counterexample list (wrong arity) degrades to an empty
    /// list on remap — never served producer-ordered.
    #[test]
    fn malformed_counterexamples_degrade_to_empty_on_remap() {
        let producer = names(&["a", "b"]);
        let mut doc = random_doc(&mut Lcg(1), &producer, 0);
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "counterexamples" {
                    *v = Json::Arr(vec![Json::obj([
                        ("fields", Json::Arr(vec![Json::from(1u64)])), // arity 1 != 2
                        ("states", Json::Arr(vec![])),
                    ])]);
                }
            }
        }
        let out = remap_result(&doc, &names(&["b", "a"]), &names(&["s"])).unwrap();
        assert_eq!(
            out.get("counterexamples"),
            Some(&Json::Arr(vec![])),
            "malformed counterexamples must be dropped: {out}"
        );
    }
}
