//! Daemon telemetry: rolling latency histograms, solver gauges, and a
//! zero-dependency Prometheus text-exposition endpoint.
//!
//! The daemon records one sample per job into a fixed grid of
//! log-bucketed histograms — stage × outcome × spec family — using the
//! same power-of-two bucketing as [`chipmunk_trace::metrics`], so
//! percentile estimates here carry the same guarantee: monotone in `p`
//! and within one bucket of the exact sample quantile.
//!
//! Labels:
//!
//! - **stage** — which part of a job's life the sample times:
//!   `queue_wait` (accepted → popped by a worker), `compile` (the
//!   synthesis call), `certify` (serve-side certification of the outgoing
//!   document), `remap` (name-remapping a cached document onto the
//!   requester's layout), `e2e` (accepted → answer queued).
//! - **outcome** — `fresh` (compiled by a worker), `cached` (served from
//!   the cache with the requester's own layout), `remapped` (served from
//!   a twin's cache entry under different field names), `failed` (any
//!   error answer), `cancelled` (a portfolio loser stopped because a
//!   sibling strategy won — per plan step, never a job answer).
//! - **family** — `stateless` (the program touches packet fields only) or
//!   `stateful` (it reads or writes register state).
//! - **strategy** — which synthesis strategy produced the sample:
//!   `canonical` (canonical allocation), `restricted` (opcode-restricted
//!   ALU), `full` (full ALU), or `na` when no single strategy applies
//!   (queue wait, cache serves, failures without a winner).
//!
//! The exposition endpoint is a deliberately tiny hand-rolled HTTP/1.1
//! listener (`GET /metrics` → `text/plain; version=0.0.4`); everything
//! else is 404. It runs on its own thread, degrades to stats-only when
//! the socket cannot be bound (the daemon keeps serving — losing
//! observability must never cost availability), and is exercised under
//! fault injection by the `metrics_io` chaos kind.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use chipmunk_trace::json::Json;
use chipmunk_trace::metrics::percentile_of;

use crate::faults::{self, FaultKind};

/// Number of log2 buckets, matching `chipmunk_trace::metrics::Histogram`:
/// bucket 0 holds zero, bucket `b` holds values with `b` significant bits.
const NUM_BUCKETS: usize = 65;

/// The quantiles every summary exposes.
pub const QUANTILES: [(f64, &str); 3] = [(50.0, "0.5"), (95.0, "0.95"), (99.0, "0.99")];

/// Which part of a job's life a latency sample times.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stage {
    /// Accepted (journaled/enqueued) until a worker pops the job.
    QueueWait,
    /// The synthesis call itself.
    Compile,
    /// Serve-side certification of an outgoing document.
    Certify,
    /// Name-remapping a cached document onto the requester's layout.
    Remap,
    /// Accepted until the answer is queued to the connection writer.
    EndToEnd,
}

/// All stages, in exposition order.
pub const STAGES: [Stage; 5] = [
    Stage::QueueWait,
    Stage::Compile,
    Stage::Certify,
    Stage::Remap,
    Stage::EndToEnd,
];

impl Stage {
    /// The `stage` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Compile => "compile",
            Stage::Certify => "certify",
            Stage::Remap => "remap",
            Stage::EndToEnd => "e2e",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::Compile => 1,
            Stage::Certify => 2,
            Stage::Remap => 3,
            Stage::EndToEnd => 4,
        }
    }
}

/// How the job was answered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Compiled from scratch by a worker.
    Fresh,
    /// Served from the cache with the requester's own field layout.
    Cached,
    /// Served from a twin's cache entry under different field names.
    Remapped,
    /// Any error answer (uncertified, typed failure, panic).
    Failed,
    /// A racing portfolio step stopped because a sibling won. Recorded
    /// per cancelled *step*, never as a job answer — a loser is spent
    /// search, not a failure, and must not pollute the failure latency
    /// distribution.
    Cancelled,
}

/// All outcomes, in exposition order.
pub const OUTCOMES: [Outcome; 5] = [
    Outcome::Fresh,
    Outcome::Cached,
    Outcome::Remapped,
    Outcome::Failed,
    Outcome::Cancelled,
];

impl Outcome {
    /// The `outcome` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Fresh => "fresh",
            Outcome::Cached => "cached",
            Outcome::Remapped => "remapped",
            Outcome::Failed => "failed",
            Outcome::Cancelled => "cancelled",
        }
    }

    fn index(self) -> usize {
        match self {
            Outcome::Fresh => 0,
            Outcome::Cached => 1,
            Outcome::Remapped => 2,
            Outcome::Failed => 3,
            Outcome::Cancelled => 4,
        }
    }
}

/// Whether the submitted program touches register state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Family {
    /// Packet fields only.
    Stateless,
    /// Reads or writes stateful registers.
    Stateful,
}

/// Both families, in exposition order.
pub const FAMILIES: [Family; 2] = [Family::Stateless, Family::Stateful];

impl Family {
    /// The `family` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Family::Stateless => "stateless",
            Family::Stateful => "stateful",
        }
    }

    fn index(self) -> usize {
        match self {
            Family::Stateless => 0,
            Family::Stateful => 1,
        }
    }
}

/// Which synthesis strategy a latency sample is attributed to. Mirrors
/// `chipmunk::plan::Strategy` (the conversion lives in the server, so the
/// metrics module stays self-contained), plus `Na` for samples no single
/// strategy produced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strat {
    /// Canonical field-to-container allocation.
    Canonical,
    /// Opcode-restricted (arithmetic-only) ALU grammar.
    Restricted,
    /// The full ALU grammar with free allocation.
    Full,
    /// No single strategy applies (queue wait, cache serves, failures).
    Na,
}

/// All strategy labels, in exposition order.
pub const STRATS: [Strat; 4] = [Strat::Canonical, Strat::Restricted, Strat::Full, Strat::Na];

impl Strat {
    /// The `strategy` label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Strat::Canonical => "canonical",
            Strat::Restricted => "restricted",
            Strat::Full => "full",
            Strat::Na => "na",
        }
    }

    fn index(self) -> usize {
        match self {
            Strat::Canonical => 0,
            Strat::Restricted => 1,
            Strat::Full => 2,
            Strat::Na => 3,
        }
    }
}

/// One labeled histogram cell: log2 buckets plus an exact sum, all
/// lock-free (a scrape may tear between buckets and sum, which is the
/// usual Prometheus contract for concurrently updated summaries).
struct Cell {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Cell {
    const fn new() -> Cell {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Cell {
            buckets: [ZERO; NUM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ([u64; NUM_BUCKETS], u64) {
        let mut b = [0u64; NUM_BUCKETS];
        for (slot, bucket) in b.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        (b, self.sum.load(Ordering::Relaxed))
    }
}

/// The daemon's rolling telemetry: latency histograms per
/// (stage, outcome, family, strategy) plus cumulative solver-cost gauges.
pub struct Telemetry {
    cells: Vec<Cell>, // row-major over (stage, outcome, family, strategy)
    /// Synthesis-solver SAT conflicts across all fresh compiles.
    pub solver_conflicts: AtomicU64,
    /// Synthesis-solver SAT propagations across all fresh compiles.
    pub solver_propagations: AtomicU64,
    /// Verification-solver SAT conflicts across all fresh compiles.
    pub solver_verify_conflicts: AtomicU64,
    /// Verification-solver SAT propagations across all fresh compiles.
    pub solver_verify_propagations: AtomicU64,
    /// Learnt-clause bytes held at the end of each fresh compile, summed.
    pub solver_clause_bytes: AtomicU64,
    /// Solver resource-budget ceilings hit across all fresh compiles.
    pub solver_budget_trips: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An empty telemetry grid.
    pub fn new() -> Telemetry {
        Telemetry {
            cells: (0..STAGES.len() * OUTCOMES.len() * FAMILIES.len() * STRATS.len())
                .map(|_| Cell::new())
                .collect(),
            solver_conflicts: AtomicU64::new(0),
            solver_propagations: AtomicU64::new(0),
            solver_verify_conflicts: AtomicU64::new(0),
            solver_verify_propagations: AtomicU64::new(0),
            solver_clause_bytes: AtomicU64::new(0),
            solver_budget_trips: AtomicU64::new(0),
        }
    }

    fn cell(&self, stage: Stage, outcome: Outcome, family: Family, strat: Strat) -> &Cell {
        &self.cells[stage.index() * (OUTCOMES.len() * FAMILIES.len() * STRATS.len())
            + outcome.index() * (FAMILIES.len() * STRATS.len())
            + family.index() * STRATS.len()
            + strat.index()]
    }

    /// Record one latency sample, in microseconds, with no strategy
    /// attribution (`strategy="na"`).
    pub fn record(&self, stage: Stage, outcome: Outcome, family: Family, micros: u64) {
        self.record_strat(stage, outcome, family, Strat::Na, micros);
    }

    /// Record one strategy-attributed latency sample, in microseconds.
    pub fn record_strat(
        &self,
        stage: Stage,
        outcome: Outcome,
        family: Family,
        strat: Strat,
        micros: u64,
    ) {
        self.cell(stage, outcome, family, strat).record(micros);
    }

    /// Fold one fresh compile's solver cost into the gauges, split into
    /// synthesis-side and verification-side SAT work.
    #[allow(clippy::too_many_arguments)]
    pub fn record_solver(
        &self,
        conflicts: u64,
        propagations: u64,
        verify_conflicts: u64,
        verify_propagations: u64,
        clause_bytes: u64,
        trips: u64,
    ) {
        self.solver_conflicts
            .fetch_add(conflicts, Ordering::Relaxed);
        self.solver_propagations
            .fetch_add(propagations, Ordering::Relaxed);
        self.solver_verify_conflicts
            .fetch_add(verify_conflicts, Ordering::Relaxed);
        self.solver_verify_propagations
            .fetch_add(verify_propagations, Ordering::Relaxed);
        self.solver_clause_bytes
            .fetch_add(clause_bytes, Ordering::Relaxed);
        self.solver_budget_trips.fetch_add(trips, Ordering::Relaxed);
    }

    /// Merge every (outcome, family, strategy) cell of `stage` into one
    /// bucket vector (log2 buckets merge by addition). Returns
    /// `(buckets, sum, count)`.
    pub fn stage_merged(&self, stage: Stage) -> ([u64; NUM_BUCKETS], u64, u64) {
        let mut buckets = [0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        for outcome in OUTCOMES {
            for family in FAMILIES {
                for strat in STRATS {
                    let (b, s) = self.cell(stage, outcome, family, strat).snapshot();
                    for (acc, v) in buckets.iter_mut().zip(b.iter()) {
                        *acc += v;
                    }
                    sum = sum.saturating_add(s);
                }
            }
        }
        let count = buckets.iter().sum();
        (buckets, sum, count)
    }

    /// Samples recorded for one (stage, outcome) pair across families and
    /// strategies.
    pub fn count(&self, stage: Stage, outcome: Outcome) -> u64 {
        let mut n = 0u64;
        for family in FAMILIES {
            for strat in STRATS {
                n += self
                    .cell(stage, outcome, family, strat)
                    .snapshot()
                    .0
                    .iter()
                    .sum::<u64>();
            }
        }
        n
    }

    /// The stage percentiles as a JSON object (`p50_us`/`p95_us`/`p99_us`
    /// upper-bound estimates plus `count` and `sum_us`), for the
    /// `telemetry` protocol op. `Json::Null` when the stage is empty.
    pub fn stage_summary(&self, stage: Stage) -> Json {
        let (buckets, sum, count) = self.stage_merged(stage);
        if count == 0 {
            return Json::Null;
        }
        let q = |p: f64| Json::from(percentile_of(&buckets, p).unwrap_or(0));
        Json::obj([
            ("count", Json::from(count)),
            ("sum_us", Json::from(sum)),
            ("p50_us", q(50.0)),
            ("p95_us", q(95.0)),
            ("p99_us", q(99.0)),
        ])
    }
}

/// A sliding window of timestamped samples for the brownout detector.
///
/// The [`Telemetry`] histograms are *cumulative* — their percentiles can
/// only converge, never fall back, so a p95 computed from them would
/// keep the daemon in brownout forever after one bad burst. Brownout
/// entry/exit must react to *recent* load only, so queue-wait samples
/// also land here: a fixed-capacity ring where anything older than the
/// horizon is expired at both record and query time. An idle daemon's
/// window drains to empty, which the state machine reads as "no
/// pressure" — the deterministic exit path the soak test relies on.
pub struct RollingWindow {
    horizon: Duration,
    capacity: usize,
    samples: Mutex<VecDeque<(Instant, u64)>>,
}

impl RollingWindow {
    /// A window keeping at most `capacity` samples, each for `horizon`.
    pub fn new(horizon: Duration, capacity: usize) -> RollingWindow {
        RollingWindow {
            horizon,
            capacity: capacity.max(1),
            samples: Mutex::new(VecDeque::new()),
        }
    }

    /// Record a sample now.
    pub fn record(&self, value: u64) {
        self.record_at(Instant::now(), value);
    }

    /// Record a sample with an explicit timestamp (tests inject synthetic
    /// clocks; production code uses [`RollingWindow::record`]).
    pub fn record_at(&self, now: Instant, value: u64) {
        let mut g = self.samples.lock().unwrap_or_else(|p| p.into_inner());
        while g
            .front()
            .is_some_and(|&(t, _)| now.saturating_duration_since(t) > self.horizon)
        {
            g.pop_front();
        }
        if g.len() == self.capacity {
            g.pop_front();
        }
        g.push_back((now, value));
    }

    /// Nearest-rank percentile over the live (unexpired) samples, or
    /// `None` when the window is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.percentile_at(Instant::now(), p)
    }

    /// [`RollingWindow::percentile`] with an explicit "now".
    pub fn percentile_at(&self, now: Instant, p: f64) -> Option<u64> {
        let mut live = self.live_at(now);
        if live.is_empty() {
            return None;
        }
        live.sort_unstable();
        let rank = ((p / 100.0) * live.len() as f64).ceil() as usize;
        Some(live[rank.clamp(1, live.len()) - 1])
    }

    /// Number of live (unexpired) samples.
    pub fn len(&self) -> usize {
        self.live_at(Instant::now()).len()
    }

    /// Is the window empty of live samples?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn live_at(&self, now: Instant) -> Vec<u64> {
        let g = self.samples.lock().unwrap_or_else(|p| p.into_inner());
        g.iter()
            .filter(|&&(t, _)| now.saturating_duration_since(t) <= self.horizon)
            .map(|&(_, v)| v)
            .collect()
    }
}

/// Escape a Prometheus label value: backslash, double quote, newline.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render the full text exposition (format version 0.0.4): the latency
/// summaries (empty cells are skipped), the solver gauges, and the
/// caller-supplied counters and gauges (serve stats, cache hit rate).
/// Output order is deterministic — fixed iteration order, no maps.
pub fn render_exposition(
    telemetry: &Telemetry,
    counters: &[(&str, u64)],
    gauges: &[(&str, f64)],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# HELP chipmunk_serve_latency_us Per-stage job latency in microseconds.\n");
    out.push_str("# TYPE chipmunk_serve_latency_us summary\n");
    for stage in STAGES {
        for outcome in OUTCOMES {
            for family in FAMILIES {
                for strat in STRATS {
                    let (buckets, sum) = telemetry.cell(stage, outcome, family, strat).snapshot();
                    let count: u64 = buckets.iter().sum();
                    if count == 0 {
                        continue;
                    }
                    let labels = format!(
                        "stage=\"{}\",outcome=\"{}\",family=\"{}\",strategy=\"{}\"",
                        escape_label(stage.as_str()),
                        escape_label(outcome.as_str()),
                        escape_label(family.as_str()),
                        escape_label(strat.as_str()),
                    );
                    for (p, q) in QUANTILES {
                        let est = percentile_of(&buckets, p).unwrap_or(0);
                        out.push_str(&format!(
                            "chipmunk_serve_latency_us{{{labels},quantile=\"{q}\"}} {est}\n"
                        ));
                    }
                    out.push_str(&format!(
                        "chipmunk_serve_latency_us_sum{{{labels}}} {sum}\n"
                    ));
                    out.push_str(&format!(
                        "chipmunk_serve_latency_us_count{{{labels}}} {count}\n"
                    ));
                }
            }
        }
    }
    let solver: [(&str, &AtomicU64); 6] = [
        ("conflicts", &telemetry.solver_conflicts),
        ("propagations", &telemetry.solver_propagations),
        ("verify_conflicts", &telemetry.solver_verify_conflicts),
        ("verify_propagations", &telemetry.solver_verify_propagations),
        ("clause_bytes", &telemetry.solver_clause_bytes),
        ("budget_trips", &telemetry.solver_budget_trips),
    ];
    for (name, v) in solver {
        out.push_str(&format!(
            "# TYPE chipmunk_serve_solver_{name}_total counter\n\
             chipmunk_serve_solver_{name}_total {}\n",
            v.load(Ordering::Relaxed)
        ));
    }
    for (name, v) in counters {
        out.push_str(&format!(
            "# TYPE chipmunk_serve_{name}_total counter\nchipmunk_serve_{name}_total {v}\n"
        ));
    }
    for (name, v) in gauges {
        out.push_str(&format!(
            "# TYPE chipmunk_serve_{name} gauge\nchipmunk_serve_{name} {v}\n"
        ));
    }
    out
}

/// A bucket-merged summary block for ad-hoc renderers (the `top` CLI).
/// Returns `(p50, p95, p99)` upper-bound estimates, or `None` when empty.
pub fn merged_percentiles(buckets: &[u64]) -> Option<(u64, u64, u64)> {
    Some((
        percentile_of(buckets, 50.0)?,
        percentile_of(buckets, 95.0)?,
        percentile_of(buckets, 99.0)?,
    ))
}

/// The running metrics endpoint: its bound address plus the thread to
/// join. Created by [`serve_exposition`].
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

impl MetricsServer {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the listener thread to exit and wake it out of `accept`.
    pub fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until the listener thread has exited ([`begin_shutdown`]
    /// first, or this blocks on the next `accept`).
    ///
    /// [`begin_shutdown`]: MetricsServer::begin_shutdown
    pub fn join(self) {
        let _ = self.handle.join();
    }
}

/// Bind `addr` and serve `GET /metrics` from `render` on a dedicated
/// thread. A bind failure is returned to the caller, who degrades to
/// stats-only; the `metrics_io` fault kind injects one here so chaos
/// tests can prove that degradation. Per-connection I/O errors just drop
/// that connection.
pub fn serve_exposition(
    addr: &str,
    render: Arc<dyn Fn() -> String + Send + Sync>,
) -> std::io::Result<MetricsServer> {
    if faults::armed() && faults::fired(FaultKind::MetricsIo) {
        return Err(std::io::Error::other(
            "injected fault: metrics socket broken",
        ));
    }
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let handle = std::thread::Builder::new()
        .name("chipmunk-metrics".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = serve_one(stream, &render);
            }
        })?;
    Ok(MetricsServer {
        addr: bound,
        stop,
        handle,
    })
}

/// Answer one HTTP connection: read the request head, route on the
/// request line. Kept synchronous on the listener thread — a scrape is a
/// few kilobytes and the endpoint is not in any serving path.
fn serve_one(
    mut stream: TcpStream,
    render: &Arc<dyn Fn() -> String + Send + Sync>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let request_line = head
        .split(|&b| b == b'\r' || b == b'\n')
        .next()
        .unwrap_or(b"");
    let request_line = String::from_utf8_lossy(request_line);
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) =
        if method == "GET" && path.split('?').next() == Some("/metrics") {
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render(),
            )
        } else {
            (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found: try GET /metrics\n".to_string(),
            )
        };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chipmunk_trace::metrics::bucket_upper_bound;

    #[test]
    fn label_escaping_covers_the_three_special_characters() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("line\nbreak"), "line\\nbreak");
    }

    /// Golden exposition: a fixed set of samples renders to an exact,
    /// byte-stable document. Guards both the format and the deterministic
    /// output order the CI scrape check relies on.
    #[test]
    fn exposition_format_is_byte_stable() {
        let t = Telemetry::new();
        // Three e2e/fresh/stateless samples in distinct buckets.
        t.record(Stage::EndToEnd, Outcome::Fresh, Family::Stateless, 100);
        t.record(Stage::EndToEnd, Outcome::Fresh, Family::Stateless, 200);
        t.record(Stage::EndToEnd, Outcome::Fresh, Family::Stateless, 3000);
        // One cached/stateful queue-wait sample.
        t.record(Stage::QueueWait, Outcome::Cached, Family::Stateful, 7);
        // One cancelled portfolio loser, attributed to its strategy.
        t.record_strat(
            Stage::Compile,
            Outcome::Cancelled,
            Family::Stateless,
            Strat::Restricted,
            50,
        );
        t.record_solver(5, 40, 2, 9, 1024, 1);
        let text = render_exposition(
            &t,
            &[
                ("submitted", 4),
                ("infeasible_certified", 2),
                ("infeasible_unchecked", 1),
            ],
            &[("cache_hit_rate", 0.25)],
        );
        let expected = "\
# HELP chipmunk_serve_latency_us Per-stage job latency in microseconds.
# TYPE chipmunk_serve_latency_us summary
chipmunk_serve_latency_us{stage=\"queue_wait\",outcome=\"cached\",family=\"stateful\",strategy=\"na\",quantile=\"0.5\"} 7
chipmunk_serve_latency_us{stage=\"queue_wait\",outcome=\"cached\",family=\"stateful\",strategy=\"na\",quantile=\"0.95\"} 7
chipmunk_serve_latency_us{stage=\"queue_wait\",outcome=\"cached\",family=\"stateful\",strategy=\"na\",quantile=\"0.99\"} 7
chipmunk_serve_latency_us_sum{stage=\"queue_wait\",outcome=\"cached\",family=\"stateful\",strategy=\"na\"} 7
chipmunk_serve_latency_us_count{stage=\"queue_wait\",outcome=\"cached\",family=\"stateful\",strategy=\"na\"} 1
chipmunk_serve_latency_us{stage=\"compile\",outcome=\"cancelled\",family=\"stateless\",strategy=\"restricted\",quantile=\"0.5\"} 63
chipmunk_serve_latency_us{stage=\"compile\",outcome=\"cancelled\",family=\"stateless\",strategy=\"restricted\",quantile=\"0.95\"} 63
chipmunk_serve_latency_us{stage=\"compile\",outcome=\"cancelled\",family=\"stateless\",strategy=\"restricted\",quantile=\"0.99\"} 63
chipmunk_serve_latency_us_sum{stage=\"compile\",outcome=\"cancelled\",family=\"stateless\",strategy=\"restricted\"} 50
chipmunk_serve_latency_us_count{stage=\"compile\",outcome=\"cancelled\",family=\"stateless\",strategy=\"restricted\"} 1
chipmunk_serve_latency_us{stage=\"e2e\",outcome=\"fresh\",family=\"stateless\",strategy=\"na\",quantile=\"0.5\"} 255
chipmunk_serve_latency_us{stage=\"e2e\",outcome=\"fresh\",family=\"stateless\",strategy=\"na\",quantile=\"0.95\"} 4095
chipmunk_serve_latency_us{stage=\"e2e\",outcome=\"fresh\",family=\"stateless\",strategy=\"na\",quantile=\"0.99\"} 4095
chipmunk_serve_latency_us_sum{stage=\"e2e\",outcome=\"fresh\",family=\"stateless\",strategy=\"na\"} 3300
chipmunk_serve_latency_us_count{stage=\"e2e\",outcome=\"fresh\",family=\"stateless\",strategy=\"na\"} 3
# TYPE chipmunk_serve_solver_conflicts_total counter
chipmunk_serve_solver_conflicts_total 5
# TYPE chipmunk_serve_solver_propagations_total counter
chipmunk_serve_solver_propagations_total 40
# TYPE chipmunk_serve_solver_verify_conflicts_total counter
chipmunk_serve_solver_verify_conflicts_total 2
# TYPE chipmunk_serve_solver_verify_propagations_total counter
chipmunk_serve_solver_verify_propagations_total 9
# TYPE chipmunk_serve_solver_clause_bytes_total counter
chipmunk_serve_solver_clause_bytes_total 1024
# TYPE chipmunk_serve_solver_budget_trips_total counter
chipmunk_serve_solver_budget_trips_total 1
# TYPE chipmunk_serve_submitted_total counter
chipmunk_serve_submitted_total 4
# TYPE chipmunk_serve_infeasible_certified_total counter
chipmunk_serve_infeasible_certified_total 2
# TYPE chipmunk_serve_infeasible_unchecked_total counter
chipmunk_serve_infeasible_unchecked_total 1
# TYPE chipmunk_serve_cache_hit_rate gauge
chipmunk_serve_cache_hit_rate 0.25
";
        assert_eq!(text, expected);
    }

    /// `bucket_upper_bound` (re-exported through the trace crate) and the
    /// merged-percentile helpers agree with single-cell snapshots.
    #[test]
    fn stage_merge_sums_cells_and_preserves_percentile_bounds() {
        let t = Telemetry::new();
        for v in [1u64, 2, 4, 8, 1000] {
            t.record(Stage::Compile, Outcome::Fresh, Family::Stateless, v);
            t.record(Stage::Compile, Outcome::Failed, Family::Stateful, v);
        }
        let (buckets, sum, count) = t.stage_merged(Stage::Compile);
        assert_eq!(count, 10);
        assert_eq!(sum, 2030);
        let (p50, p95, p99) = merged_percentiles(&buckets).unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        // The p99 estimate is the upper bound of the bucket holding 1000.
        assert_eq!(p99, bucket_upper_bound(10));
        assert_eq!(t.count(Stage::Compile, Outcome::Fresh), 5);
        assert_eq!(t.count(Stage::Compile, Outcome::Failed), 5);
        assert_eq!(t.count(Stage::Compile, Outcome::Cached), 0);
    }

    #[test]
    fn stage_summary_reports_counts_and_is_null_when_empty() {
        let t = Telemetry::new();
        assert_eq!(t.stage_summary(Stage::Remap), Json::Null);
        t.record(Stage::Remap, Outcome::Remapped, Family::Stateless, 12);
        let s = t.stage_summary(Stage::Remap);
        assert_eq!(s.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(s.get("sum_us").and_then(Json::as_u64), Some(12));
        assert_eq!(s.get("p50_us").and_then(Json::as_u64), Some(15));
    }

    /// Satellite of the portfolio work: a cancelled racing loser is its
    /// own outcome — it must never be counted among failures.
    #[test]
    fn cancelled_samples_are_distinct_from_failures() {
        let t = Telemetry::new();
        t.record_strat(
            Stage::Compile,
            Outcome::Cancelled,
            Family::Stateless,
            Strat::Full,
            10,
        );
        assert_eq!(t.count(Stage::Compile, Outcome::Failed), 0);
        assert_eq!(t.count(Stage::Compile, Outcome::Cancelled), 1);
    }

    #[test]
    fn rolling_window_percentiles_and_expiry() {
        let w = RollingWindow::new(Duration::from_secs(5), 100);
        let t0 = Instant::now();
        assert_eq!(w.percentile_at(t0, 95.0), None);
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            w.record_at(t0, v);
        }
        // Nearest-rank: p50 of 10 samples is the 5th, p95 the 10th.
        assert_eq!(w.percentile_at(t0, 50.0), Some(50));
        assert_eq!(w.percentile_at(t0, 95.0), Some(100));
        // Within the horizon the samples are still live...
        assert_eq!(
            w.percentile_at(t0 + Duration::from_secs(5), 95.0),
            Some(100)
        );
        // ...one tick past it the window has drained — brownout exit.
        assert_eq!(w.percentile_at(t0 + Duration::from_secs(6), 95.0), None);
        // Newer samples push the estimate back up without the old ones.
        w.record_at(t0 + Duration::from_secs(7), 7);
        assert_eq!(w.percentile_at(t0 + Duration::from_secs(7), 95.0), Some(7));
    }

    #[test]
    fn rolling_window_capacity_evicts_oldest() {
        let w = RollingWindow::new(Duration::from_secs(60), 3);
        let t0 = Instant::now();
        for v in [1u64, 2, 3, 4] {
            w.record_at(t0, v);
        }
        // Capacity 3: the 1 fell out; p0..p100 over {2,3,4}.
        assert_eq!(w.percentile_at(t0, 1.0), Some(2));
        assert_eq!(w.percentile_at(t0, 100.0), Some(4));
    }

    #[test]
    fn http_listener_serves_metrics_and_404s_everything_else() {
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| "chipmunk_serve_up 1\n".to_string());
        let server = serve_exposition("127.0.0.1:0", render).unwrap();
        let addr = server.addr();
        let get = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let ok = get("/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.ends_with("chipmunk_serve_up 1\n"));
        let missing = get("/other");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        server.begin_shutdown();
        server.join();
    }
}
