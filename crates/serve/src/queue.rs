//! A bounded MPMC priority job queue with explicit backpressure.
//!
//! `std::sync::mpsc` has no bounded multi-consumer variant, so the queue is
//! the classic `Mutex<heap>` + `Condvar` pair. Three properties matter
//! for the server:
//!
//! * **Backpressure is a value, not a wait.** [`Bounded::try_push`] never
//!   blocks; a full queue returns [`PushError::Full`] carrying the job
//!   back, so the connection handler can answer the client with a typed
//!   `queue_full` error immediately instead of holding the socket hostage.
//! * **Shutdown is observable.** [`Bounded::close`] stops new pushes but
//!   lets consumers drain what is already queued; [`Bounded::pop`] returns
//!   `None` only once the queue is both closed and empty, which is the
//!   worker-thread exit condition.
//! * **Priorities are strict, FIFO within a level.** [`Bounded::pop`]
//!   always returns the highest-priority item; ties break by arrival
//!   order (a monotone sequence number), so two equal-priority jobs keep
//!   the old FIFO behavior and priority-0 traffic cannot be reordered by
//!   the heap's internal layout.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Why a push was refused. Both variants hand the item back to the caller.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure; retry later or give up.
    Full(T),
    /// The queue was closed — the server is shutting down.
    Closed(T),
}

struct Entry<T> {
    priority: i32,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first; among equals, the *older*
        // (smaller seq) item is greater so FIFO order is preserved.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct Inner<T> {
    items: BinaryHeap<Entry<T>>,
    next_seq: u64,
    closed: bool,
}

/// A bounded multi-producer multi-consumer priority queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    nonempty: Condvar,
    capacity: usize,
    waiters: AtomicUsize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner {
                items: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
            waiters: AtomicUsize::new(0),
        }
    }

    /// Enqueue at the default priority (0) without blocking. Fails with
    /// the item when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        self.try_push_with_priority(item, 0)
    }

    /// Enqueue at an explicit priority without blocking. Higher values
    /// pop first; equal values pop in arrival order. Fails with the item
    /// when full or closed.
    pub fn try_push_with_priority(&self, item: T, priority: i32) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().expect("queue poisoned");
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        let seq = g.next_seq;
        g.next_seq += 1;
        g.items.push(Entry {
            priority,
            seq,
            item,
        });
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeue the highest-priority item, blocking while the queue is
    /// empty but open. Returns `None` once the queue is closed **and**
    /// drained — the consumer exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(entry) = g.items.pop() {
                return Some(entry.item);
            }
            if g.closed {
                return None;
            }
            // The waiter count is bumped while still holding the lock, so
            // an observer who acquires it and reads N knows N consumers
            // have committed to the (atomic) release-and-wait below.
            self.waiters.fetch_add(1, Ordering::Relaxed);
            let waited = self.nonempty.wait(g);
            self.waiters.fetch_sub(1, Ordering::Relaxed);
            g = waited.expect("queue poisoned");
        }
    }

    /// Remove every queued item at once without closing the queue,
    /// highest priority first. Used by abortive shutdown to answer queued
    /// jobs with an error instead of compiling them.
    pub fn drain_now(&self) -> Vec<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        let mut out = Vec::with_capacity(g.items.len());
        while let Some(entry) = g.items.pop() {
            out.push(entry.item);
        }
        out
    }

    /// Refuse all future pushes and wake every blocked consumer.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.nonempty.notify_all();
    }

    /// Items currently waiting (not including jobs being executed).
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Has [`close`](Bounded::close) been called?
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue poisoned").closed
    }

    /// Consumers currently blocked in [`pop`](Bounded::pop) waiting for an
    /// item. Observability only (tests use it as a readiness handshake:
    /// each waiter registers before releasing the queue lock to wait, so
    /// after acquiring the lock once this count is trustworthy).
    pub fn waiters(&self) -> usize {
        // Taking the lock orders this read after any in-progress
        // register-then-wait sequence.
        let _g = self.inner.lock().expect("queue poisoned");
        self.waiters.load(Ordering::Relaxed)
    }

    /// Evict and return the lowest-priority queued item, provided its
    /// priority is strictly below `than`. Among equals the *youngest*
    /// (largest seq) is evicted — it has waited the least, so shedding it
    /// wastes the least queue time. Admission control uses this when the
    /// queue is full and a higher-priority job arrives: the victim is
    /// answered with a typed `shed` error and the newcomer takes its slot.
    ///
    /// Returns `None` (shedding nothing) when the queue is empty or every
    /// queued item already has priority ≥ `than`.
    pub fn shed_lowest_below(&self, than: i32) -> Option<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        let victim = g
            .items
            .iter()
            .min_by(|a, b| {
                a.priority
                    .cmp(&b.priority)
                    .then(a.seq.cmp(&b.seq).reverse())
            })
            .filter(|e| e.priority < than)
            .map(|e| e.seq)?;
        // BinaryHeap has no remove-by-key; rebuild without the victim.
        // Shedding only happens on the full-queue admission path, where a
        // linear pass over a bounded heap is noise next to a synthesis job.
        let drained = std::mem::take(&mut g.items).into_vec();
        let mut shed = None;
        g.items = drained
            .into_iter()
            .filter_map(|e| {
                if e.seq == victim {
                    shed = Some(e.item);
                    None
                } else {
                    Some(e)
                }
            })
            .collect();
        shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.depth(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn higher_priority_pops_first_fifo_within_level() {
        let q = Bounded::new(8);
        q.try_push_with_priority("low-1", 0).unwrap();
        q.try_push_with_priority("high-1", 5).unwrap();
        q.try_push_with_priority("low-2", 0).unwrap();
        q.try_push_with_priority("high-2", 5).unwrap();
        q.try_push_with_priority("mid-1", 3).unwrap();
        assert_eq!(q.pop(), Some("high-1"));
        assert_eq!(q.pop(), Some("high-2"));
        assert_eq!(q.pop(), Some("mid-1"));
        assert_eq!(q.pop(), Some("low-1"));
        assert_eq!(q.pop(), Some("low-2"));
    }

    #[test]
    fn negative_priority_yields_to_default() {
        let q = Bounded::new(4);
        q.try_push_with_priority("bulk", -2).unwrap();
        q.try_push("normal").unwrap();
        assert_eq!(q.pop(), Some("normal"));
        assert_eq!(q.pop(), Some("bulk"));
    }

    #[test]
    fn drain_now_returns_priority_order() {
        let q = Bounded::new(4);
        q.try_push_with_priority(1, 0).unwrap();
        q.try_push_with_priority(2, 9).unwrap();
        q.try_push_with_priority(3, 4).unwrap();
        assert_eq!(q.drain_now(), vec![2, 3, 1]);
        assert_eq!(q.depth(), 0);
        assert!(!q.is_closed());
    }

    #[test]
    fn full_queue_returns_the_item() {
        let q = Bounded::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Full("c")) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn shed_evicts_youngest_lowest_priority_only_when_strictly_below() {
        let q = Bounded::new(8);
        q.try_push_with_priority("low-old", 0).unwrap();
        q.try_push_with_priority("high", 5).unwrap();
        q.try_push_with_priority("low-young", 0).unwrap();
        // Victim is the youngest item at the lowest level.
        assert_eq!(q.shed_lowest_below(3), Some("low-young"));
        assert_eq!(q.depth(), 2);
        // Equal priority does not shed (strictly below).
        assert_eq!(q.shed_lowest_below(0), None);
        assert_eq!(q.shed_lowest_below(1), Some("low-old"));
        // Everything left outranks the bar.
        assert_eq!(q.shed_lowest_below(3), None);
        assert_eq!(q.pop(), Some("high"));
    }

    #[test]
    fn shed_on_empty_queue_is_none() {
        let q: Bounded<u32> = Bounded::new(2);
        assert_eq!(q.shed_lowest_below(9), None);
    }

    #[test]
    fn shed_preserves_order_of_survivors() {
        let q = Bounded::new(8);
        q.try_push_with_priority("a", 2).unwrap();
        q.try_push_with_priority("b", 1).unwrap();
        q.try_push_with_priority("c", 2).unwrap();
        q.try_push_with_priority("d", 1).unwrap();
        assert_eq!(q.shed_lowest_below(2), Some("d"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("c"));
        assert_eq!(q.pop(), Some("b"));
    }

    #[test]
    fn close_drains_then_stops() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.close();
        match q.try_push(2) {
            Err(PushError::Closed(2)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Readiness handshake instead of a timing-based sleep: wait (with
        // a generous bound) until all three consumers are registered as
        // blocked in `pop`, so `close` provably exercises the wakeup path
        // even on a slow CI machine.
        let mut ready = false;
        for _ in 0..2000 {
            if q.waiters() == 3 {
                ready = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(ready, "consumers never blocked on the empty queue");
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_pass_everything_through() {
        let q = Arc::new(Bounded::new(8));
        let total = 200u64;
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..total / 4 {
                        let mut item = p * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                Ok(()) => break,
                                Err(PushError::Full(back)) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                Err(PushError::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while q.pop().is_some() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let consumed: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(consumed, total);
    }
}
