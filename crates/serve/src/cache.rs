//! The two-tier compilation result cache.
//!
//! Tier 1 is an in-memory LRU map from content hash (see
//! [`chipmunk::cache_key`]) to the serialized result document. Tier 2 is
//! an append-only JSONL file `results.jsonl` under the server's
//! `--cache-dir`, loaded into tier 1 at startup — so a restarted daemon
//! keeps its warm cache. Each line is `{"key":"<16 hex>","result":{…}}`.
//!
//! **Bounds.** With `max_entries` set, tier 1 holds at most that many
//! results; inserting past the bound evicts the least-recently-used entry
//! (every `get`/`peek` is a use). The disk tier stays append-only between
//! compactions, so it can temporarily hold lines for evicted keys;
//! [`ResultCache::compact`] rewrites `results.jsonl` from the retained
//! in-memory set — dropping evicted, duplicate, and corrupt lines — by
//! writing a temp file and renaming it over the old one, so a crash
//! mid-compaction keeps the previous file intact. Compaction runs at
//! startup when loading found anything worth dropping, automatically when
//! the file grows past twice the entry bound, and on demand (the `cache`
//! protocol op).
//!
//! **Write conflicts.** `put` is first-write-wins: a duplicate `put`
//! under an existing key changes neither tier, so memory and disk cannot
//! diverge when two workers race to finish twin jobs.
//!
//! **Degraded mode.** A disk error (ENOSPC, short write, failed rename)
//! never propagates into the serving path: the cache detaches its disk
//! tier and keeps serving from memory, counting the error
//! ([`ResultCache::disk_errors`]) and reporting
//! [`degraded`](ResultCache::degraded) in stats. Every
//! [`REATTACH_EVERY`]th put while degraded retries a full rewrite of the
//! retained set (a compaction); the first success re-attaches the disk
//! tier with nothing lost — every entry still lives in tier 1.
//!
//! Only *successful* compilations are cached: failures may be budget
//! artifacts (timeouts) and are cheap to re-derive when they are not
//! (the infeasibility proof re-runs).

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use chipmunk_trace::json::Json;

use crate::faults::{self, FaultKind};

/// While degraded, every this-many-th `put` retries re-attaching the
/// disk tier via a full compaction.
pub const REATTACH_EVERY: u64 = 16;

/// One injection point covers every disk operation of the cache tier.
fn injected_io_fault() -> Option<std::io::Error> {
    if faults::armed() && faults::fired(FaultKind::CacheIo) {
        Some(std::io::Error::other("injected cache_io fault"))
    } else {
        None
    }
}

/// One retained result plus its recency stamp.
struct Entry {
    result: Json,
    /// Monotonic use stamp; the smallest stamp is the LRU victim.
    tick: u64,
}

/// Tier 1: the map plus an LRU index (`tick → key`, ticks are unique).
struct Mem {
    map: HashMap<String, Entry>,
    lru: BTreeMap<u64, String>,
    next_tick: u64,
}

impl Mem {
    fn new() -> Mem {
        Mem {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            next_tick: 0,
        }
    }

    /// Move `key`'s stamp to most-recent. No-op for unknown keys.
    fn touch(&mut self, key: &str) {
        if let Some(e) = self.map.get_mut(key) {
            self.lru.remove(&e.tick);
            e.tick = self.next_tick;
            self.lru.insert(e.tick, key.to_string());
            self.next_tick += 1;
        }
    }

    /// Insert if absent (first-write-wins). Returns whether it inserted.
    fn insert_fresh(&mut self, key: &str, result: &Json) -> bool {
        if self.map.contains_key(key) {
            return false;
        }
        let tick = self.next_tick;
        self.next_tick += 1;
        self.map.insert(
            key.to_string(),
            Entry {
                result: result.clone(),
                tick,
            },
        );
        self.lru.insert(tick, key.to_string());
        true
    }

    /// Drop LRU entries until at most `max` remain; returns how many went.
    fn evict_to(&mut self, max: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() > max {
            let Some((&tick, _)) = self.lru.iter().next() else {
                break;
            };
            let key = self.lru.remove(&tick).expect("lru index entry");
            self.map.remove(&key);
            evicted += 1;
        }
        evicted
    }
}

/// Tier 2: the JSONL file, its path (for compaction), and its line count.
struct Disk {
    path: PathBuf,
    file: Mutex<File>,
    /// Lines currently in `results.jsonl`, valid or not — the figure
    /// compaction shrinks back to `len()`.
    lines: AtomicU64,
    /// Disk tier detached after an I/O error; appends are skipped and a
    /// periodic compaction retry re-attaches it.
    degraded: AtomicBool,
    /// I/O errors absorbed by the disk tier (appends and compactions).
    disk_errors: AtomicU64,
    /// Puts skipped while degraded, for the re-attach cadence.
    degraded_puts: AtomicU64,
}

impl Disk {
    fn note_error(&self) {
        self.disk_errors.fetch_add(1, Ordering::Relaxed);
        if !self.degraded.swap(true, Ordering::Relaxed) {
            chipmunk_trace::counter_add!("serve.cache.degraded", 1);
        }
    }
}

/// A content-addressed result store: in-memory LRU map + optional JSONL
/// file.
pub struct ResultCache {
    mem: Mutex<Mem>,
    disk: Option<Disk>,
    /// Tier-1 entry bound (`None` = unbounded).
    max_entries: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    compactions: AtomicU64,
}

impl ResultCache {
    /// Open an unbounded cache (see [`ResultCache::open_bounded`]).
    pub fn open(dir: Option<&Path>) -> std::io::Result<ResultCache> {
        ResultCache::open_bounded(dir, None)
    }

    /// Open a cache holding at most `max_entries` results (`None` =
    /// unbounded). With a directory, existing entries in
    /// `dir/results.jsonl` are loaded — first occurrence of a key wins,
    /// matching `put` — and new entries appended; without, the cache is
    /// memory-only. Corrupt lines (a crash mid-append) are skipped; an
    /// *unreadable* line (I/O error, broken encoding) stops the load but
    /// keeps everything parsed so far, and the file still opens for
    /// append. If loading dropped anything — corrupt or unreadable lines,
    /// duplicate keys, entries past the bound — the file is compacted
    /// immediately so the damage is not reloaded forever.
    pub fn open_bounded(
        dir: Option<&Path>,
        max_entries: Option<usize>,
    ) -> std::io::Result<ResultCache> {
        let mut mem = Mem::new();
        let mut raw_lines = 0u64;
        let mut load_evictions = 0u64;
        // Does the file hold anything the retained set does not?
        let mut dirty = false;
        let disk = match dir {
            None => None,
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join("results.jsonl");
                if let Ok(f) = File::open(&path) {
                    for line in BufReader::new(f).lines() {
                        let line = match line {
                            Ok(l) => l,
                            // An unreadable line breaks the reader's
                            // position guarantees: stop loading, keep what
                            // parsed, and let compaction rewrite the file.
                            Err(_) => {
                                dirty = true;
                                break;
                            }
                        };
                        raw_lines += 1;
                        // Tolerate torn/corrupt lines (e.g. a crash
                        // mid-append): skip them rather than refusing to
                        // start.
                        let mut ok = false;
                        if let Ok(doc) = Json::parse(&line) {
                            if let (Some(key), Some(result)) =
                                (doc.get("key").and_then(Json::as_str), doc.get("result"))
                            {
                                // First-write-wins, like `put`: a
                                // duplicate line is dead weight.
                                ok = mem.insert_fresh(key, result);
                            }
                        }
                        if !ok {
                            dirty = true;
                        }
                    }
                    if let Some(max) = max_entries {
                        load_evictions = mem.evict_to(max);
                        if load_evictions > 0 {
                            dirty = true;
                        }
                    }
                }
                let f = OpenOptions::new().create(true).append(true).open(&path)?;
                Some(Disk {
                    path,
                    file: Mutex::new(f),
                    lines: AtomicU64::new(raw_lines),
                    degraded: AtomicBool::new(false),
                    disk_errors: AtomicU64::new(0),
                    degraded_puts: AtomicU64::new(0),
                })
            }
        };
        let cache = ResultCache {
            mem: Mutex::new(mem),
            disk,
            max_entries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(load_evictions),
            compactions: AtomicU64::new(0),
        };
        if dirty {
            // Startup compaction: best-effort (a failure leaves the old
            // file, which is exactly what we loaded from).
            let _ = cache.compact();
        }
        Ok(cache)
    }

    /// Look up a key, updating the hit/miss counters.
    pub fn get(&self, key: &str) -> Option<Json> {
        self.get_adapted(key, Some)
    }

    /// Look up a key and pass the stored document through `adapt` — a
    /// lookup only counts as a hit if `adapt` accepts it. The serving
    /// layer uses this to remap a cached result into the requester's own
    /// field numbering; an entry that cannot be remapped (legacy line,
    /// hash collision) is a miss and the job recompiles.
    pub fn get_adapted(&self, key: &str, adapt: impl FnOnce(Json) -> Option<Json>) -> Option<Json> {
        let found = self.peek(key).and_then(adapt);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.cache.hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.cache.miss", 1);
        }
        found
    }

    /// Look up a key without touching the hit/miss counters (used by
    /// workers re-checking after a queue wait, so one logical request
    /// counts once). Still refreshes the entry's LRU recency.
    pub fn peek(&self, key: &str) -> Option<Json> {
        let mut mem = self.mem.lock().expect("cache poisoned");
        mem.touch(key);
        mem.map.get(key).map(|e| e.result.clone())
    }

    /// Store a result under `key`, in memory and (if configured) on disk.
    ///
    /// First-write-wins: if the key is already present, *neither* tier
    /// changes — replacing only the memory tier would make a restart
    /// silently revert the answer, and key-equal results are equivalent
    /// by construction, so the first one is as good as any.
    pub fn put(&self, key: &str, result: &Json) {
        let evicted = {
            let mut mem = self.mem.lock().expect("cache poisoned");
            if !mem.insert_fresh(key, result) {
                return;
            }
            match self.max_entries {
                Some(max) => mem.evict_to(max),
                None => 0,
            }
        };
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.cache.evicted", evicted);
        }
        if let Some(disk) = &self.disk {
            if disk.degraded.load(Ordering::Relaxed) {
                // Memory-only degraded mode: skip the append (the entry is
                // safe in tier 1) and periodically probe for recovery with
                // a full rewrite — success re-attaches the tier with every
                // retained entry on disk, including ones put while
                // degraded.
                let n = disk.degraded_puts.fetch_add(1, Ordering::Relaxed) + 1;
                if n % REATTACH_EVERY == 0 {
                    let _ = self.compact();
                }
                return;
            }
            let line = Json::obj([("key", Json::from(key)), ("result", result.clone())]);
            let appended = (|| -> std::io::Result<()> {
                if let Some(e) = injected_io_fault() {
                    return Err(e);
                }
                let mut f = disk.file.lock().expect("cache file poisoned");
                writeln!(f, "{}", line.to_compact())?;
                f.flush()
            })();
            if appended.is_err() {
                // A failed append (ENOSPC, short write) degrades to
                // memory-only; never fatal, never propagated.
                disk.note_error();
                return;
            }
            let lines = disk.lines.fetch_add(1, Ordering::Relaxed) + 1;
            // Auto-compact once evictions have left the file mostly dead
            // weight, so a bounded cache also bounds the disk (at roughly
            // twice the entry bound). The slack keeps tiny bounds from
            // compacting on every put.
            if let Some(max) = self.max_entries {
                if lines > (2 * max as u64).max(16) {
                    let _ = self.compact();
                }
            }
        }
    }

    /// Rewrite `results.jsonl` to exactly the retained in-memory entries
    /// (in LRU order, oldest first), dropping evicted / duplicate /
    /// corrupt lines. Crash-safe: the new contents go to a temp file
    /// which is renamed over the old one, so an interrupted compaction
    /// keeps the previous file. Returns `(lines_before, lines_after)`;
    /// memory-only caches return `(0, 0)` without touching anything.
    pub fn compact(&self) -> std::io::Result<(u64, u64)> {
        let Some(disk) = &self.disk else {
            return Ok((0, 0));
        };
        let res = self.compact_inner(disk);
        match &res {
            Ok(_) => {
                // A full successful rewrite is also the degraded-mode
                // recovery path: the file now holds every retained entry,
                // so the disk tier is healthy again.
                disk.degraded.store(false, Ordering::Relaxed);
                disk.degraded_puts.store(0, Ordering::Relaxed);
            }
            Err(_) => {
                // Count and degrade, but let the (ignored-by-internal-
                // callers) error through so the on-demand `cache --compact`
                // op can still report what happened.
                disk.note_error();
            }
        }
        res
    }

    fn compact_inner(&self, disk: &Disk) -> std::io::Result<(u64, u64)> {
        // Lock order everywhere: mem before disk.
        let mem = self.mem.lock().expect("cache poisoned");
        let mut file = disk.file.lock().expect("cache file poisoned");
        let before = disk.lines.load(Ordering::Relaxed);
        let tmp_path = disk.path.with_extension("jsonl.tmp");
        let mut after = 0u64;
        {
            if let Some(e) = injected_io_fault() {
                return Err(e);
            }
            let tmp = File::create(&tmp_path)?;
            let mut w = BufWriter::new(tmp);
            for key in mem.lru.values() {
                let entry = &mem.map[key];
                let line = Json::obj([
                    ("key", Json::from(key.as_str())),
                    ("result", entry.result.clone()),
                ]);
                writeln!(w, "{}", line.to_compact())?;
                after += 1;
            }
            w.flush()?;
            w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        }
        std::fs::rename(&tmp_path, &disk.path)?;
        // The old append handle points at the unlinked file; swap in one
        // for the fresh file.
        *file = OpenOptions::new().append(true).open(&disk.path)?;
        disk.lines.store(after, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        chipmunk_trace::counter_add!("serve.cache.compacted", 1);
        Ok((before, after))
    }

    /// Drop every entry from both tiers. Returns how many entries went.
    pub fn clear(&self) -> std::io::Result<u64> {
        let dropped = {
            let mut mem = self.mem.lock().expect("cache poisoned");
            let n = mem.map.len() as u64;
            mem.map.clear();
            mem.lru.clear();
            n
        };
        self.compact()?;
        Ok(dropped)
    }

    /// Quarantine: drop one entry from **both** tiers. Used when a cached
    /// result fails certification — the entry must not be served again,
    /// even after a restart, so the disk tier is compacted down to the
    /// retained set (best-effort: a failing disk degrades the tier as
    /// usual, and the entry is still gone from memory, which is the tier
    /// lookups read). Returns whether the key was present.
    pub fn remove(&self, key: &str) -> bool {
        let removed = {
            let mut mem = self.mem.lock().expect("cache poisoned");
            match mem.map.remove(key) {
                Some(entry) => {
                    mem.lru.remove(&entry.tick);
                    true
                }
                None => false,
            }
        };
        if removed {
            let _ = self.compact();
        }
        removed
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache poisoned").map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured entry bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.max_entries
    }

    /// Counted lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Counted lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to keep the cache under its bound (including any
    /// dropped while loading an over-bound file at startup).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Completed compaction passes (startup, automatic, and on-demand).
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Lines currently in `results.jsonl` (0 for memory-only caches).
    /// Exceeds [`len`](ResultCache::len) by the evicted / duplicate /
    /// corrupt lines a compaction would drop.
    pub fn disk_lines(&self) -> u64 {
        self.disk
            .as_ref()
            .map(|d| d.lines.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Whether the disk tier is detached after an I/O error (memory-only
    /// degraded mode). Always false for caches opened without a
    /// directory — they have no tier to lose.
    pub fn degraded(&self) -> bool {
        self.disk
            .as_ref()
            .is_some_and(|d| d.degraded.load(Ordering::Relaxed))
    }

    /// Disk I/O errors absorbed so far (failed appends and compactions).
    pub fn disk_errors(&self) -> u64 {
        self.disk
            .as_ref()
            .map(|d| d.disk_errors.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("chipmunk-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn doc(v: u64) -> Json {
        Json::obj([("v", Json::from(v))])
    }

    #[test]
    fn memory_only_cache_round_trips() {
        let c = ResultCache::open(None).unwrap();
        assert_eq!(c.get("k1"), None);
        let doc = Json::obj([("stages", Json::from(2u64))]);
        c.put("k1", &doc);
        assert_eq!(c.get("k1"), Some(doc));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        // Compaction and clear are safe without a disk tier.
        assert_eq!(c.compact().unwrap(), (0, 0));
        assert_eq!(c.clear().unwrap(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn disk_cache_survives_reopen() {
        let dir = tmpdir("reopen");
        let doc = Json::obj([("stages", Json::from(3u64))]);
        {
            let c = ResultCache::open(Some(&dir)).unwrap();
            c.put("deadbeef00000000", &doc);
        }
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek("deadbeef00000000"), Some(doc));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_are_skipped_on_load() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("results.jsonl"),
            "{\"key\":\"aa\",\"result\":{\"v\":1}}\nnot json\n{\"nokey\":true}\n",
        )
        .unwrap();
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.peek("aa").is_some());
        // The startup pass compacted the garbage away.
        assert_eq!(c.disk_lines(), 1);
        let text = std::fs::read_to_string(dir.join("results.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite regression: a mid-file *read* error (not just a corrupt
    /// line) must not abort `open` — keep what parsed, stay appendable.
    #[test]
    fn unreadable_line_stops_the_load_but_not_the_cache() {
        let dir = tmpdir("unreadable");
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = b"{\"key\":\"aa\",\"result\":{\"v\":1}}\n".to_vec();
        bytes.extend(b"\xff\xfe\xff broken utf-8 \xff\n");
        bytes.extend(b"{\"key\":\"bb\",\"result\":{\"v\":2}}\n");
        std::fs::write(dir.join("results.jsonl"), &bytes).unwrap();
        let c = ResultCache::open(Some(&dir)).unwrap();
        // Loading stopped at the unreadable line; the prefix survived.
        assert_eq!(c.len(), 1);
        assert!(c.peek("aa").is_some());
        // …and the cache still accepts and persists fresh entries.
        c.put("cc", &doc(3));
        drop(c);
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.peek("aa").is_some());
        assert!(c.peek("cc").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_puts_write_one_disk_line() {
        let dir = tmpdir("dedup");
        let doc = Json::obj([("v", Json::from(1u64))]);
        {
            let c = ResultCache::open(Some(&dir)).unwrap();
            c.put("k", &doc);
            c.put("k", &doc);
        }
        let text = std::fs::read_to_string(dir.join("results.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite regression: a duplicate `put` must not replace the
    /// in-memory value while skipping the disk append — that leaves the
    /// tiers disagreeing until a restart silently reverts the answer.
    /// First write wins in *both* tiers.
    #[test]
    fn duplicate_put_leaves_both_tiers_agreeing() {
        let dir = tmpdir("fww");
        {
            let c = ResultCache::open(Some(&dir)).unwrap();
            c.put("k", &doc(1));
            c.put("k", &doc(2)); // racing twin: ignored everywhere
            assert_eq!(c.peek("k"), Some(doc(1)));
        }
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert_eq!(c.peek("k"), Some(doc(1)), "restart must agree with memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Racing duplicate puts from many threads: whatever value won, both
    /// tiers agree on it after a reopen.
    #[test]
    fn racing_duplicate_puts_keep_tiers_consistent() {
        let dir = tmpdir("race");
        let winner = {
            let c = std::sync::Arc::new(ResultCache::open(Some(&dir)).unwrap());
            let threads: Vec<_> = (0..8)
                .map(|i| {
                    let c = c.clone();
                    std::thread::spawn(move || c.put("k", &doc(i)))
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            c.peek("k").unwrap()
        };
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek("k"), Some(winner));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let c = ResultCache::open_bounded(None, Some(2)).unwrap();
        c.put("a", &doc(1));
        c.put("b", &doc(2));
        assert!(c.get("a").is_some()); // refresh a: b is now LRU
        c.put("c", &doc(3)); // evicts b
        assert_eq!(c.evictions(), 1);
        assert!(c.peek("a").is_some());
        assert!(c.peek("b").is_none());
        assert!(c.peek("c").is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn compaction_drops_evicted_entries_from_disk() {
        let dir = tmpdir("compact");
        {
            let c = ResultCache::open_bounded(Some(&dir), Some(2)).unwrap();
            for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
                c.put(k, &doc(i as u64));
            }
            assert_eq!(c.len(), 2);
            assert_eq!(c.evictions(), 2);
            assert_eq!(c.disk_lines(), 4); // appends accumulate…
            let (before, after) = c.compact().unwrap();
            assert_eq!((before, after), (4, 2)); // …until compaction
            assert_eq!(c.disk_lines(), 2);
            assert!(c.compactions() >= 1);
            // The fresh append handle still works post-rename.
            c.put("e", &doc(9));
            assert_eq!(c.disk_lines(), 3);
        }
        let c = ResultCache::open_bounded(Some(&dir), Some(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.peek("a").is_none());
        assert!(c.peek("b").is_none());
        for k in ["c", "d", "e"] {
            assert!(c.peek(k).is_some(), "lost retained key {k}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_compaction_shrinks_an_over_bound_file() {
        let dir = tmpdir("startbound");
        std::fs::create_dir_all(&dir).unwrap();
        let mut text = String::new();
        for i in 0..5 {
            text.push_str(&format!("{{\"key\":\"k{i}\",\"result\":{{\"v\":{i}}}}}\n"));
        }
        text.push_str("{\"key\":\"k0\",\"result\":{\"v\":99}}\n"); // duplicate
        std::fs::write(dir.join("results.jsonl"), text).unwrap();
        let c = ResultCache::open_bounded(Some(&dir), Some(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.evictions(), 2);
        assert_eq!(c.disk_lines(), 3);
        // First occurrence of k0 won, but k0/k1 were the LRU victims.
        assert!(c.peek("k0").is_none());
        for k in ["k2", "k3", "k4"] {
            assert!(c.peek(k).is_some(), "lost retained key {k}");
        }
        let text = std::fs::read_to_string(dir.join("results.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_empties_both_tiers() {
        let dir = tmpdir("clear");
        {
            let c = ResultCache::open(Some(&dir)).unwrap();
            c.put("a", &doc(1));
            c.put("b", &doc(2));
            assert_eq!(c.clear().unwrap(), 2);
            assert!(c.is_empty());
            assert_eq!(c.disk_lines(), 0);
        }
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert!(c.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_quarantines_from_both_tiers() {
        let dir = tmpdir("quarantine");
        {
            let c = ResultCache::open(Some(&dir)).unwrap();
            c.put("good", &doc(1));
            c.put("bad", &doc(2));
            assert!(c.remove("bad"), "present key must report removed");
            assert!(!c.remove("bad"), "second remove is a no-op");
            assert!(!c.remove("ghost"), "unknown key is a no-op");
            assert_eq!(c.len(), 1);
            assert!(c.get("bad").is_none());
            assert!(c.get("good").is_some());
            // The disk tier forgot it too (compacted to the retained set).
            assert_eq!(c.disk_lines(), 1);
        }
        // …so a restart cannot resurrect the quarantined entry.
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert!(c.get("bad").is_none());
        assert!(c.get("good").is_some());
        // LRU index stays coherent after the removal: filling past a
        // bound still evicts cleanly.
        let bounded = ResultCache::open_bounded(None, Some(2)).unwrap();
        bounded.put("a", &doc(1));
        bounded.put("b", &doc(2));
        assert!(bounded.remove("a"));
        bounded.put("c", &doc(3));
        bounded.put("d", &doc(4));
        assert_eq!(bounded.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_compaction_bounds_the_disk_tier() {
        let dir = tmpdir("autocompact");
        let c = ResultCache::open_bounded(Some(&dir), Some(4)).unwrap();
        for i in 0..200u64 {
            c.put(&format!("k{i}"), &doc(i));
        }
        assert_eq!(c.len(), 4);
        // The file never grows far past 2 × bound (plus the slack floor).
        assert!(
            c.disk_lines() <= 17,
            "disk tier unbounded: {} lines",
            c.disk_lines()
        );
        assert!(c.compactions() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
