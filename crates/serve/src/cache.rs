//! The two-tier compilation result cache.
//!
//! Tier 1 is an in-memory map from content hash (see
//! [`chipmunk::cache_key`]) to the serialized result document. Tier 2 is
//! an append-only JSONL file `results.jsonl` under the server's
//! `--cache-dir`, loaded into tier 1 at startup — so a restarted daemon
//! keeps its warm cache. Each line is `{"key":"<16 hex>","result":{…}}`.
//!
//! Only *successful* compilations are cached: failures may be budget
//! artifacts (timeouts) and are cheap to re-derive when they are not
//! (the infeasibility proof re-runs).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use chipmunk_trace::json::Json;

/// A content-addressed result store: in-memory map + optional JSONL file.
pub struct ResultCache {
    mem: Mutex<HashMap<String, Json>>,
    disk: Option<Mutex<File>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Open a cache. With a directory, existing entries in
    /// `dir/results.jsonl` are loaded and new entries appended; without,
    /// the cache is memory-only.
    pub fn open(dir: Option<&Path>) -> std::io::Result<ResultCache> {
        let mut mem = HashMap::new();
        let disk = match dir {
            None => None,
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join("results.jsonl");
                if let Ok(f) = File::open(&path) {
                    for line in BufReader::new(f).lines() {
                        let line = line?;
                        // Tolerate torn/corrupt lines (e.g. a crash mid-append):
                        // skip them rather than refusing to start.
                        if let Ok(doc) = Json::parse(&line) {
                            if let (Some(key), Some(result)) =
                                (doc.get("key").and_then(Json::as_str), doc.get("result"))
                            {
                                mem.insert(key.to_string(), result.clone());
                            }
                        }
                    }
                }
                let f = OpenOptions::new().create(true).append(true).open(&path)?;
                Some(Mutex::new(f))
            }
        };
        Ok(ResultCache {
            mem: Mutex::new(mem),
            disk,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Look up a key, updating the hit/miss counters.
    pub fn get(&self, key: &str) -> Option<Json> {
        self.get_adapted(key, Some)
    }

    /// Look up a key and pass the stored document through `adapt` — a
    /// lookup only counts as a hit if `adapt` accepts it. The serving
    /// layer uses this to remap a cached result into the requester's own
    /// field numbering; an entry that cannot be remapped (legacy line,
    /// hash collision) is a miss and the job recompiles.
    pub fn get_adapted(&self, key: &str, adapt: impl FnOnce(Json) -> Option<Json>) -> Option<Json> {
        let found = self.peek(key).and_then(adapt);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.cache.hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            chipmunk_trace::counter_add!("serve.cache.miss", 1);
        }
        found
    }

    /// Look up a key without touching the counters (used by workers
    /// re-checking after a queue wait, so one logical request counts once).
    pub fn peek(&self, key: &str) -> Option<Json> {
        self.mem.lock().expect("cache poisoned").get(key).cloned()
    }

    /// Store a result under `key`, in memory and (if configured) on disk.
    pub fn put(&self, key: &str, result: &Json) {
        let fresh = self
            .mem
            .lock()
            .expect("cache poisoned")
            .insert(key.to_string(), result.clone())
            .is_none();
        if !fresh {
            return;
        }
        if let Some(disk) = &self.disk {
            let line = Json::obj([("key", Json::from(key)), ("result", result.clone())]);
            let mut f = disk.lock().expect("cache file poisoned");
            // A failed append degrades to memory-only; not fatal.
            let _ = writeln!(f, "{}", line.to_compact());
            let _ = f.flush();
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("cache poisoned").len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counted lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Counted lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("chipmunk-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_only_cache_round_trips() {
        let c = ResultCache::open(None).unwrap();
        assert_eq!(c.get("k1"), None);
        let doc = Json::obj([("stages", Json::from(2u64))]);
        c.put("k1", &doc);
        assert_eq!(c.get("k1"), Some(doc));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn disk_cache_survives_reopen() {
        let dir = tmpdir("reopen");
        let doc = Json::obj([("stages", Json::from(3u64))]);
        {
            let c = ResultCache::open(Some(&dir)).unwrap();
            c.put("deadbeef00000000", &doc);
        }
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek("deadbeef00000000"), Some(doc));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_are_skipped_on_load() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("results.jsonl"),
            "{\"key\":\"aa\",\"result\":{\"v\":1}}\nnot json\n{\"nokey\":true}\n",
        )
        .unwrap();
        let c = ResultCache::open(Some(&dir)).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.peek("aa").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_puts_write_one_disk_line() {
        let dir = tmpdir("dedup");
        let doc = Json::obj([("v", Json::from(1u64))]);
        {
            let c = ResultCache::open(Some(&dir)).unwrap();
            c.put("k", &doc);
            c.put("k", &doc);
        }
        let text = std::fs::read_to_string(dir.join("results.jsonl")).unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
